//! Root crate of the `pgas-nonblocking` workspace: re-exports the
//! [`pgas_nb`] facade so the examples and integration tests in this
//! repository read exactly like downstream user code.

pub use pgas_nb::*;
pub use pgas_nb::{atomics, epoch, sim, structures};
