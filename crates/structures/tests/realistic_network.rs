//! Structures exercised under the realistic (Aries-cost) network model,
//! multiple locales, both network-atomics settings — closer to the
//! paper's deployment than the zero-latency unit tests.

use pgas_structures::{
    DistHashMap, LockFreeList, LockFreeSkipList, LockFreeStack, MsQueue, RcuArray,
};
use std::sync::atomic::{AtomicU64, Ordering};

use pgas_sim::{Runtime, RuntimeConfig};

fn configs() -> Vec<(&'static str, RuntimeConfig)> {
    vec![
        ("cluster4-rdma", RuntimeConfig::cluster(4)),
        (
            "cluster4-no-rdma",
            RuntimeConfig::cluster(4).without_network_atomics(),
        ),
        (
            "cluster2-two-progress",
            RuntimeConfig::cluster(2).with_progress_threads(2),
        ),
    ]
}

#[test]
fn stack_under_realistic_configs() {
    for (name, cfg) in configs() {
        let rt = Runtime::new(cfg);
        rt.run(|| {
            let s: LockFreeStack<u64> = LockFreeStack::new();
            let popped = AtomicU64::new(0);
            rt.coforall_locales(|l| {
                let tok = s.register();
                for i in 0..40u64 {
                    s.push(&tok, (l as u64) * 100 + i);
                }
                while s.pop(&tok).is_some() {
                    popped.fetch_add(1, Ordering::Relaxed);
                }
            });
            // Some pops may race to empty before all pushes land; drain.
            let tok = s.register();
            while s.pop(&tok).is_some() {
                popped.fetch_add(1, Ordering::Relaxed);
            }
            drop(tok);
            assert_eq!(
                popped.load(Ordering::Relaxed),
                rt.num_locales() as u64 * 40,
                "{name}: conservation"
            );
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0, "{name}: no leaks");
    }
}

#[test]
fn queue_under_realistic_configs() {
    for (name, cfg) in configs() {
        let rt = Runtime::new(cfg);
        rt.run(|| {
            let q: MsQueue<(u16, u64)> = MsQueue::new();
            rt.coforall_locales(|l| {
                let tok = q.register();
                for i in 0..30u64 {
                    q.enqueue(&tok, (l, i));
                }
            });
            let tok = q.register();
            let mut last = vec![None; rt.num_locales()];
            let mut n = 0;
            while let Some((p, i)) = q.dequeue(&tok) {
                if let Some(prev) = last[p as usize] {
                    assert!(i > prev, "{name}: producer {p} out of order");
                }
                last[p as usize] = Some(i);
                n += 1;
            }
            drop(tok);
            assert_eq!(n, rt.num_locales() * 30, "{name}");
            q.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0, "{name}: no leaks");
    }
}

#[test]
fn list_and_map_under_realistic_configs() {
    for (name, cfg) in configs() {
        let rt = Runtime::new(cfg);
        rt.run(|| {
            let l: LockFreeList<u32> = LockFreeList::new();
            let m: DistHashMap<u32, u32> = DistHashMap::new(16);
            rt.coforall_locales(|loc| {
                let lt = l.register();
                let mt = m.register();
                for i in 0..25u32 {
                    let k = loc as u32 * 100 + i;
                    assert!(l.insert(&lt, k), "{name}: list insert {k}");
                    assert!(m.insert(&mt, k, k * 2), "{name}: map insert {k}");
                    if i % 2 == 0 {
                        assert!(l.remove(&lt, k));
                        assert!(m.remove(&mt, &k));
                    }
                }
            });
            let expected = rt.num_locales() * 12; // 12 odd i in 0..25 survive
            assert_eq!(l.len(), expected, "{name}: list size");
            assert_eq!(m.len(), expected, "{name}: map size");
            l.clear_reclaim();
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0, "{name}: no leaks");
    }
}

#[test]
fn skiplist_under_realistic_configs() {
    for (name, cfg) in configs() {
        let rt = Runtime::new(cfg);
        rt.run(|| {
            let s: LockFreeSkipList<u32> = LockFreeSkipList::new();
            rt.coforall_locales(|loc| {
                let tok = s.register();
                for i in 0..25u32 {
                    let k = loc as u32 * 100 + i;
                    assert!(s.insert(&tok, k), "{name}: insert {k}");
                    if i % 2 == 0 {
                        assert!(s.remove(&tok, k), "{name}: remove {k}");
                    }
                }
            });
            assert_eq!(s.len(), rt.num_locales() * 12, "{name}");
            let tok = s.register();
            assert!(s.contains(&tok, 101));
            assert!(!s.contains(&tok, 100));
            drop(tok);
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0, "{name}: no leaks");
    }
}

#[test]
fn rcu_array_under_realistic_configs() {
    for (name, cfg) in configs() {
        let rt = Runtime::new(cfg);
        rt.run(|| {
            let a = RcuArray::new(8, 32);
            rt.coforall_locales(|l| {
                let tok = a.register();
                for i in 0..32 {
                    if i % rt.num_locales() == l as usize {
                        a.write(&tok, i, (i * 7) as u64);
                    }
                }
                if l == 0 {
                    a.grow(&tok, 64);
                }
            });
            let tok = a.register();
            for i in 0..32 {
                assert_eq!(a.read(&tok, i), (i * 7) as u64, "{name}: cell {i}");
            }
            assert_eq!(a.len(), 64, "{name}");
            drop(tok);
            a.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0, "{name}: no leaks");
    }
}

#[test]
fn stack_comm_profile_matches_expectations() {
    // Structural check on traffic: with RDMA atomics, stack ops are NIC
    // atomics (no AMs except DCAS remote execution for the ABA head).
    let rt = Runtime::new(RuntimeConfig::cluster(2));
    rt.run(|| {
        let s: LockFreeStack<u64> = LockFreeStack::new(); // head on locale 0
        rt.reset_metrics();
        rt.on(1, || {
            let tok = s.register();
            s.push(&tok, 1); // remote head: read_aba + CAS = AMs
        });
        let comm = rt.total_comm();
        assert!(
            comm.am_sent >= 2,
            "remote ABA ops execute as active messages: {comm}"
        );
        let tok = s.register();
        assert_eq!(s.pop(&tok), Some(1));
        drop(tok);
        s.clear_reclaim();
    });
    assert_eq!(rt.live_objects(), 0);
}
