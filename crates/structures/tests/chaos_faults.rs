//! Structures exercised under seeded fault plans: dropped-and-retried AMs,
//! duplicated deliveries, injected delays, and a stalled pinned task. The
//! structures must stay linearizable and keep making progress — the whole
//! point of the paper's non-blocking designs.

use std::sync::atomic::{AtomicU64, Ordering};

use pgas_sim::faults::invariants::InvariantChecker;
use pgas_sim::{FaultPlan, Runtime, RuntimeConfig};
use pgas_structures::{DistHashMap, LockFreeStack, MsQueue};

fn chaos_rt(plan: FaultPlan) -> Runtime {
    // Network atomics off so every remote op takes the (fault-injected)
    // AM path.
    Runtime::new(
        RuntimeConfig::cluster(4)
            .without_network_atomics()
            .with_faults(plan),
    )
}

#[test]
fn queue_preserves_fifo_under_drop_retry() {
    let plan = FaultPlan::seeded(0xFEED).with_drops(300);
    let rt = chaos_rt(plan);
    rt.run(|| {
        let q = MsQueue::<u64>::new();
        let checker = InvariantChecker::new();
        q.epoch_manager().set_observer(checker.clone());
        let dequeued = AtomicU64::new(0);
        rt.coforall_locales(|lid| {
            let task = lid as u64;
            let tok = q.register();
            for i in 0..200u64 {
                q.enqueue(&tok, task << 32 | i);
                if let Some(v) = q.dequeue(&tok) {
                    // One consumer's view of one producer must be in
                    // enqueue order, retries notwithstanding.
                    checker.record_fifo((v >> 32) << 16 | task, v & 0xffff_ffff);
                    dequeued.fetch_add(1, Ordering::Relaxed);
                }
                if i % 64 == 0 {
                    q.try_reclaim();
                }
            }
        });
        let tok = q.register();
        let mut drained = 0;
        while q.dequeue(&tok).is_some() {
            drained += 1;
        }
        drop(tok);
        assert_eq!(
            dequeued.load(Ordering::Relaxed) + drained,
            4 * 200,
            "dropped sends must be retried, never lost"
        );
        q.clear_reclaim();
        checker.check().expect("no invariant violations");
    });
    let comm = rt.total_comm();
    assert!(comm.injected_drops > 0, "plan must actually have fired");
    assert!(comm.retries >= comm.injected_drops - comm.gave_up);
    assert_eq!(rt.live_objects(), 0);
}

#[test]
fn map_stays_consistent_under_delay_and_duplication() {
    let plan = FaultPlan::seeded(0xBEEF)
        .with_dups(300)
        .with_delays(300, 4_000);
    let rt = chaos_rt(plan);
    rt.run(|| {
        let m = DistHashMap::<u64, u64>::new(16);
        let checker = InvariantChecker::new();
        m.epoch_manager().set_observer(checker.clone());
        rt.coforall_locales(|lid| {
            let task = lid as u64;
            let tok = m.register();
            for i in 0..150u64 {
                let k = task << 32 | i;
                assert!(m.insert(&tok, k, i), "fresh insert of {k:#x}");
                assert_eq!(
                    m.get(&tok, &k),
                    Some(i),
                    "a duplicated delivery must not clobber the entry"
                );
                if i % 3 == 0 {
                    assert!(m.remove(&tok, &k));
                }
                if i % 32 == 0 {
                    m.try_reclaim();
                }
            }
        });
        assert_eq!(m.len(), 4 * 100, "every surviving key accounted for");
        m.clear_reclaim();
        checker.check().expect("no invariant violations");
    });
    let comm = rt.total_comm();
    assert!(comm.injected_dups > 0);
    assert!(comm.injected_delays > 0);
    assert_eq!(comm.injected_drops, 0, "plan configured no drops");
}

#[test]
fn stack_makes_progress_past_a_stalled_pinned_task() {
    let plan = FaultPlan::seeded(0xCAFE)
        .with_stalled_task(1)
        .with_delays(200, 2_000);
    let rt = chaos_rt(plan);
    rt.run(|| {
        let s = LockFreeStack::<u64>::new();
        let checker = InvariantChecker::new();
        s.epoch_manager().set_observer(checker.clone());
        let done = AtomicU64::new(0);
        let completed = AtomicU64::new(0);
        let live_while_stalled = AtomicU64::new(0);
        rt.coforall_locales(|lid| {
            if lid == 1 {
                // The stalled task: pins an epoch token and refuses to
                // unpin until everyone else has finished their work.
                let tok = s.register();
                tok.pin();
                while done.load(Ordering::Acquire) < 3 {
                    std::thread::yield_now();
                }
                live_while_stalled.store(rt.live_objects().max(0) as u64, Ordering::Relaxed);
                tok.unpin();
            } else {
                let tok = s.register();
                for i in 0..200u64 {
                    s.push(&tok, (lid as u64) << 32 | i);
                    if s.pop(&tok).is_some() {
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    s.try_reclaim(); // mostly fails while pinned — must not block
                }
                done.fetch_add(1, Ordering::Release);
            }
        });
        assert!(
            completed.load(Ordering::Relaxed) > 0,
            "other locales must make progress despite the stalled pin"
        );
        assert!(
            live_while_stalled.load(Ordering::Relaxed) > 0,
            "the stalled pin must have held garbage live"
        );
        let tok = s.register();
        while s.pop(&tok).is_some() {}
        drop(tok);
        // With the pin gone, reclamation drains completely.
        s.try_reclaim();
        s.try_reclaim();
        s.clear_reclaim();
        checker.check().expect("no invariant violations");
    });
    assert_eq!(rt.live_objects(), 0, "everything reclaimed after unpin");
}
