//! An ordered global-view set: the skiplist, privatized per locale.
//!
//! [`crate::LockFreeSkipList`] is a flat shared-memory ordered set — one
//! tower chain whose nodes scatter across inserting locales, so every
//! traversal step can be remote. This wrapper applies the same
//! privatization recipe as [`crate::ShardedHashMap`]: one skiplist
//! **shard per locale** (towers homed where they are built), a
//! [`pgas_sim::ShardRouter`] mapping key-hash → owning shard, and
//! point operations that either run purely locally or ship one combined
//! AM to the owner.
//!
//! Hash routing keeps point ops balanced under any key skew, but it
//! means *global order lives across shards*: each shard is internally
//! ordered while the key space interleaves between them. A range scan is
//! therefore a **fan-out**: every shard runs its local `collect_range`
//! (expected-logarithmic seek + linear walk, all local memory), and the
//! per-shard slices merge on the caller. That trade — O(locales)
//! messages per scan in exchange for communication-free point ops — is
//! the global-view design the follow-up paper describes for ordered
//! containers, and A11's mixed workloads measure the point-op side of
//! it.
//!
//! Each shard owns its own reclaimer instance (registration happens on
//! the owning locale per operation), so there is no cross-locale guard
//! to thread through the API — operations here take no token.

use std::hash::Hash;

use pgas_epoch::{EpochManager, Reclaimer};
use pgas_sim::telemetry::{opkind, OpClass, OpSpan};
use pgas_sim::{ctx, LocaleId, ShardRouter};

use crate::map::hash_key;
use crate::skiplist::LockFreeSkipList;

/// An ordered set of `Copy` keys, sharded per locale with cross-shard
/// range scans. See the module docs for the routing/scan protocol.
pub struct GlobalOrderedSet<K, R = EpochManager>
where
    K: Ord + Copy + Hash + Send + 'static,
    R: Reclaimer,
{
    /// `shards[l]`'s towers are homed on locale `l`.
    shards: Box<[LockFreeSkipList<K, R>]>,
    router: ShardRouter,
}

unsafe impl<K, R> Send for GlobalOrderedSet<K, R>
where
    K: Ord + Copy + Hash + Send + 'static,
    R: Reclaimer,
{
}
unsafe impl<K, R> Sync for GlobalOrderedSet<K, R>
where
    K: Ord + Copy + Hash + Send + 'static,
    R: Reclaimer,
{
}

impl<K> GlobalOrderedSet<K>
where
    K: Ord + Copy + Hash + Send + 'static,
{
    /// Create a set with one epoch-reclaimed skiplist shard per locale
    /// of the current runtime.
    pub fn new() -> GlobalOrderedSet<K> {
        Self::with_reclaimer()
    }
}

impl<K, R> GlobalOrderedSet<K, R>
where
    K: Ord + Copy + Hash + Send + 'static,
    R: Reclaimer,
{
    /// Create a set using reclamation backend `R` in every shard. Each
    /// shard is constructed *on* its locale so its towers are homed
    /// there.
    pub fn with_reclaimer() -> GlobalOrderedSet<K, R> {
        let rt = ctx::current_runtime();
        let shards = (0..rt.num_locales())
            .map(|l| rt.on(l as LocaleId, LockFreeSkipList::with_reclaimer))
            .collect();
        GlobalOrderedSet {
            shards,
            router: ShardRouter::new(&rt),
        }
    }

    /// The set's routing table.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Insert `key`; `false` when already present. Locally-owned keys run
    /// in place; remote keys ship one combined AM to the owner.
    pub fn insert(&self, key: K) -> bool {
        let _span = OpSpan::start(OpClass::OrderedSetOp, opkind::INSERT, hash_key(&key));
        self.route(key, move |shard| {
            let tok = shard.register();
            shard.insert(&tok, key)
        })
    }

    /// Remove `key`; `true` when it was present.
    pub fn remove(&self, key: K) -> bool {
        let _span = OpSpan::start(OpClass::OrderedSetOp, opkind::REMOVE, hash_key(&key));
        self.route(key, move |shard| {
            let tok = shard.register();
            shard.remove(&tok, key)
        })
    }

    /// True when `key` is present.
    pub fn contains(&self, key: K) -> bool {
        let _span = OpSpan::start(OpClass::OrderedSetOp, opkind::CONTAINS, hash_key(&key));
        self.route(key, move |shard| {
            let tok = shard.register();
            shard.contains(&tok, key)
        })
    }

    /// Run `f` against `key`'s owning shard — in place when the shard is
    /// local, over the combining layer otherwise.
    fn route<T, F>(&self, key: K, f: F) -> T
    where
        T: Send,
        F: FnOnce(&LockFreeSkipList<K, R>) -> T + Send,
    {
        let owner = self.router.owner(hash_key(&key));
        let shard = &self.shards[owner as usize];
        if owner == ctx::here() {
            f(shard)
        } else {
            ctx::current_runtime().on_combining(owner, move || f(shard))
        }
    }

    /// Every key in `[lo, hi)` (half-open, like the underlying
    /// skiplist's `collect_range`), globally sorted: each shard scans its
    /// slice locally (one fan-out task per shard) and the caller merges.
    /// Racy like any lock-free scan — exact in quiescence.
    pub fn range(&self, lo: K, hi: K) -> Vec<K> {
        let _span = OpSpan::start(OpClass::OrderedSetOp, opkind::RANGE, 0);
        let rt = ctx::current_runtime();
        let mut all = Vec::new();
        for (l, shard) in self.shards.iter().enumerate() {
            let part = rt.on(l as LocaleId, move || {
                let tok = shard.register();
                shard.collect_range(&tok, lo, hi)
            });
            all.extend(part);
        }
        // Shards are internally sorted but interleave globally.
        all.sort_unstable();
        all
    }

    /// Total key count across shards (racy; exact in quiescence).
    pub fn len(&self) -> usize {
        let _span = OpSpan::start(OpClass::OrderedSetOp, opkind::LEN, 0);
        let rt = ctx::current_runtime();
        let mut n = 0;
        for (l, shard) in self.shards.iter().enumerate() {
            n += rt.on(l as LocaleId, || shard.len());
        }
        n
    }

    /// True when no keys are present (racy; exact in quiescence).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempt reclamation in every shard.
    pub fn try_reclaim(&self) -> bool {
        let mut any = false;
        for shard in self.shards.iter() {
            any |= shard.try_reclaim();
        }
        any
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        for shard in self.shards.iter() {
            shard.clear_reclaim();
        }
    }
}

impl<K> Default for GlobalOrderedSet<K>
where
    K: Ord + Copy + Hash + Send + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn point_ops_roundtrip_across_locales() {
        let rt = zrt(4);
        rt.run(|| {
            let s: GlobalOrderedSet<u64> = GlobalOrderedSet::new();
            rt.coforall_locales(|l| {
                for i in 0..50u64 {
                    let k = (l as u64) * 100 + i;
                    assert!(s.insert(k));
                    assert!(!s.insert(k), "duplicate");
                }
            });
            assert_eq!(s.len(), 200);
            assert!(s.contains(137));
            assert!(!s.contains(1370));
            assert!(s.remove(137));
            assert!(!s.remove(137));
            assert_eq!(s.len(), 199);
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn range_scan_is_globally_sorted_across_shards() {
        let rt = zrt(4);
        rt.run(|| {
            let s: GlobalOrderedSet<u64> = GlobalOrderedSet::new();
            // Insert shuffled keys from every locale.
            rt.coforall_locales(|l| {
                for i in 0..64u64 {
                    s.insert(i * 4 + l as u64);
                }
            });
            // Keys hash-route, so any dense range must span shards.
            let keys_per_shard: Vec<usize> = (0..4)
                .map(|shard| {
                    (0..256u64)
                        .filter(|k| s.router().owner(crate::map::hash_key(k)) == shard)
                        .count()
                })
                .collect();
            assert!(
                keys_per_shard.iter().all(|&n| n > 0),
                "dense range must interleave shards: {keys_per_shard:?}"
            );
            let mid = s.range(100, 200);
            assert_eq!(mid.len(), 100, "[100, 200) is half-open");
            assert!(mid.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
            assert_eq!(mid.first(), Some(&100));
            assert_eq!(mid.last(), Some(&199));
            let all = s.range(0, u64::MAX);
            assert_eq!(all.len(), 256);
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn local_point_ops_send_no_ams() {
        let rt = Runtime::new(RuntimeConfig::cluster(4).without_network_atomics());
        rt.run(|| {
            let s: GlobalOrderedSet<u64> = GlobalOrderedSet::new();
            rt.on(2, || {
                let owned: Vec<u64> = (0..4096u64)
                    .filter(|k| s.router().owner(crate::map::hash_key(k)) == 2)
                    .take(32)
                    .collect();
                let before = rt.total_comm();
                for &k in &owned {
                    assert!(s.insert(k));
                    assert!(s.contains(k));
                }
                let d = rt.total_comm() - before;
                assert_eq!(d.am_sent, 0, "locally-owned ordered ops are AM-free");
            });
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_shards_roundtrip() {
        use pgas_epoch::HazardReclaimer;
        let rt = zrt(2);
        rt.run(|| {
            let s: GlobalOrderedSet<u32, HazardReclaimer> = GlobalOrderedSet::with_reclaimer();
            for k in 0..200u32 {
                assert!(s.insert(k));
            }
            assert_eq!(s.range(50, 150).len(), 100);
            for k in (0..200u32).step_by(2) {
                assert!(s.remove(k));
            }
            assert_eq!(s.len(), 100);
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
