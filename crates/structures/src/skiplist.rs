//! A lock-free skiplist set (Herlihy–Shavit / Fraser style) on PGAS
//! atomics with pluggable reclamation.
//!
//! The ordered-set structures the paper's building blocks enable do not
//! stop at linked lists: Fraser's practical-lock-freedom thesis — the
//! EBR source the paper builds on [10] — used skiplists as its flagship
//! application. This is that structure on `AtomicObject` towers:
//!
//! * each node owns a tower of `next` pointers; level 0 is the Harris
//!   list that defines membership, upper levels are index shortcuts;
//! * removal marks the tower top-down, and the level-0 mark is the
//!   linearization point of a successful `remove`;
//! * traversals snip marked nodes per level; the task whose CAS unlinks
//!   a node at **level 0** hands it to the [`Reclaimer`] (exactly-once
//!   retirement, as in [`crate::list`]);
//! * node heights come from a deterministic xorshift on the node address
//!   (geometric, p = 1/2), so no RNG state is shared.
//!
//! ## Hazard pointers and the index levels
//!
//! Under a hazard-pointer backend the tower height is capped at 1, so
//! the structure degenerates to the (proven) Harris-list protocol. The
//! reason is fundamental, not an implementation shortcut: a node is
//! retired when it is unlinked at level 0, but a racing `insert` that
//! already passed its mark check can still splice the node into an index
//! level afterwards. The node is then *reachable* at that level while
//! retired, so the hand-over-hand validation ("my predecessor still
//! points at it") can succeed on freed memory — exactly the multi-link
//! hazard-pointer weakness that makes EBR the paper's default. EBR
//! instantiations keep the full towers (a grace period covers transient
//! relinks); A8 quantifies what the cap costs HP in exchange for stall
//! tolerance.

use std::hash::Hash;

use pgas_atomics::AtomicObject;
use pgas_epoch::{EpochManager, ReclaimGuard, Reclaimer};
use pgas_sim::telemetry::{key_hash64, opkind, OpClass, OpSpan};
use pgas_sim::{alloc_local, ctx, GlobalPtr};

/// Maximum tower height (supports ~2^16 elements at p = 1/2 comfortably).
pub const MAX_HEIGHT: usize = 12;

/// One skiplist node: key + full-height tower (levels ≥ `height` unused).
pub struct Node<K> {
    key: std::mem::MaybeUninit<K>,
    height: usize,
    next: [AtomicObject<Node<K>>; MAX_HEIGHT],
}

impl<K: Copy> Node<K> {
    /// # Safety
    /// Must not be called on the head sentinel.
    #[inline]
    unsafe fn key(&self) -> K {
        unsafe { self.key.assume_init() }
    }
}

fn new_tower<K>() -> [AtomicObject<Node<K>>; MAX_HEIGHT] {
    std::array::from_fn(|_| AtomicObject::null())
}

/// Geometric height from a deterministic hash of the node address.
fn height_for(addr: usize) -> usize {
    let mut x = addr as u64 ^ 0x9E37_79B9_7F4A_7C15;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // count trailing ones of the hash, capped
    ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
}

/// A lock-free sorted set with expected-logarithmic operations (under
/// EBR; see the module docs for the hazard-pointer height cap).
pub struct LockFreeSkipList<K: Ord + Copy + Hash + Send + 'static, R: Reclaimer = EpochManager> {
    head: GlobalPtr<Node<K>>,
    em: R,
}

// SAFETY: shared state is atomic towers plus the reclaimer.
unsafe impl<K: Ord + Copy + Hash + Send + 'static, R: Reclaimer> Send for LockFreeSkipList<K, R> {}
unsafe impl<K: Ord + Copy + Hash + Send + 'static, R: Reclaimer> Sync for LockFreeSkipList<K, R> {}

type FindResult<K> = (
    [GlobalPtr<Node<K>>; MAX_HEIGHT],
    [GlobalPtr<Node<K>>; MAX_HEIGHT],
    bool,
);

impl<K: Ord + Copy + Hash + Send + 'static> LockFreeSkipList<K> {
    /// An empty set homed on the current locale, with the default
    /// epoch-based backend.
    pub fn new() -> LockFreeSkipList<K> {
        Self::with_reclaimer()
    }

    /// The set's epoch manager.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<K: Ord + Copy + Hash + Send + 'static, R: Reclaimer> LockFreeSkipList<K, R> {
    /// An empty set using reclamation backend `R`.
    pub fn with_reclaimer() -> LockFreeSkipList<K, R> {
        let head = alloc_local(
            &ctx::current_runtime(),
            Node {
                key: std::mem::MaybeUninit::uninit(),
                height: MAX_HEIGHT,
                next: new_tower(),
            },
        );
        LockFreeSkipList {
            head,
            em: R::new_in_runtime(),
        }
    }

    /// Register the calling task.
    pub fn register(&self) -> R::Guard<'_> {
        self.em.register()
    }

    /// Find predecessors/successors of `key` at every level, snipping
    /// marked nodes; the level-0 snipper retires the node. Caller must be
    /// pinned. Under HP the walking pair is protected hand-over-hand in
    /// slots 0/1 (only level 0 is populated, see the module docs), so on
    /// return `preds[0]`/`succs[0]` are protected.
    fn find(&self, tok: &R::Guard<'_>, key: &K) -> FindResult<K> {
        'retry: loop {
            let mut preds = [GlobalPtr::null(); MAX_HEIGHT];
            let mut succs = [GlobalPtr::null(); MAX_HEIGHT];
            let mut pred = self.head;
            let mut pred_slot = 1usize;
            let mut curr_slot = 0usize;
            for level in (0..MAX_HEIGHT).rev() {
                // SAFETY: pred is head (never reclaimed) or a protected
                // unmarked node seen this pass.
                let pred_ref = unsafe { pred.deref() };
                let mut curr = pred_ref.next[level].read().without_mark();
                if !curr.is_null()
                    && !tok.protect_ptr(curr_slot, curr, || pred_ref.next[level].read() == curr)
                {
                    continue 'retry;
                }
                loop {
                    if curr.is_null() {
                        break;
                    }
                    // SAFETY: protected — pinned (EBR) or validated (HP).
                    let curr_ref = unsafe { curr.deref() };
                    let succ = curr_ref.next[level].read();
                    if succ.is_marked() {
                        // Physically unlink at this level.
                        if !unsafe { pred.deref() }.next[level]
                            .compare_and_swap(curr, succ.without_mark())
                        {
                            continue 'retry;
                        }
                        if level == 0 {
                            // The level-0 unlink completes physical
                            // removal: retire exactly once.
                            tok.defer_delete(curr);
                        }
                        curr = succ.without_mark();
                        let pred_ref = unsafe { pred.deref() };
                        if !curr.is_null()
                            && !tok.protect_ptr(curr_slot, curr, || {
                                pred_ref.next[level].read() == curr
                            })
                        {
                            continue 'retry;
                        }
                    } else if unsafe { curr_ref.key() } < *key {
                        pred = curr;
                        std::mem::swap(&mut pred_slot, &mut curr_slot);
                        curr = succ;
                        if !tok.protect_ptr(curr_slot, curr, || curr_ref.next[level].read() == succ)
                        {
                            continue 'retry;
                        }
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = curr;
            }
            let found = !succs[0].is_null() && unsafe { succs[0].deref().key() } == *key;
            return (preds, succs, found);
        }
    }

    /// Tower height for a new node: full geometric towers under EBR, 1
    /// under hazard pointers (see the module docs).
    fn node_height(addr: usize) -> usize {
        if R::NEEDS_PROTECT {
            1
        } else {
            height_for(addr)
        }
    }

    /// Insert `key`; `false` if already present.
    pub fn insert(&self, tok: &R::Guard<'_>, key: K) -> bool {
        let span = OpSpan::start(OpClass::SkipListOp, opkind::INSERT, key_hash64(&key));
        tok.pin();
        let result = 'outer: loop {
            let (mut preds, mut succs, found) = self.find(tok, &key);
            if found {
                break false;
            }
            // Build the node with its bottom link pre-set.
            let node = alloc_local(
                &ctx::current_runtime(),
                Node {
                    key: std::mem::MaybeUninit::new(key),
                    height: 0, // patched below (needs the address)
                    next: new_tower(),
                },
            );
            let height = Self::node_height(node.addr());
            // SAFETY: unpublished.
            unsafe { &mut *node.as_ptr() }.height = height;
            for (level, &succ) in succs.iter().enumerate().take(height) {
                unsafe { node.deref() }.next[level].write(succ);
            }
            // Linearization: link level 0. preds[0] is protected by
            // find's walking slots.
            if !unsafe { preds[0].deref() }.next[0].compare_and_swap(succs[0], node) {
                // Lost the race; node unpublished — free and retry.
                unsafe {
                    (*node.as_ptr()).key.assume_init_drop();
                    pgas_sim::free(&ctx::current_runtime(), node);
                }
                span.retry();
                continue 'outer;
            }
            // Link the index levels (best effort; removal may intervene).
            // Unreachable under HP (height is 1): `node` may not be
            // dereferenced once published without its own protection.
            for level in 1..height {
                loop {
                    let node_next = unsafe { node.deref() }.next[level].read();
                    if node_next.is_marked() {
                        // Node is being removed; stop indexing it.
                        break 'outer true;
                    }
                    // Point the node at the current successor first…
                    if node_next != succs[level]
                        && !unsafe { node.deref() }.next[level]
                            .compare_and_swap(node_next, succs[level])
                    {
                        continue; // re-read (marked or raced)
                    }
                    // …then splice it in.
                    if unsafe { preds[level].deref() }.next[level]
                        .compare_and_swap(succs[level], node)
                    {
                        break;
                    }
                    // The neighborhood changed: recompute it.
                    let (p, s, _) = self.find(tok, &key);
                    // If the node vanished from level 0, it was removed.
                    if s[0] != node {
                        break 'outer true;
                    }
                    preds = p;
                    succs = s;
                }
            }
            break true;
        };
        tok.release(0);
        tok.release(1);
        tok.unpin();
        result
    }

    /// Remove `key`; `false` if absent.
    pub fn remove(&self, tok: &R::Guard<'_>, key: K) -> bool {
        let _span = OpSpan::start(OpClass::SkipListOp, opkind::REMOVE, key_hash64(&key));
        tok.pin();
        let result = self.remove_pinned(tok, key);
        tok.release(0);
        tok.release(1);
        tok.unpin();
        result
    }

    fn remove_pinned(&self, tok: &R::Guard<'_>, key: K) -> bool {
        let (_, succs, found) = self.find(tok, &key);
        if !found {
            return false;
        }
        let node = succs[0];
        // SAFETY: protected by find's walking slots (held until the next
        // find call, by which point `node_ref` is no longer used).
        let node_ref = unsafe { node.deref() };
        // Mark the index levels top-down (idempotent).
        for level in (1..node_ref.height).rev() {
            loop {
                let succ = node_ref.next[level].read();
                if succ.is_marked() {
                    break;
                }
                if node_ref.next[level].compare_and_swap(succ, succ.with_mark()) {
                    break;
                }
            }
        }
        // Level 0 mark: the linearization point. Exactly one remover
        // wins it; a CAS that fails because the successor moved retries,
        // one that fails because the mark landed concedes.
        loop {
            let succ = node_ref.next[0].read();
            if succ.is_marked() {
                return false; // somebody else removed it first
            }
            if node_ref.next[0].compare_and_swap(succ, succ.with_mark()) {
                // Trigger physical unlink (and the retirement, inside
                // find's level-0 snip).
                let _ = self.find(tok, &key);
                return true;
            }
        }
    }

    /// Membership test (read-only: no snipping).
    pub fn contains(&self, tok: &R::Guard<'_>, key: K) -> bool {
        let _span = OpSpan::start(OpClass::SkipListOp, opkind::CONTAINS, key_hash64(&key));
        tok.pin();
        let found = 'retry: loop {
            let mut pred = self.head;
            let mut pred_slot = 1usize;
            let mut curr_slot = 0usize;
            let mut found = false;
            for level in (0..MAX_HEIGHT).rev() {
                // SAFETY: head, or a protected unmarked node.
                let pred_ref = unsafe { pred.deref() };
                let mut curr = pred_ref.next[level].read().without_mark();
                if !curr.is_null()
                    && !tok.protect_ptr(curr_slot, curr, || pred_ref.next[level].read() == curr)
                {
                    continue 'retry;
                }
                loop {
                    if curr.is_null() {
                        break;
                    }
                    let curr_ref = unsafe { curr.deref() };
                    let succ = curr_ref.next[level].read();
                    if succ.is_marked() {
                        // HP cannot step across a marked link; EBR walks
                        // straight through, as before.
                        if R::NEEDS_PROTECT {
                            continue 'retry;
                        }
                        curr = succ.without_mark();
                        continue;
                    }
                    let k = unsafe { curr_ref.key() };
                    if k < key {
                        pred = curr;
                        std::mem::swap(&mut pred_slot, &mut curr_slot);
                        curr = succ;
                        if !curr.is_null()
                            && !tok.protect_ptr(curr_slot, curr, || {
                                curr_ref.next[level].read() == succ
                            })
                        {
                            continue 'retry;
                        }
                    } else {
                        if level == 0 {
                            found = k == key;
                        }
                        break;
                    }
                }
            }
            break found;
        };
        tok.release(0);
        tok.release(1);
        tok.unpin();
        found
    }

    /// Collect every present key in `[lo, hi)` under the token's pin —
    /// a consistent-enough snapshot for range queries (keys inserted or
    /// removed concurrently may or may not appear, as with any lock-free
    /// range scan).
    pub fn collect_range(&self, tok: &R::Guard<'_>, lo: K, hi: K) -> Vec<K> {
        let _span = OpSpan::start(OpClass::SkipListOp, opkind::RANGE, key_hash64(&lo));
        tok.pin();
        let out = 'retry: loop {
            let mut out = Vec::new();
            // Descend to the first node >= lo using the index levels…
            let mut pred = self.head;
            let mut pred_slot = 1usize;
            let mut curr_slot = 0usize;
            for level in (0..MAX_HEIGHT).rev() {
                // SAFETY: head, or a protected unmarked node.
                let pred_ref = unsafe { pred.deref() };
                let mut curr = pred_ref.next[level].read().without_mark();
                if !curr.is_null()
                    && !tok.protect_ptr(curr_slot, curr, || pred_ref.next[level].read() == curr)
                {
                    continue 'retry;
                }
                while !curr.is_null() {
                    let curr_ref = unsafe { curr.deref() };
                    let succ = curr_ref.next[level].read();
                    if succ.is_marked() {
                        if R::NEEDS_PROTECT {
                            continue 'retry;
                        }
                        curr = succ.without_mark();
                        continue;
                    }
                    if unsafe { curr_ref.key() } < lo {
                        pred = curr;
                        std::mem::swap(&mut pred_slot, &mut curr_slot);
                        curr = succ;
                        if !curr.is_null()
                            && !tok.protect_ptr(curr_slot, curr, || {
                                curr_ref.next[level].read() == succ
                            })
                        {
                            continue 'retry;
                        }
                    } else {
                        break;
                    }
                }
            }
            // …then walk level 0 through the range.
            let pred_ref = unsafe { pred.deref() };
            let mut curr = pred_ref.next[0].read().without_mark();
            if !curr.is_null()
                && !tok.protect_ptr(curr_slot, curr, || pred_ref.next[0].read() == curr)
            {
                continue 'retry;
            }
            let mut restart = false;
            while !curr.is_null() {
                let curr_ref = unsafe { curr.deref() };
                let succ = curr_ref.next[0].read();
                let k = unsafe { curr_ref.key() };
                if k >= hi {
                    break;
                }
                if R::NEEDS_PROTECT && succ.is_marked() {
                    restart = true;
                    break;
                }
                if !succ.is_marked() && k >= lo {
                    out.push(k);
                }
                let prev_ref = curr_ref;
                std::mem::swap(&mut pred_slot, &mut curr_slot);
                curr = succ.without_mark();
                if !curr.is_null()
                    && !tok.protect_ptr(curr_slot, curr, || prev_ref.next[0].read() == succ)
                {
                    restart = true;
                    break;
                }
            }
            if restart {
                continue 'retry;
            }
            break out;
        };
        tok.release(0);
        tok.release(1);
        tok.unpin();
        out
    }

    /// Number of present keys (racy; exact in quiescence).
    pub fn len(&self) -> usize {
        let _span = OpSpan::start(OpClass::SkipListOp, opkind::LEN, 0);
        if R::NEEDS_PROTECT {
            let g = self.em.register();
            g.pin();
            let n = 'retry: loop {
                // SAFETY: head sentinel, never reclaimed.
                let mut prev_ref = unsafe { self.head.deref() };
                let mut prev_slot = 1usize;
                let mut curr_slot = 0usize;
                let mut curr = prev_ref.next[0].read().without_mark();
                if !curr.is_null()
                    && !g.protect_ptr(curr_slot, curr, || prev_ref.next[0].read() == curr)
                {
                    continue 'retry;
                }
                let mut n = 0usize;
                while !curr.is_null() {
                    let curr_ref = unsafe { curr.deref() };
                    let succ = curr_ref.next[0].read();
                    if succ.is_marked() {
                        continue 'retry;
                    }
                    n += 1;
                    prev_ref = curr_ref;
                    std::mem::swap(&mut prev_slot, &mut curr_slot);
                    curr = succ;
                    if !curr.is_null()
                        && !g.protect_ptr(curr_slot, curr, || prev_ref.next[0].read() == succ)
                    {
                        continue 'retry;
                    }
                }
                break n;
            };
            g.release(0);
            g.release(1);
            g.unpin();
            n
        } else {
            let mut n = 0;
            let mut curr = unsafe { self.head.deref() }.next[0].read().without_mark();
            while !curr.is_null() {
                let succ = unsafe { curr.deref() }.next[0].read();
                if !succ.is_marked() {
                    n += 1;
                }
                curr = succ.without_mark();
            }
            n
        }
    }

    /// True when empty (racy; exact in quiescence).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempt an epoch advance / hazard scan + reclamation.
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The set's reclamation backend.
    pub fn reclaimer(&self) -> &R {
        &self.em
    }
}

impl<K: Ord + Copy + Hash + Send + 'static, R: Reclaimer> Default for LockFreeSkipList<K, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<K: Ord + Copy + Hash + Send + 'static, R: Reclaimer> Drop for LockFreeSkipList<K, R> {
    fn drop(&mut self) {
        let teardown = || {
            let rt = ctx::current_runtime();
            // Quiescent teardown: walk level 0 and free everything.
            let mut curr = self.head;
            while !curr.is_null() {
                let next = unsafe { curr.deref() }.next[0].read().without_mark();
                unsafe { pgas_sim::free(&rt, curr) };
                curr = next;
            }
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            let tok = s.register();
            for k in [50u64, 10, 90, 30, 70] {
                assert!(s.insert(&tok, k));
            }
            assert!(!s.insert(&tok, 50), "duplicate");
            assert_eq!(s.len(), 5);
            assert!(s.contains(&tok, 30));
            assert!(!s.contains(&tok, 31));
            assert!(s.remove(&tok, 30));
            assert!(!s.remove(&tok, 30));
            assert!(!s.contains(&tok, 30));
            assert_eq!(s.len(), 4);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn bottom_level_stays_sorted() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            let tok = s.register();
            for k in [9u64, 1, 7, 3, 5, 8, 2, 6, 4, 0] {
                s.insert(&tok, k);
            }
            let mut keys = Vec::new();
            let mut curr = unsafe { s.head.deref() }.next[0].read().without_mark();
            while !curr.is_null() {
                keys.push(unsafe { curr.deref().key() });
                curr = unsafe { curr.deref() }.next[0].read().without_mark();
            }
            assert_eq!(keys, (0..10).collect::<Vec<u64>>());
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn towers_never_skip_present_keys() {
        // Index-level invariant: any key reachable at level L is also
        // reachable at every lower level.
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            let tok = s.register();
            for k in 0..200u64 {
                s.insert(&tok, k * 3);
            }
            for level in 1..MAX_HEIGHT {
                let mut curr = unsafe { s.head.deref() }.next[level].read().without_mark();
                while !curr.is_null() {
                    let key = unsafe { curr.deref().key() };
                    assert!(s.contains(&tok, key), "level {level} key {key}");
                    curr = unsafe { curr.deref() }.next[level].read().without_mark();
                }
            }
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn heights_are_geometricish() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            let tok = s.register();
            for k in 0..512u64 {
                s.insert(&tok, k);
            }
            // Count nodes per level; level 1 should be roughly half of
            // level 0 (very loose bounds — the hash is deterministic).
            let count_level = |level: usize| {
                let mut n = 0;
                let mut curr = unsafe { s.head.deref() }.next[level].read().without_mark();
                while !curr.is_null() {
                    n += 1;
                    curr = unsafe { curr.deref() }.next[level].read().without_mark();
                }
                n
            };
            let l0 = count_level(0);
            let l1 = count_level(1);
            assert_eq!(l0, 512);
            assert!(
                l1 > 512 / 8 && l1 < 512 * 7 / 8,
                "level 1 should thin out the list: {l1}"
            );
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn model_check_against_btreeset() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            let tok = s.register();
            let mut model = std::collections::BTreeSet::new();
            let mut rng = StdRng::seed_from_u64(4242);
            for step in 0..3000 {
                let k: u8 = rng.gen_range(0..96);
                match rng.gen_range(0..3) {
                    0 => assert_eq!(s.insert(&tok, k), model.insert(k), "step {step}"),
                    1 => assert_eq!(s.remove(&tok, k), model.remove(&k), "step {step}"),
                    _ => assert_eq!(s.contains(&tok, k), model.contains(&k), "step {step}"),
                }
                if step % 500 == 0 {
                    s.try_reclaim();
                }
            }
            assert_eq!(s.len(), model.len());
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn collect_range_returns_sorted_window() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            let tok = s.register();
            for k in 0..100u64 {
                s.insert(&tok, k * 2); // evens only
            }
            let r = s.collect_range(&tok, 30, 50);
            assert_eq!(r, vec![30, 32, 34, 36, 38, 40, 42, 44, 46, 48]);
            let empty = s.collect_range(&tok, 31, 32);
            assert!(empty.is_empty());
            let all = s.collect_range(&tok, 0, u64::MAX);
            assert_eq!(all.len(), 100);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            rt.coforall_tasks(4, |t| {
                let tok = s.register();
                for i in 0..150u64 {
                    assert!(s.insert(&tok, t as u64 * 1000 + i));
                }
            });
            assert_eq!(s.len(), 600);
            let tok = s.register();
            assert!(s.contains(&tok, 2075));
            assert!(!s.contains(&tok, 2150));
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn concurrent_insert_remove_churn_conserves() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            let net = AtomicUsize::new(0);
            rt.coforall_tasks(4, |t| {
                let tok = s.register();
                for i in 0..250u32 {
                    let k = ((t as u32 * 37 + i) % 128) as u16;
                    if i % 2 == 0 {
                        if s.insert(&tok, k) {
                            net.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if s.remove(&tok, k) {
                        net.fetch_sub(1, Ordering::Relaxed);
                    }
                    if i % 64 == 0 {
                        s.try_reclaim();
                    }
                }
            });
            assert_eq!(s.len(), net.load(Ordering::Relaxed));
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn same_key_racers_one_winner() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            let wins = AtomicUsize::new(0);
            rt.coforall_tasks(6, |_| {
                let tok = s.register();
                if s.insert(&tok, 7u64) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
            let removes = AtomicUsize::new(0);
            rt.coforall_tasks(6, |_| {
                let tok = s.register();
                if s.remove(&tok, 7u64) {
                    removes.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(removes.load(Ordering::Relaxed), 1);
            assert!(s.is_empty());
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn distributed_use_across_locales() {
        let rt = zrt(4);
        rt.run(|| {
            let s = LockFreeSkipList::new();
            rt.coforall_locales(|l| {
                let tok = s.register();
                for i in 0..50u64 {
                    assert!(s.insert(&tok, l as u64 * 100 + i));
                }
                for i in 0..50u64 {
                    if i % 2 == 0 {
                        assert!(s.remove(&tok, l as u64 * 100 + i));
                    }
                }
            });
            assert_eq!(s.len(), 4 * 25);
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_backend_caps_height_and_stays_correct() {
        use pgas_epoch::HazardReclaimer;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::<u8, HazardReclaimer>::with_reclaimer();
            let tok = s.register();
            let mut model = std::collections::BTreeSet::new();
            let mut rng = StdRng::seed_from_u64(77);
            for _ in 0..2000 {
                let k: u8 = rng.gen_range(0..96);
                match rng.gen_range(0..3) {
                    0 => assert_eq!(s.insert(&tok, k), model.insert(k)),
                    1 => assert_eq!(s.remove(&tok, k), model.remove(&k)),
                    _ => assert_eq!(s.contains(&tok, k), model.contains(&k)),
                }
            }
            assert_eq!(s.len(), model.len());
            // Height cap: no index levels under HP.
            assert!(unsafe { s.head.deref() }.next[1].read().is_null());
            drop(tok);
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_backend_concurrent_churn() {
        use pgas_epoch::HazardReclaimer;
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeSkipList::<u16, HazardReclaimer>::with_reclaimer();
            let net = AtomicUsize::new(0);
            rt.coforall_tasks(4, |t| {
                let tok = s.register();
                for i in 0..250u32 {
                    let k = ((t as u32 * 37 + i) % 128) as u16;
                    if i % 2 == 0 {
                        if s.insert(&tok, k) {
                            net.fetch_add(1, Ordering::Relaxed);
                        }
                    } else if s.remove(&tok, k) {
                        net.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
            assert_eq!(s.len(), net.load(Ordering::Relaxed));
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
