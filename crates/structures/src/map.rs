//! A distributed lock-free hash map.
//!
//! The paper's conclusion reports porting the *Interlocked Hash Table*
//! [16] onto `AtomicObject` + `EpochManager` as its first application.
//! This module is that application, simplified to its load-bearing ideas:
//!
//! * a fixed power-of-two bucket table whose buckets are **distributed
//!   cyclically across locales** (bucket *b* lives on locale `b % L`), so
//!   the map's memory and its atomic traffic spread over the machine;
//! * each bucket is a lock-free ordered chain (Harris marking, exactly as
//!   in [`crate::list`]) keyed by `(hash, key)`;
//! * all chain links are compressed global pointers, so bucket CAS
//!   operations are RDMA atomics when network atomics are available;
//! * unlinked entry nodes are retired through one shared `EpochManager` —
//!   whose scatter lists are exercised for real here, because a bucket's
//!   nodes are allocated on the *inserting* task's locale while the drain
//!   happens wherever reclamation runs.
//!
//! `get` clones the value out while pinned (values may be reclaimed after
//! removal, so references cannot escape the pin).
//!
//! This flat layout is the **legacy** tier: any task walks any chain
//! directly, so under remote-heavy workloads every chain hop pays
//! communication. The privatized per-locale-sharded layout the follow-up
//! paper calls for lives in [`crate::sharded_map`], built on the *chain
//! primitives* factored out below (`chain_search` / `chain_insert` /
//! `chain_get` / `chain_remove` / …) so both tiers run the identical
//! Harris protocol and differ only in where chains live and how
//! operations route to them.

use std::hash::{Hash, Hasher};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pgas_atomics::AtomicObject;
use pgas_epoch::{EpochManager, ReclaimGuard, Reclaimer};
use pgas_sim::engine::DEFAULT_BUFFER_CAP;
use pgas_sim::runtime::RuntimeCore;
use pgas_sim::telemetry::{key_hash64, opkind, OpClass, OpSpan};
use pgas_sim::{alloc_local, alloc_on, ctx, Batcher, GlobalPtr, LocaleId};

/// One chain cell.
pub struct Node<K, V> {
    pub(crate) hash: u64,
    key: MaybeUninit<K>,
    value: MaybeUninit<V>,
    pub(crate) next: AtomicObject<Node<K, V>>,
}

impl<K, V> Node<K, V> {
    /// # Safety
    /// Must not be called on a bucket sentinel.
    pub(crate) unsafe fn key(&self) -> &K {
        unsafe { self.key.assume_init_ref() }
    }

    /// # Safety
    /// Must not be called on a bucket sentinel.
    pub(crate) unsafe fn value(&self) -> &V {
        unsafe { self.value.assume_init_ref() }
    }
}

/// A `(predecessor, current)` node pair returned by a bucket search.
pub(crate) type NodePair<K, V> = (GlobalPtr<Node<K, V>>, GlobalPtr<Node<K, V>>);

/// The map's key hash (shared by the legacy and sharded tiers so a
/// rebalance can re-route entries without rehashing differently).
pub(crate) fn hash_key<K: Hash>(key: &K) -> u64 {
    // FxHash-style multiply-xor — cheap and good enough for tests and
    // benchmarks; HashDoS resistance is out of scope for the reproduction.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Chain order: by `(hash, key)`.
fn precedes<K: Ord>(hash: u64, key: &K, node_hash: u64, node_key: &K) -> std::cmp::Ordering {
    (hash, key).cmp(&(node_hash, node_key))
}

/// Allocate one bucket sentinel on `owner`.
pub(crate) fn alloc_sentinel<K, V>(core: &RuntimeCore, owner: LocaleId) -> GlobalPtr<Node<K, V>>
where
    K: Send + 'static,
    V: Send + 'static,
{
    alloc_on(
        core,
        owner,
        Node {
            hash: 0,
            key: MaybeUninit::uninit(),
            value: MaybeUninit::uninit(),
            next: AtomicObject::new_on(owner, GlobalPtr::null()),
        },
    )
}

// ---------------------------------------------------------------------
// Chain primitives: the Harris protocol over one bucket chain, shared by
// the legacy flat map below and the sharded map in `crate::sharded_map`.
// ---------------------------------------------------------------------

/// Harris search within one bucket chain. Caller must be pinned.
/// Under HP, `pred`/`curr` are protected hand-over-hand in slots 0/1
/// (validated as in [`crate::list`]: an unmarked `pred.next == curr`
/// proves both are still in the chain).
pub(crate) fn chain_search<K, V, R>(
    tok: &R::Guard<'_>,
    sentinel: GlobalPtr<Node<K, V>>,
    hash: u64,
    key: &K,
) -> NodePair<K, V>
where
    K: Hash + Ord + Send + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    'retry: loop {
        let mut pred = sentinel;
        // SAFETY: sentinels are never reclaimed while the map lives.
        let mut pred_ref = unsafe { pred.deref() };
        let mut pred_slot = 1usize;
        let mut curr_slot = 0usize;
        let mut curr = pred_ref.next.read().without_mark();
        if !curr.is_null() && !tok.protect_ptr(curr_slot, curr, || pred_ref.next.read() == curr) {
            continue 'retry;
        }
        loop {
            if curr.is_null() {
                return (pred, curr);
            }
            // SAFETY: protected — pinned (EBR) or hazard-validated (HP).
            let curr_ref = unsafe { curr.deref() };
            let succ = curr_ref.next.read();
            if succ.is_marked() {
                if !pred_ref.next.compare_and_swap(curr, succ.without_mark()) {
                    continue 'retry;
                }
                tok.defer_delete(curr);
                curr = succ.without_mark();
                if !curr.is_null()
                    && !tok.protect_ptr(curr_slot, curr, || pred_ref.next.read() == curr)
                {
                    continue 'retry;
                }
            } else {
                // SAFETY: curr is not a sentinel.
                let ord = precedes(hash, key, curr_ref.hash, unsafe { curr_ref.key() });
                if ord != std::cmp::Ordering::Greater {
                    return (pred, curr);
                }
                pred = curr;
                pred_ref = curr_ref;
                std::mem::swap(&mut pred_slot, &mut curr_slot);
                curr = succ;
                if !tok.protect_ptr(curr_slot, curr, || pred_ref.next.read() == succ) {
                    continue 'retry;
                }
            }
        }
    }
}

fn chain_matches<K, V>(curr: GlobalPtr<Node<K, V>>, hash: u64, key: &K) -> bool
where
    K: Ord,
{
    if curr.is_null() {
        return false;
    }
    // SAFETY: non-null chain nodes are initialized entries.
    let node = unsafe { curr.deref() };
    node.hash == hash && unsafe { node.key() } == key
}

/// Insert `(key, value)` into the chain rooted at `sentinel`. Handles
/// pin/protect lifecycle; `span` (when given) accumulates CAS retries.
/// The entry node is allocated on the *executing* locale — local to the
/// shard owner when called from the sharded tier's owner path, local to
/// the inserting task in the legacy flat map.
pub(crate) fn chain_insert<K, V, R>(
    tok: &R::Guard<'_>,
    sentinel: GlobalPtr<Node<K, V>>,
    hash: u64,
    key: K,
    value: V,
    span: Option<&OpSpan>,
) -> bool
where
    K: Hash + Ord + Send + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    tok.pin();
    // `kv` owns the pair until it moves into a node exactly once.
    let mut kv = Some((key, value));
    let mut node: Option<GlobalPtr<Node<K, V>>> = None;
    let result = loop {
        // The key lives either in `kv` or inside the (unpublished) node.
        // SAFETY: an unpublished node's key was initialized when built.
        let key_ref: &K = match (&kv, node) {
            (Some((k, _)), _) => k,
            (None, Some(n)) => unsafe { (*n.as_ptr()).key() },
            (None, None) => unreachable!("key neither held nor in node"),
        };
        let (pred, curr) = chain_search::<K, V, R>(tok, sentinel, hash, key_ref);
        if chain_matches(curr, hash, key_ref) {
            // Key present: discard any speculatively allocated node
            // (never published, so we own it outright).
            if let Some(n) = node.take() {
                unsafe {
                    let n_ref = &mut *n.as_ptr();
                    n_ref.key.assume_init_drop();
                    n_ref.value.assume_init_drop();
                    pgas_sim::free(&ctx::current_runtime(), n);
                }
            }
            break false;
        }
        let n = match node {
            Some(n) => {
                // Reuse the node from the lost race; repoint its next.
                unsafe { &*n.as_ptr() }.next.write(curr);
                n
            }
            None => {
                let (k, v) = kv.take().expect("pair moved twice");
                let n = alloc_local(
                    &ctx::current_runtime(),
                    Node {
                        hash,
                        key: MaybeUninit::new(k),
                        value: MaybeUninit::new(v),
                        next: AtomicObject::new(curr),
                    },
                );
                node = Some(n);
                n
            }
        };
        // SAFETY: protected (pred held by search's slots under HP).
        if unsafe { pred.deref() }.next.compare_and_swap(curr, n) {
            break true;
        }
        if let Some(s) = span {
            s.retry();
        }
    };
    tok.release(0);
    tok.release(1);
    tok.unpin();
    result
}

/// Look up `(hash, key)` in the chain rooted at `sentinel`, cloning the
/// value out under the pin.
pub(crate) fn chain_get<K, V, R>(
    tok: &R::Guard<'_>,
    sentinel: GlobalPtr<Node<K, V>>,
    hash: u64,
    key: &K,
) -> Option<V>
where
    K: Hash + Ord + Send + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    tok.pin();
    // Read-only walk (no snipping), like `contains` in the list.
    let result = 'retry: loop {
        // SAFETY: sentinels are never reclaimed while the map lives.
        let mut prev_ref = unsafe { sentinel.deref() };
        let mut prev_slot = 1usize;
        let mut curr_slot = 0usize;
        let mut curr = prev_ref.next.read().without_mark();
        if !curr.is_null() && !tok.protect_ptr(curr_slot, curr, || prev_ref.next.read() == curr) {
            continue 'retry;
        }
        let mut result = None;
        while !curr.is_null() {
            // SAFETY: protected.
            let node = unsafe { curr.deref() };
            let succ = node.next.read();
            match precedes(hash, key, node.hash, unsafe { node.key() }) {
                std::cmp::Ordering::Less => break,
                std::cmp::Ordering::Equal => {
                    if !succ.is_marked() {
                        result = Some(unsafe { node.value() }.clone());
                    }
                    break;
                }
                std::cmp::Ordering::Greater => {
                    // HP cannot step across a marked link safely.
                    if R::NEEDS_PROTECT && succ.is_marked() {
                        continue 'retry;
                    }
                    prev_ref = node;
                    std::mem::swap(&mut prev_slot, &mut curr_slot);
                    curr = succ.without_mark();
                    if !curr.is_null()
                        && !tok.protect_ptr(curr_slot, curr, || prev_ref.next.read() == succ)
                    {
                        continue 'retry;
                    }
                }
            }
        }
        break result;
    };
    tok.release(0);
    tok.release(1);
    tok.unpin();
    result
}

/// Remove `(hash, key)` from the chain rooted at `sentinel`; `true` when
/// it was present. Runs Harris's completion step (a re-search) when the
/// physical unlink loses its race, so no marked node stays reachable.
pub(crate) fn chain_remove<K, V, R>(
    tok: &R::Guard<'_>,
    sentinel: GlobalPtr<Node<K, V>>,
    hash: u64,
    key: &K,
    span: Option<&OpSpan>,
) -> bool
where
    K: Hash + Ord + Send + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    tok.pin();
    let result = loop {
        let (pred, curr) = chain_search::<K, V, R>(tok, sentinel, hash, key);
        if !chain_matches(curr, hash, key) {
            break false;
        }
        // SAFETY: protected by search's slots.
        let curr_ref = unsafe { curr.deref() };
        let succ = curr_ref.next.read();
        if succ.is_marked() {
            if let Some(s) = span {
                s.retry();
            }
            continue;
        }
        if !curr_ref.next.compare_and_swap(succ, succ.with_mark()) {
            if let Some(s) = span {
                s.retry();
            }
            continue;
        }
        if unsafe { pred.deref() }
            .next
            .compare_and_swap(curr, succ.without_mark())
        {
            tok.defer_delete(curr);
        } else {
            // Harris's completion step: re-search so the marked node
            // is physically unlinked (and retired by the snip there)
            // before we return. Read-only walks under HP cannot step
            // across a marked link, so leaving one reachable at
            // quiescence would spin them forever.
            let _ = chain_search::<K, V, R>(tok, sentinel, hash, key);
        }
        break true;
    };
    tok.release(0);
    tok.release(1);
    tok.unpin();
    result
}

/// Count live entries in one chain. Caller must hold a pinned guard.
/// Racy; exact in quiescence. Under HP the walk restarts at a marked
/// link (it cannot be stepped across safely).
pub(crate) fn chain_count<K, V, R>(g: &R::Guard<'_>, sentinel: GlobalPtr<Node<K, V>>) -> usize
where
    K: Hash + Ord + Send + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    if R::NEEDS_PROTECT {
        'retry: loop {
            let mut prev_ref = unsafe { sentinel.deref() };
            let mut prev_slot = 1usize;
            let mut curr_slot = 0usize;
            let mut curr = prev_ref.next.read().without_mark();
            if !curr.is_null() && !g.protect_ptr(curr_slot, curr, || prev_ref.next.read() == curr) {
                continue 'retry;
            }
            let mut n = 0usize;
            while !curr.is_null() {
                let curr_ref = unsafe { curr.deref() };
                let succ = curr_ref.next.read();
                if succ.is_marked() {
                    // Can't step across a marked link under HP.
                    continue 'retry;
                }
                n += 1;
                prev_ref = curr_ref;
                std::mem::swap(&mut prev_slot, &mut curr_slot);
                curr = succ;
                if !curr.is_null()
                    && !g.protect_ptr(curr_slot, curr, || prev_ref.next.read() == succ)
                {
                    continue 'retry;
                }
            }
            break n;
        }
    } else {
        let mut n = 0;
        let mut curr = unsafe { sentinel.deref() }.next.read().without_mark();
        while !curr.is_null() {
            let succ = unsafe { curr.deref() }.next.read();
            if !succ.is_marked() {
                n += 1;
            }
            curr = succ.without_mark();
        }
        n
    }
}

/// Collect every live entry of one chain as `(hash, key, value)` clones.
///
/// # Safety
/// Quiescent only: no concurrent writers (used by the sharded map's bulk
/// rebalance, which owns the structure for the duration).
pub(crate) unsafe fn chain_collect<K, V>(sentinel: GlobalPtr<Node<K, V>>) -> Vec<(u64, K, V)>
where
    K: Hash + Ord + Clone + Send + 'static,
    V: Clone + Send + 'static,
{
    let mut out = Vec::new();
    let mut curr = unsafe { sentinel.deref() }.next.read().without_mark();
    while !curr.is_null() {
        let node = unsafe { curr.deref() };
        let succ = node.next.read();
        if !succ.is_marked() {
            out.push((
                node.hash,
                unsafe { node.key() }.clone(),
                unsafe { node.value() }.clone(),
            ));
        }
        curr = succ.without_mark();
    }
    out
}

/// Quiescent teardown of one chain: free every entry node (running K/V
/// destructors) and the sentinel itself.
///
/// # Safety
/// Quiescent only; the sentinel must not be used afterwards.
pub(crate) unsafe fn chain_teardown<K, V>(core: &RuntimeCore, sentinel: GlobalPtr<Node<K, V>>)
where
    K: Send + 'static,
    V: Send + 'static,
{
    let mut curr = unsafe { sentinel.deref() }.next.read().without_mark();
    // SAFETY: quiescent.
    unsafe { pgas_sim::free(core, sentinel) };
    while !curr.is_null() {
        let next = unsafe { curr.deref() }.next.read().without_mark();
        // SAFETY: quiescent; entry nodes hold initialized K/V.
        unsafe {
            let node = &mut *curr.as_ptr();
            node.key.assume_init_drop();
            node.value.assume_init_drop();
            pgas_sim::free(core, curr);
        }
        curr = next;
    }
}

// ---------------------------------------------------------------------
// The legacy flat map.
// ---------------------------------------------------------------------

/// A lock-free hash map with buckets distributed across locales, generic
/// over its reclamation backend.
pub struct DistHashMap<K, V, R = EpochManager>
where
    K: Hash + Ord + Send + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    /// Sentinel node of each bucket chain; bucket `b` lives on locale
    /// `b % num_locales`.
    buckets: Box<[GlobalPtr<Node<K, V>>]>,
    mask: u64,
    em: R,
}

unsafe impl<K: Hash + Ord + Send + 'static, V: Clone + Send + 'static, R: Reclaimer> Send
    for DistHashMap<K, V, R>
{
}
unsafe impl<K: Hash + Ord + Send + 'static, V: Clone + Send + 'static, R: Reclaimer> Sync
    for DistHashMap<K, V, R>
{
}

impl<K, V> DistHashMap<K, V>
where
    K: Hash + Ord + Send + 'static,
    V: Clone + Send + 'static,
{
    /// Create a map with `num_buckets` (rounded up to a power of two)
    /// distributed over all locales of the current runtime, with the
    /// default epoch-based backend.
    pub fn new(num_buckets: usize) -> DistHashMap<K, V> {
        Self::with_reclaimer(num_buckets)
    }

    /// The map's epoch manager.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<K, V, R> DistHashMap<K, V, R>
where
    K: Hash + Ord + Send + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    /// Create a map with `num_buckets` buckets using reclamation
    /// backend `R`.
    pub fn with_reclaimer(num_buckets: usize) -> DistHashMap<K, V, R> {
        let rt = ctx::current_runtime();
        let n = num_buckets.next_power_of_two().max(1);
        let locales = rt.num_locales();
        let buckets = (0..n)
            .map(|b| alloc_sentinel(&rt, (b % locales) as LocaleId))
            .collect();
        DistHashMap {
            buckets,
            mask: (n - 1) as u64,
            em: R::new_in_runtime(),
        }
    }

    /// Register the calling task.
    pub fn register(&self) -> R::Guard<'_> {
        self.em.register()
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_for(&self, hash: u64) -> GlobalPtr<Node<K, V>> {
        self.buckets[(hash & self.mask) as usize]
    }

    /// Insert `(key, value)`. Returns `false` (and drops both) when the
    /// key is already present.
    pub fn insert(&self, tok: &R::Guard<'_>, key: K, value: V) -> bool {
        let hash = hash_key(&key);
        let span = OpSpan::start(OpClass::MapOp, opkind::INSERT, hash);
        let sentinel = self.bucket_for(hash);
        chain_insert::<K, V, R>(tok, sentinel, hash, key, value, Some(&span))
    }

    /// Look up `key`, cloning the value out under the pin.
    pub fn get(&self, tok: &R::Guard<'_>, key: &K) -> Option<V> {
        let hash = hash_key(key);
        let _span = OpSpan::start(OpClass::MapOp, opkind::GET, hash);
        let sentinel = self.bucket_for(hash);
        chain_get::<K, V, R>(tok, sentinel, hash, key)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, tok: &R::Guard<'_>, key: &K) -> bool {
        let _span = OpSpan::start(OpClass::MapOp, opkind::CONTAINS, key_hash64(key));
        self.get(tok, key).is_some()
    }

    /// Remove `key`; returns `true` when it was present.
    pub fn remove(&self, tok: &R::Guard<'_>, key: &K) -> bool {
        let hash = hash_key(key);
        let span = OpSpan::start(OpClass::MapOp, opkind::REMOVE, hash);
        let sentinel = self.bucket_for(hash);
        chain_remove::<K, V, R>(tok, sentinel, hash, key, Some(&span))
    }

    /// Insert many pairs through the engine's batched communication path.
    ///
    /// Pairs are binned by the owning locale of their bucket and shipped as
    /// bulk active messages (one per destination buffer, see
    /// [`pgas_sim::Batcher`]) instead of paying per-key communication; the
    /// destination-side handler registers its own epoch token and performs
    /// ordinary lock-free inserts, so batched and per-key inserts can run
    /// concurrently. A high watermark (4x the per-destination capacity)
    /// bounds total buffered memory under skewed key distributions.
    /// Returns the number of pairs actually inserted
    /// (duplicates of existing keys are dropped, as in [`Self::insert`]).
    ///
    /// Prefer [`Self::insert_bulk_in`] when a guard is already in hand:
    /// it borrows the pairs and applies locally-owned ones under the
    /// caller's guard instead of a per-batch registration.
    pub fn insert_bulk(&self, pairs: Vec<(K, V)>) -> usize {
        let _span = OpSpan::start(OpClass::MapOp, opkind::BULK_INSERT, 0);
        let rt = ctx::current_runtime();
        let inserted = AtomicUsize::new(0);
        let mut batcher = Batcher::new(&rt, DEFAULT_BUFFER_CAP, |_, batch: Vec<(K, V)>| {
            let tok = self.em.register();
            for (k, v) in batch {
                if self.insert(&tok, k, v) {
                    inserted.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .with_high_watermark(4 * DEFAULT_BUFFER_CAP);
        for (k, v) in pairs {
            let dest = self.bucket_for(hash_key(&k)).locale();
            batcher.aggregate(dest, (k, v));
        }
        batcher.flush();
        drop(batcher);
        inserted.load(Ordering::Relaxed)
    }

    /// Guard-scoped [`Self::insert_bulk`]: borrows the pairs, applies
    /// pairs whose bucket is locally owned directly under the caller's
    /// guard (no per-batch registration, no self-send), and scatters the
    /// rest per destination over the batched path. Returns the number of
    /// pairs actually inserted.
    pub fn insert_bulk_in(&self, tok: &R::Guard<'_>, pairs: &[(K, V)]) -> usize
    where
        K: Clone,
        V: Clone,
    {
        let _span = OpSpan::start(OpClass::MapOp, opkind::BULK_INSERT, 0);
        let rt = ctx::current_runtime();
        let here = ctx::here();
        let inserted = AtomicUsize::new(0);
        let mut batcher = Batcher::new(&rt, DEFAULT_BUFFER_CAP, |_, batch: Vec<(K, V)>| {
            let tok = self.em.register();
            for (k, v) in batch {
                if self.insert(&tok, k, v) {
                    inserted.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .with_high_watermark(4 * DEFAULT_BUFFER_CAP);
        for (k, v) in pairs {
            let dest = self.bucket_for(hash_key(k)).locale();
            if dest == here {
                if self.insert(tok, k.clone(), v.clone()) {
                    inserted.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                batcher.aggregate(dest, (k.clone(), v.clone()));
            }
        }
        batcher.flush();
        drop(batcher);
        inserted.load(Ordering::Relaxed)
    }

    /// Look up many keys through the engine's batched communication path.
    ///
    /// The counterpart of [`Self::insert_bulk`]: keys are binned by bucket
    /// owner, each destination's batch travels as one bulk active message,
    /// and lookups execute on the locale that owns the bucket chain.
    /// Returns the values (or `None`) aligned with the input order.
    pub fn get_bulk(&self, keys: Vec<K>) -> Vec<Option<V>> {
        let _span = OpSpan::start(OpClass::MapOp, opkind::BULK_GET, 0);
        let rt = ctx::current_runtime();
        let results: Vec<Mutex<Option<V>>> = keys.iter().map(|_| Mutex::new(None)).collect();
        let mut batcher = Batcher::new(&rt, DEFAULT_BUFFER_CAP, |_, batch: Vec<(usize, K)>| {
            let tok = self.em.register();
            for (i, k) in batch {
                let hit = self.get(&tok, &k);
                match results[i].lock() {
                    Ok(mut slot) => *slot = hit,
                    Err(poison) => *poison.into_inner() = hit,
                }
            }
        })
        .with_high_watermark(4 * DEFAULT_BUFFER_CAP);
        for (i, k) in keys.into_iter().enumerate() {
            let dest = self.bucket_for(hash_key(&k)).locale();
            batcher.aggregate(dest, (i, k));
        }
        batcher.flush();
        drop(batcher);
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect()
    }

    /// Guard-scoped [`Self::get_bulk`]: borrows the keys, looks up
    /// locally-owned ones directly under the caller's guard, and scatters
    /// the rest per destination. Results are aligned with `keys` order
    /// (index `i` of the result is the lookup of `keys[i]`).
    pub fn get_bulk_in(&self, tok: &R::Guard<'_>, keys: &[K]) -> Vec<Option<V>>
    where
        K: Clone,
    {
        let _span = OpSpan::start(OpClass::MapOp, opkind::BULK_GET, 0);
        let rt = ctx::current_runtime();
        let here = ctx::here();
        let results: Vec<Mutex<Option<V>>> = keys.iter().map(|_| Mutex::new(None)).collect();
        let mut batcher = Batcher::new(&rt, DEFAULT_BUFFER_CAP, |_, batch: Vec<(usize, K)>| {
            let tok = self.em.register();
            for (i, k) in batch {
                let hit = self.get(&tok, &k);
                match results[i].lock() {
                    Ok(mut slot) => *slot = hit,
                    Err(poison) => *poison.into_inner() = hit,
                }
            }
        })
        .with_high_watermark(4 * DEFAULT_BUFFER_CAP);
        for (i, k) in keys.iter().enumerate() {
            let dest = self.bucket_for(hash_key(k)).locale();
            if dest == here {
                let hit = self.get(tok, k);
                match results[i].lock() {
                    Ok(mut slot) => *slot = hit,
                    Err(poison) => *poison.into_inner() = hit,
                }
            } else {
                batcher.aggregate(dest, (i, k.clone()));
            }
        }
        batcher.flush();
        drop(batcher);
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect()
    }

    /// Entry count (racy; exact in quiescence).
    pub fn len(&self) -> usize {
        let _span = OpSpan::start(OpClass::MapOp, opkind::LEN, 0);
        let g = self.em.register();
        g.pin();
        let mut n = 0;
        for &sentinel in self.buckets.iter() {
            n += chain_count::<K, V, R>(&g, sentinel);
        }
        g.release(0);
        g.release(1);
        g.unpin();
        n
    }

    /// True when no entries are present (racy; exact in quiescence).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempt an epoch advance / hazard scan + reclamation.
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The map's reclamation backend.
    pub fn reclaimer(&self) -> &R {
        &self.em
    }
}

impl<K, V, R> Drop for DistHashMap<K, V, R>
where
    K: Hash + Ord + Send + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    fn drop(&mut self) {
        let teardown = || {
            let rt = ctx::current_runtime();
            for &sentinel in self.buckets.iter() {
                // SAFETY: quiescent teardown.
                unsafe { chain_teardown(&rt, sentinel) };
            }
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let rt = zrt(1);
        rt.run(|| {
            let m: DistHashMap<u64, String> = DistHashMap::new(16);
            let tok = m.register();
            assert!(m.insert(&tok, 1, "one".into()));
            assert!(m.insert(&tok, 2, "two".into()));
            assert!(!m.insert(&tok, 1, "uno".into()), "duplicate key");
            assert_eq!(m.get(&tok, &1).as_deref(), Some("one"));
            assert_eq!(m.get(&tok, &3), None);
            assert_eq!(m.len(), 2);
            assert!(m.remove(&tok, &1));
            assert!(!m.remove(&tok, &1));
            assert_eq!(m.get(&tok, &1), None);
            assert_eq!(m.len(), 1);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let rt = zrt(1);
        rt.run(|| {
            let m: DistHashMap<u64, u64> = DistHashMap::new(10);
            assert_eq!(m.num_buckets(), 16);
        });
    }

    #[test]
    fn buckets_distributed_cyclically() {
        let rt = zrt(4);
        rt.run(|| {
            let m: DistHashMap<u64, u64> = DistHashMap::new(8);
            for (b, &s) in m.buckets.iter().enumerate() {
                assert_eq!(s.locale() as usize, b % 4);
            }
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn colliding_keys_coexist_in_one_bucket() {
        let rt = zrt(1);
        rt.run(|| {
            // 1 bucket → every key collides.
            let m: DistHashMap<u64, u64> = DistHashMap::new(1);
            let tok = m.register();
            for k in 0..50 {
                assert!(m.insert(&tok, k, k * 10));
            }
            for k in 0..50 {
                assert_eq!(m.get(&tok, &k), Some(k * 10));
            }
            assert_eq!(m.len(), 50);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn concurrent_mixed_workload_conserves_entries() {
        let rt = zrt(1);
        rt.run(|| {
            let m: DistHashMap<u64, u64> = DistHashMap::new(32);
            let inserted = AtomicUsize::new(0);
            let removed = AtomicUsize::new(0);
            rt.coforall_tasks(4, |t| {
                let tok = m.register();
                for i in 0..200u64 {
                    let k = (t as u64) * 1000 + i;
                    if m.insert(&tok, k, k) {
                        inserted.fetch_add(1, Ordering::Relaxed);
                    }
                    if i % 3 == 0 && m.remove(&tok, &k) {
                        removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert_eq!(inserted.load(Ordering::Relaxed), 800);
            assert_eq!(
                m.len(),
                inserted.load(Ordering::Relaxed) - removed.load(Ordering::Relaxed)
            );
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn same_key_racing_inserters_one_winner() {
        let rt = zrt(1);
        rt.run(|| {
            let m: DistHashMap<u64, u64> = DistHashMap::new(4);
            let wins = AtomicUsize::new(0);
            rt.coforall_tasks(6, |t| {
                let tok = m.register();
                if m.insert(&tok, 7, t as u64) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
            assert_eq!(m.len(), 1);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn distributed_use_from_all_locales() {
        let rt = zrt(4);
        rt.run(|| {
            let m: DistHashMap<u64, u64> = DistHashMap::new(16);
            rt.coforall_locales(|l| {
                let tok = m.register();
                for i in 0..50u64 {
                    let k = (l as u64) * 100 + i;
                    assert!(m.insert(&tok, k, k * 2));
                }
            });
            assert_eq!(m.len(), 200);
            let tok = m.register();
            assert_eq!(m.get(&tok, &305), Some(610));
            drop(tok);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn insert_bulk_and_get_bulk_roundtrip() {
        let rt = zrt(4);
        rt.run(|| {
            let m: DistHashMap<u64, u64> = DistHashMap::new(32);
            let pairs: Vec<(u64, u64)> = (0..200).map(|k| (k, k * 3)).collect();
            assert_eq!(m.insert_bulk(pairs), 200);
            assert_eq!(m.len(), 200);
            // Re-inserting the same keys inserts nothing.
            let dups: Vec<(u64, u64)> = (0..200).map(|k| (k, 0)).collect();
            assert_eq!(m.insert_bulk(dups), 0);
            let got = m.get_bulk((0..250).collect());
            for (k, v) in got.iter().enumerate() {
                if k < 200 {
                    assert_eq!(*v, Some(k as u64 * 3), "key {k}");
                } else {
                    assert_eq!(*v, None, "key {k}");
                }
            }
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn guard_scoped_bulk_variants_roundtrip() {
        let rt = zrt(4);
        rt.run(|| {
            let m: DistHashMap<u64, u64> = DistHashMap::new(32);
            let tok = m.register();
            let pairs: Vec<(u64, u64)> = (0..300).map(|k| (k, k * 7)).collect();
            assert_eq!(m.insert_bulk_in(&tok, &pairs), 300);
            assert_eq!(m.insert_bulk_in(&tok, &pairs), 0, "duplicates dropped");
            let keys: Vec<u64> = (0..350).rev().collect();
            let got = m.get_bulk_in(&tok, &keys);
            assert_eq!(got.len(), keys.len());
            for (i, k) in keys.iter().enumerate() {
                let expect = if *k < 300 { Some(*k * 7) } else { None };
                assert_eq!(got[i], expect, "result {i} aligned with key {k}");
            }
            drop(tok);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn bulk_insert_batches_communication() {
        // Real cluster latencies so the comm counters mean something.
        let rt = Runtime::cluster(4);
        rt.run(|| {
            let m: DistHashMap<u64, u64> = DistHashMap::new(64);
            rt.reset_metrics(); // ignore construction traffic
            let n = 512u64;
            let before = rt.total_comm();
            assert_eq!(m.insert_bulk((0..n).map(|k| (k, k)).collect()), n as usize);
            let d = rt.total_comm() - before;
            // Batched: at most one AM per destination buffer, far fewer
            // than one per key. Every batched item is accounted.
            assert!(d.am_batches >= 1, "remote batches must flow");
            assert!(
                d.am_sent <= 2 * rt.num_locales() as u64,
                "bulk insert must not pay per-key AMs: {} AMs for {n} keys",
                d.am_sent
            );
            // Keys whose bucket lives on the calling locale are applied
            // inline; the rest ride batches.
            assert!(
                d.am_batch_items > 0 && d.am_batch_items < n,
                "remote items ride batches, local ones apply inline: {}",
                d.am_batch_items
            );
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_backend_model_check() {
        use pgas_epoch::HazardReclaimer;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let rt = zrt(2);
        rt.run(|| {
            let m: DistHashMap<u8, u64, HazardReclaimer> = DistHashMap::with_reclaimer(8);
            let tok = m.register();
            let mut model = std::collections::HashMap::new();
            let mut rng = StdRng::seed_from_u64(23);
            for step in 0..1500u64 {
                let k: u8 = rng.gen_range(0..48);
                match rng.gen_range(0..3) {
                    0 => {
                        let expect = !model.contains_key(&k);
                        assert_eq!(m.insert(&tok, k, step), expect);
                        if expect {
                            model.insert(k, step);
                        }
                    }
                    1 => assert_eq!(m.remove(&tok, &k), model.remove(&k).is_some()),
                    _ => assert_eq!(m.get(&tok, &k), model.get(&k).copied()),
                }
            }
            assert_eq!(m.len(), model.len());
            drop(tok);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    /// Regression: a `remove` whose physical-unlink CAS lost a race used
    /// to return with the marked node still reachable, counting on "a
    /// later search" to snip it. At quiescence there is no later search,
    /// and hazard-pointer read-only walks (`len`) cannot step across a
    /// marked link — they spun forever. `remove` now runs Harris's
    /// completion step (a re-search) before returning.
    #[test]
    fn hazard_pointer_walks_terminate_after_contended_removes() {
        use pgas_epoch::HazardReclaimer;
        let rt = Runtime::new(RuntimeConfig::cluster(2).without_network_atomics());
        rt.run(|| {
            let m: DistHashMap<u64, u64, HazardReclaimer> = DistHashMap::with_reclaimer(4);
            rt.coforall_locales(|lid| {
                rt.coforall_tasks(2, |t| {
                    let task = lid as u64 * 2 + t as u64;
                    let tok = m.register();
                    for i in 0..200u64 {
                        // Few buckets + interleaved keys: snip CASes race.
                        let k = (i % 16) << 8 | task;
                        m.insert(&tok, k, i);
                        assert!(m.remove(&tok, &k), "own key present");
                    }
                });
            });
            // The walk must terminate (and see the empty map) with no
            // helpers left running.
            assert_eq!(m.len(), 0);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn model_check_against_std_hashmap() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let rt = zrt(2);
        rt.run(|| {
            let m: DistHashMap<u8, u64> = DistHashMap::new(8);
            let tok = m.register();
            let mut model = std::collections::HashMap::new();
            let mut rng = StdRng::seed_from_u64(99);
            for step in 0..2000u64 {
                let k: u8 = rng.gen_range(0..48);
                match rng.gen_range(0..3) {
                    0 => {
                        let expect = !model.contains_key(&k);
                        assert_eq!(
                            m.insert(&tok, k, step),
                            expect,
                            "insert divergence at step {step}"
                        );
                        if expect {
                            model.insert(k, step);
                        }
                    }
                    1 => assert_eq!(m.remove(&tok, &k), model.remove(&k).is_some()),
                    _ => assert_eq!(m.get(&tok, &k), model.get(&k).copied()),
                }
            }
            assert_eq!(m.len(), model.len());
        });
        assert_eq!(rt.live_objects(), 0);
    }

    proptest::proptest! {
        // Each case spins a full runtime; keep the case count modest.
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

        /// Order alignment: whatever the key mix (duplicates, misses,
        /// arbitrary order), `get_bulk` / `get_bulk_in` result `i` is the
        /// lookup of request key `i` — never shuffled by the scatter.
        #[test]
        fn bulk_get_results_align_with_request_order(
            keys in proptest::collection::vec(0u64..64, 1..80),
            present in proptest::collection::vec(0u64..64, 0..48),
        ) {
            let rt = zrt(2);
            rt.run(|| {
                let m: DistHashMap<u64, u64> = DistHashMap::new(16);
                let tok = m.register();
                let mut model = std::collections::HashMap::new();
                for &k in &present {
                    if m.insert(&tok, k, k.wrapping_mul(31)) {
                        model.insert(k, k.wrapping_mul(31));
                    }
                }
                let by_value = m.get_bulk(keys.clone());
                let by_guard = m.get_bulk_in(&tok, &keys);
                proptest::prop_assert_eq!(by_value.len(), keys.len());
                proptest::prop_assert_eq!(by_guard.len(), keys.len());
                for (i, k) in keys.iter().enumerate() {
                    let expect = model.get(k).copied();
                    proptest::prop_assert_eq!(by_value[i], expect, "get_bulk[{}] vs key {}", i, k);
                    proptest::prop_assert_eq!(by_guard[i], expect, "get_bulk_in[{}] vs key {}", i, k);
                }
                drop(tok);
                m.clear_reclaim();
                Ok(())
            })?;
            assert_eq!(rt.live_objects(), 0);
        }
    }
}
