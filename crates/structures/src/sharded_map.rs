//! The privatized, per-locale-sharded hash map — the global-view tier.
//!
//! The follow-up paper ("Scaling Shared-Memory Data Structures as
//! Distributed Global-View Data Structures in the PGAS model") shows the
//! flat [`crate::map::DistHashMap`] layout only scales so far: its bucket
//! chains interleave nodes from every inserting locale, so a single `get`
//! pays one remote atomic read *per chain hop*, wherever it runs. The fix
//! is **privatization**: partition the key space into per-locale shards
//! (via [`pgas_sim::ShardRouter`]) and home each shard's chains entirely
//! on its owning locale. Then
//!
//! * an operation on a **locally-owned** key runs the ordinary Harris
//!   chain protocol against locale-local memory — CPU atomics, **zero
//!   communication**;
//! * an operation on a **remote** key ships *one* active message to the
//!   owner over the runtime's combining layer
//!   ([`pgas_sim::RuntimeCore::on_combining`]) and runs the same local
//!   protocol there — one AM instead of one remote atomic per hop;
//! * bulk operations scatter/gather **per destination** over the
//!   [`pgas_sim::Batcher`], so a million-key preload costs one bulk AM
//!   per destination buffer.
//!
//! Both tiers execute the identical chain primitives
//! ([`crate::map::chain_insert`] and friends), so the sharded map is the
//! legacy map with a different answer to "where do chains live and who
//! runs the op" — which is exactly the ablation A11 measures.
//!
//! ## Rebalance
//!
//! The router's *active* shard set can be retargeted at runtime (locales
//! joining or the structure compacting onto fewer nodes). A retarget only
//! changes the mapping; [`ShardedHashMap::rebalance`] migrates the keys
//! whose owner changed with a quiescent sweep: collect each shard's
//! entries, unlink the ones that now route elsewhere *from their old
//! chain directly* (routing through the map would consult the new mapping
//! and miss them), and scatter them to their new owners through the bulk
//! path. Callers must guarantee quiescence for the duration — the sweep
//! walks chains unprotected, like teardown.

use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use pgas_epoch::{EpochManager, ReclaimGuard, Reclaimer};
use pgas_sim::engine::DEFAULT_BUFFER_CAP;
use pgas_sim::telemetry::{opkind, OpClass, OpSpan};
use pgas_sim::{ctx, Batcher, GlobalPtr, LocaleId, ShardRouter};

use crate::map::{
    alloc_sentinel, chain_collect, chain_count, chain_get, chain_insert, chain_remove,
    chain_teardown, hash_key, Node,
};

/// Routing/traffic counters a sharded map accumulates over its lifetime.
/// Plain process atomics (not simulated-NIC atomics), so bumping them
/// never perturbs the communication counters the benchmarks assert on.
#[derive(Default)]
struct ShardStats {
    local_ops: AtomicU64,
    remote_ops: AtomicU64,
    bulk_local_items: AtomicU64,
    bulk_remote_items: AtomicU64,
    rebalances: AtomicU64,
    moved_keys: AtomicU64,
}

/// A point-in-time copy of a map's [`ShardStats`], plus the router state
/// it was taken under. Serialized into the benchmark rows' `shard`
/// object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Single-key ops whose key was locally owned (pure-local path).
    pub local_ops: u64,
    /// Single-key ops shipped to a remote owner (one AM each).
    pub remote_ops: u64,
    /// Bulk items applied on the calling locale.
    pub bulk_local_items: u64,
    /// Bulk items scattered to remote destinations.
    pub bulk_remote_items: u64,
    /// Completed [`ShardedHashMap::rebalance`] sweeps that changed the
    /// active set.
    pub rebalances: u64,
    /// Keys migrated across shards by rebalances.
    pub moved_keys: u64,
    /// Shards currently receiving keys.
    pub active_shards: usize,
    /// Router mapping generation (bumps on every retarget).
    pub generation: u64,
}

impl ShardSnapshot {
    /// JSON object for the benchmark harness (`shard` field of a row).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"local_ops\": {}, \"remote_ops\": {}, \"bulk_local_items\": {}, \
             \"bulk_remote_items\": {}, \"rebalances\": {}, \"moved_keys\": {}, \
             \"active_shards\": {}, \"generation\": {}}}",
            self.local_ops,
            self.remote_ops,
            self.bulk_local_items,
            self.bulk_remote_items,
            self.rebalances,
            self.moved_keys,
            self.active_shards,
            self.generation
        )
    }
}

/// One shard's bucket sentinels, all homed on the owning locale.
type ShardBuckets<K, V> = Box<[GlobalPtr<Node<K, V>>]>;

/// A privatized, per-locale-sharded lock-free hash map.
///
/// Shard `s` (one per locale) homes `buckets_per_shard` Harris chains on
/// locale `s`; a [`ShardRouter`] maps each key hash to its owning shard.
/// See the module docs for the routing protocol.
pub struct ShardedHashMap<K, V, R = EpochManager>
where
    K: Hash + Ord + Send + Sync + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    /// `shards[l]` = the bucket sentinels of locale `l`'s shard, every
    /// one allocated on locale `l`.
    shards: Box<[ShardBuckets<K, V>]>,
    mask: u64,
    router: ShardRouter,
    em: R,
    stats: ShardStats,
}

unsafe impl<K, V, R> Send for ShardedHashMap<K, V, R>
where
    K: Hash + Ord + Send + Sync + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
}
unsafe impl<K, V, R> Sync for ShardedHashMap<K, V, R>
where
    K: Hash + Ord + Send + Sync + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
}

impl<K, V> ShardedHashMap<K, V>
where
    K: Hash + Ord + Send + Sync + 'static,
    V: Clone + Send + 'static,
{
    /// Create a sharded map with `buckets_per_shard` buckets (rounded up
    /// to a power of two) homed on each locale of the current runtime,
    /// with the default epoch-based backend.
    pub fn new(buckets_per_shard: usize) -> ShardedHashMap<K, V> {
        Self::with_reclaimer(buckets_per_shard)
    }

    /// The map's epoch manager.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<K, V, R> ShardedHashMap<K, V, R>
where
    K: Hash + Ord + Send + Sync + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    /// Create a sharded map using reclamation backend `R`.
    pub fn with_reclaimer(buckets_per_shard: usize) -> ShardedHashMap<K, V, R> {
        let rt = ctx::current_runtime();
        let n = buckets_per_shard.next_power_of_two().max(1);
        let locales = rt.num_locales();
        let shards = (0..locales)
            .map(|l| (0..n).map(|_| alloc_sentinel(&rt, l as LocaleId)).collect())
            .collect();
        ShardedHashMap {
            shards,
            mask: (n - 1) as u64,
            router: ShardRouter::new(&rt),
            em: R::new_in_runtime(),
            stats: ShardStats::default(),
        }
    }

    /// Register the calling task.
    pub fn register(&self) -> R::Guard<'_> {
        self.em.register()
    }

    /// The map's routing table.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Buckets per shard.
    pub fn buckets_per_shard(&self) -> usize {
        self.shards[0].len()
    }

    /// Snapshot the routing/traffic counters.
    pub fn shard_snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            local_ops: self.stats.local_ops.load(Ordering::Relaxed),
            remote_ops: self.stats.remote_ops.load(Ordering::Relaxed),
            bulk_local_items: self.stats.bulk_local_items.load(Ordering::Relaxed),
            bulk_remote_items: self.stats.bulk_remote_items.load(Ordering::Relaxed),
            rebalances: self.stats.rebalances.load(Ordering::Relaxed),
            moved_keys: self.stats.moved_keys.load(Ordering::Relaxed),
            active_shards: self.router.active(),
            generation: self.router.generation(),
        }
    }

    /// The chain sentinel for `hash` inside `shard`.
    fn bucket_in(&self, shard: LocaleId, hash: u64) -> GlobalPtr<Node<K, V>> {
        self.shards[shard as usize][(hash & self.mask) as usize]
    }

    /// Insert `(key, value)`. Locally-owned keys run the chain protocol
    /// in place under the caller's guard; remote keys ship one combined
    /// AM to the owner, whose handler registers its own guard. Returns
    /// `false` (dropping the pair) when the key is already present.
    pub fn insert(&self, tok: &R::Guard<'_>, key: K, value: V) -> bool {
        let hash = hash_key(&key);
        let span = OpSpan::start(OpClass::ShardedMapOp, opkind::INSERT, hash);
        let owner = self.router.owner(hash);
        let sentinel = self.bucket_in(owner, hash);
        if owner == ctx::here() {
            self.stats.local_ops.fetch_add(1, Ordering::Relaxed);
            chain_insert::<K, V, R>(tok, sentinel, hash, key, value, Some(&span))
        } else {
            self.stats.remote_ops.fetch_add(1, Ordering::Relaxed);
            // The span can't travel (it's bound to this task's telemetry
            // slot), so the remote leg runs span-less; retries on the
            // owner are invisible to the caller's histogram, but the
            // caller still times the full round trip.
            ctx::current_runtime().on_combining(owner, move || {
                let tok = self.em.register();
                chain_insert::<K, V, R>(&tok, sentinel, hash, key, value, None)
            })
        }
    }

    /// Look up `key`, cloning the value out on the owning locale.
    pub fn get(&self, tok: &R::Guard<'_>, key: &K) -> Option<V> {
        let hash = hash_key(key);
        let _span = OpSpan::start(OpClass::ShardedMapOp, opkind::GET, hash);
        let owner = self.router.owner(hash);
        let sentinel = self.bucket_in(owner, hash);
        if owner == ctx::here() {
            self.stats.local_ops.fetch_add(1, Ordering::Relaxed);
            chain_get::<K, V, R>(tok, sentinel, hash, key)
        } else {
            self.stats.remote_ops.fetch_add(1, Ordering::Relaxed);
            ctx::current_runtime().on_combining(owner, move || {
                let tok = self.em.register();
                chain_get::<K, V, R>(&tok, sentinel, hash, key)
            })
        }
    }

    /// True when `key` is present.
    pub fn contains_key(&self, tok: &R::Guard<'_>, key: &K) -> bool {
        self.get(tok, key).is_some()
    }

    /// Remove `key`; returns `true` when it was present.
    pub fn remove(&self, tok: &R::Guard<'_>, key: &K) -> bool {
        let hash = hash_key(key);
        let span = OpSpan::start(OpClass::ShardedMapOp, opkind::REMOVE, hash);
        let owner = self.router.owner(hash);
        let sentinel = self.bucket_in(owner, hash);
        if owner == ctx::here() {
            self.stats.local_ops.fetch_add(1, Ordering::Relaxed);
            chain_remove::<K, V, R>(tok, sentinel, hash, key, Some(&span))
        } else {
            self.stats.remote_ops.fetch_add(1, Ordering::Relaxed);
            ctx::current_runtime().on_combining(owner, move || {
                let tok = self.em.register();
                chain_remove::<K, V, R>(&tok, sentinel, hash, key, None)
            })
        }
    }

    /// Insert many pairs, scattered per owning shard over the batched
    /// communication path. Locally-owned pairs apply inline; each remote
    /// destination's pairs ride bulk AMs, applied by a handler on the
    /// owner (so every item still takes that shard's pure-local path).
    /// Returns the number of pairs actually inserted.
    pub fn insert_bulk(&self, pairs: Vec<(K, V)>) -> usize {
        let _span = OpSpan::start(OpClass::ShardedMapOp, opkind::BULK_INSERT, 0);
        let rt = ctx::current_runtime();
        let here = ctx::here();
        let inserted = AtomicUsize::new(0);
        let mut batcher = Batcher::new(&rt, DEFAULT_BUFFER_CAP, |_, batch: Vec<(K, V)>| {
            let tok = self.em.register();
            for (k, v) in batch {
                if self.insert(&tok, k, v) {
                    inserted.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .with_high_watermark(4 * DEFAULT_BUFFER_CAP);
        for (k, v) in pairs {
            let dest = self.router.owner(hash_key(&k));
            if dest == here {
                self.stats.bulk_local_items.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats.bulk_remote_items.fetch_add(1, Ordering::Relaxed);
            }
            batcher.aggregate(dest, (k, v));
        }
        batcher.flush();
        drop(batcher);
        inserted.load(Ordering::Relaxed)
    }

    /// Look up many keys, gathered per owning shard over the batched
    /// path. Results are aligned with the input order.
    pub fn get_bulk(&self, keys: Vec<K>) -> Vec<Option<V>> {
        let _span = OpSpan::start(OpClass::ShardedMapOp, opkind::BULK_GET, 0);
        let rt = ctx::current_runtime();
        let here = ctx::here();
        let results: Vec<Mutex<Option<V>>> = keys.iter().map(|_| Mutex::new(None)).collect();
        let mut batcher = Batcher::new(&rt, DEFAULT_BUFFER_CAP, |_, batch: Vec<(usize, K)>| {
            let tok = self.em.register();
            for (i, k) in batch {
                let hit = self.get(&tok, &k);
                match results[i].lock() {
                    Ok(mut slot) => *slot = hit,
                    Err(poison) => *poison.into_inner() = hit,
                }
            }
        })
        .with_high_watermark(4 * DEFAULT_BUFFER_CAP);
        for (i, k) in keys.into_iter().enumerate() {
            let dest = self.router.owner(hash_key(&k));
            if dest == here {
                self.stats.bulk_local_items.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats.bulk_remote_items.fetch_add(1, Ordering::Relaxed);
            }
            batcher.aggregate(dest, (i, k));
        }
        batcher.flush();
        drop(batcher);
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(|p| p.into_inner()))
            .collect()
    }

    /// Entry count (racy; exact in quiescence). Each shard is counted by
    /// a task running *on* its locale, so the walk itself is local.
    /// Sweeps every shard, not just active ones, so entries awaiting a
    /// [`Self::rebalance`] are still counted.
    pub fn len(&self) -> usize {
        let _span = OpSpan::start(OpClass::ShardedMapOp, opkind::LEN, 0);
        let rt = ctx::current_runtime();
        let mut total = 0usize;
        for l in 0..self.shards.len() {
            total += rt.on(l as LocaleId, || {
                let g = self.em.register();
                g.pin();
                let mut n = 0usize;
                for &sentinel in self.shards[l].iter() {
                    n += chain_count::<K, V, R>(&g, sentinel);
                }
                g.release(0);
                g.release(1);
                g.unpin();
                n
            });
        }
        total
    }

    /// True when no entries are present (racy; exact in quiescence).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retarget the active shard set to `new_active` locales and migrate
    /// every key whose owner changed, returning how many moved. The
    /// migration unlinks moved entries from their *old* chain directly
    /// and scatters them to their new owners over the bulk path.
    ///
    /// Quiescent only: no concurrent map operations may run during the
    /// sweep (the collection walk is unprotected, like teardown). This
    /// mirrors how a real allocation change is sequenced — stop-the-world
    /// at the structure level, then resume.
    pub fn rebalance(&self, new_active: usize) -> usize
    where
        K: Clone,
    {
        let span = OpSpan::start(OpClass::ShardedMapOp, opkind::REBALANCE, 0);
        let prev = self.router.retarget(new_active);
        if self.router.active() == prev {
            return 0;
        }
        self.stats.rebalances.fetch_add(1, Ordering::Relaxed);
        let tok = self.em.register();
        let mut moved: Vec<(K, V)> = Vec::new();
        for shard in 0..self.shards.len() {
            for &sentinel in self.shards[shard].iter() {
                // SAFETY: caller guarantees quiescence.
                for (hash, k, v) in unsafe { chain_collect(sentinel) } {
                    if self.router.owner(hash) as usize != shard {
                        // Unlink from the old chain directly: routing
                        // through `remove` would consult the *new*
                        // mapping and look in the wrong shard.
                        chain_remove::<K, V, R>(&tok, sentinel, hash, &k, Some(&span));
                        moved.push((k, v));
                    }
                }
            }
        }
        drop(tok);
        let n = moved.len();
        self.stats.moved_keys.fetch_add(n as u64, Ordering::Relaxed);
        if n > 0 {
            self.insert_bulk(moved);
        }
        n
    }

    /// Attempt an epoch advance / hazard scan + reclamation.
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The map's reclamation backend.
    pub fn reclaimer(&self) -> &R {
        &self.em
    }
}

impl<K, V, R> Drop for ShardedHashMap<K, V, R>
where
    K: Hash + Ord + Send + Sync + 'static,
    V: Clone + Send + 'static,
    R: Reclaimer,
{
    fn drop(&mut self) {
        let teardown = || {
            let rt = ctx::current_runtime();
            for shard in self.shards.iter() {
                for &sentinel in shard.iter() {
                    // SAFETY: quiescent teardown.
                    unsafe { chain_teardown(&rt, sentinel) };
                }
            }
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn roundtrip_from_every_locale() {
        let rt = zrt(4);
        rt.run(|| {
            let m: ShardedHashMap<u64, u64> = ShardedHashMap::new(16);
            rt.coforall_locales(|l| {
                let tok = m.register();
                for i in 0..100u64 {
                    let k = (l as u64) * 1000 + i;
                    assert!(m.insert(&tok, k, k * 2));
                    assert!(!m.insert(&tok, k, 0), "duplicate");
                }
            });
            assert_eq!(m.len(), 400);
            let tok = m.register();
            for l in 0..4u64 {
                for i in (0..100u64).step_by(7) {
                    let k = l * 1000 + i;
                    assert_eq!(m.get(&tok, &k), Some(k * 2));
                }
            }
            assert!(m.remove(&tok, &1001));
            assert!(!m.remove(&tok, &1001));
            assert_eq!(m.get(&tok, &1001), None);
            assert_eq!(m.len(), 399);
            let snap = m.shard_snapshot();
            assert!(snap.local_ops > 0, "some keys must be locally owned");
            assert!(snap.remote_ops > 0, "some keys must route remotely");
            drop(tok);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn locally_owned_ops_send_no_ams() {
        // Real cluster latencies, CPU atomics: the pure-local path must
        // be communication-free.
        let rt = Runtime::new(RuntimeConfig::cluster(4).without_network_atomics());
        rt.run(|| {
            let m: ShardedHashMap<u64, u64> = ShardedHashMap::new(16);
            // From locale 1, operate only on keys locale 1 owns.
            rt.on(1, || {
                let owned: Vec<u64> = (0..4096u64)
                    .filter(|k| m.router().owner(hash_key(k)) == 1)
                    .take(64)
                    .collect();
                assert!(!owned.is_empty());
                let tok = m.register();
                let before = rt.total_comm();
                for &k in &owned {
                    assert!(m.insert(&tok, k, k));
                    assert_eq!(m.get(&tok, &k), Some(k));
                    assert!(m.remove(&tok, &k));
                }
                let d = rt.total_comm() - before;
                assert_eq!(d.am_sent, 0, "local-shard ops must not send AMs");
                assert_eq!(d.rdma_atomics, 0, "local-shard ops stay off the NIC");
                assert!(d.cpu_atomics > 0, "chain CASes run on the CPU");
            });
            let snap = m.shard_snapshot();
            assert_eq!(snap.remote_ops, 0);
            assert_eq!(snap.local_ops, 64 * 3);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn remote_ops_ship_one_am_each() {
        let rt = Runtime::new(RuntimeConfig::cluster(4).without_network_atomics());
        rt.run(|| {
            let m: ShardedHashMap<u64, u64> = ShardedHashMap::new(16);
            // From locale 0, operate on keys owned elsewhere.
            let remote: Vec<u64> = (0..4096u64)
                .filter(|k| m.router().owner(hash_key(k)) != 0)
                .take(32)
                .collect();
            let tok = m.register();
            let before = rt.total_comm();
            for &k in &remote {
                assert!(m.insert(&tok, k, k));
            }
            let d = rt.total_comm() - before;
            // One shipped closure per op — not one message per chain hop.
            assert!(d.am_sent >= 32, "every remote op ships a message");
            assert!(
                d.am_sent <= 2 * 32,
                "remote ops must not pay per-hop traffic: {} AMs for 32 ops",
                d.am_sent
            );
            assert_eq!(m.shard_snapshot().remote_ops, 32);
            drop(tok);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn bulk_scatter_gather_roundtrip() {
        let rt = zrt(4);
        rt.run(|| {
            let m: ShardedHashMap<u64, u64> = ShardedHashMap::new(32);
            let pairs: Vec<(u64, u64)> = (0..500).map(|k| (k, k * 3)).collect();
            assert_eq!(m.insert_bulk(pairs), 500);
            assert_eq!(m.len(), 500);
            let keys: Vec<u64> = (0..600).rev().collect();
            let got = m.get_bulk(keys.clone());
            for (i, k) in keys.iter().enumerate() {
                let expect = if *k < 500 { Some(*k * 3) } else { None };
                assert_eq!(got[i], expect, "result {i} aligned with key {k}");
            }
            let snap = m.shard_snapshot();
            assert_eq!(snap.bulk_local_items + snap.bulk_remote_items, 500 + 600);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn bulk_insert_batches_communication() {
        let rt = Runtime::cluster(4);
        rt.run(|| {
            let m: ShardedHashMap<u64, u64> = ShardedHashMap::new(64);
            rt.reset_metrics();
            let n = 512u64;
            let before = rt.total_comm();
            assert_eq!(m.insert_bulk((0..n).map(|k| (k, k)).collect()), n as usize);
            let d = rt.total_comm() - before;
            assert!(d.am_batches >= 1, "remote batches must flow");
            assert!(
                d.am_sent <= 2 * rt.num_locales() as u64,
                "bulk insert must not pay per-key AMs: {} AMs for {n} keys",
                d.am_sent
            );
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn rebalance_migrates_and_preserves_entries() {
        let rt = zrt(4);
        rt.run(|| {
            let m: ShardedHashMap<u64, u64> = ShardedHashMap::new(16);
            let n = 400u64;
            assert_eq!(
                m.insert_bulk((0..n).map(|k| (k, k + 1)).collect()),
                n as usize
            );
            // Compact onto 2 shards: keys owned by shards 2/3 must move.
            let moved_down = m.rebalance(2);
            assert!(moved_down > 0, "compaction must migrate keys");
            assert_eq!(m.router().active(), 2);
            assert_eq!(m.len(), n as usize, "rebalance conserves entries");
            let tok = m.register();
            for k in 0..n {
                assert_eq!(m.get(&tok, &k), Some(k + 1), "key {k} after compaction");
                // Every key now routes to an active shard.
                assert!(m.router().owner(hash_key(&k)) < 2);
            }
            drop(tok);
            // Grow back to 4: a different subset moves again.
            let moved_up = m.rebalance(4);
            assert!(moved_up > 0);
            assert_eq!(m.len(), n as usize);
            let tok = m.register();
            for k in (0..n).step_by(3) {
                assert_eq!(m.get(&tok, &k), Some(k + 1), "key {k} after growth");
            }
            let snap = m.shard_snapshot();
            assert_eq!(snap.rebalances, 2);
            assert_eq!(snap.moved_keys, (moved_down + moved_up) as u64);
            assert!(snap.generation >= 2);
            drop(tok);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn no_op_rebalance_moves_nothing() {
        let rt = zrt(4);
        rt.run(|| {
            let m: ShardedHashMap<u64, u64> = ShardedHashMap::new(8);
            m.insert_bulk((0..50u64).map(|k| (k, k)).collect());
            assert_eq!(m.rebalance(4), 0, "same active count: no migration");
            assert_eq!(m.shard_snapshot().rebalances, 0);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn model_check_against_std_hashmap() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let rt = zrt(2);
        rt.run(|| {
            let m: ShardedHashMap<u8, u64> = ShardedHashMap::new(8);
            let tok = m.register();
            let mut model = std::collections::HashMap::new();
            let mut rng = StdRng::seed_from_u64(41);
            for step in 0..2000u64 {
                let k: u8 = rng.gen_range(0..48);
                match rng.gen_range(0..3) {
                    0 => {
                        let expect = !model.contains_key(&k);
                        assert_eq!(
                            m.insert(&tok, k, step),
                            expect,
                            "insert divergence at step {step}"
                        );
                        if expect {
                            model.insert(k, step);
                        }
                    }
                    1 => assert_eq!(m.remove(&tok, &k), model.remove(&k).is_some()),
                    _ => assert_eq!(m.get(&tok, &k), model.get(&k).copied()),
                }
            }
            assert_eq!(m.len(), model.len());
            drop(tok);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_backend_roundtrip() {
        use pgas_epoch::HazardReclaimer;
        let rt = zrt(2);
        rt.run(|| {
            let m: ShardedHashMap<u64, u64, HazardReclaimer> = ShardedHashMap::with_reclaimer(8);
            let tok = m.register();
            for k in 0..100u64 {
                assert!(m.insert(&tok, k, k * 5));
            }
            for k in 0..100u64 {
                assert_eq!(m.get(&tok, &k), Some(k * 5));
            }
            for k in (0..100u64).step_by(2) {
                assert!(m.remove(&tok, &k));
            }
            assert_eq!(m.len(), 50);
            drop(tok);
            m.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
