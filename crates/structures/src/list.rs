//! A lock-free ordered set (Harris's linked list) over global pointers.
//!
//! Linked lists are the third structure the paper's introduction calls out
//! as blocked on object atomics. This is Harris's algorithm: deletion
//! first *marks* the outgoing link of the doomed node (logical removal),
//! then unlinks it physically; traversals snip marked nodes as they pass.
//! The mark lives in the low bit of the compressed global pointer — the
//! same word the NIC can CAS — so the algorithm remains RDMA-friendly.
//!
//! Reclamation of unlinked nodes is deferred to the structure's
//! [`Reclaimer`] (epoch-based by default): a node is handed to
//! `defer_delete` by exactly the task whose CAS physically unlinked it.
//!
//! Under hazard pointers, traversals protect `pred`/`curr` hand-over-hand
//! in slots 0 and 1. A protection of `curr` is validated by re-reading
//! `pred.next` and requiring the *unmarked* word `curr`: the mark on
//! `pred.next` is exactly `pred`'s logical deletion, so an unmarked match
//! proves `pred` was still in the list — and therefore so was `curr`,
//! which cannot have been retired.

use std::hash::Hash;

use pgas_atomics::AtomicObject;
use pgas_epoch::{EpochManager, ReclaimGuard, Reclaimer};
use pgas_sim::telemetry::{key_hash64, opkind, OpClass, OpSpan};
use pgas_sim::{alloc_local, ctx, GlobalPtr};

/// One list cell. `next` carries the Harris mark bit. The key is
/// `MaybeUninit` only because the sentinel head node has none; every
/// non-sentinel node's key is initialized at allocation and keys are
/// `Copy`, so reads are plain `assume_init` loads.
pub struct Node<K> {
    key: std::mem::MaybeUninit<K>,
    next: AtomicObject<Node<K>>,
}

impl<K: Copy> Node<K> {
    /// # Safety
    /// Must not be called on the sentinel.
    #[inline]
    unsafe fn key(&self) -> K {
        unsafe { self.key.assume_init() }
    }
}

/// A lock-free sorted set keyed by `K`, generic over its reclamation
/// backend.
pub struct LockFreeList<K: Ord + Copy + Hash + Send, R: Reclaimer = EpochManager> {
    /// Sentinel node; never removed, its key is never examined.
    head: GlobalPtr<Node<K>>,
    em: R,
}

// SAFETY: shared state is atomics + the reclaimer; keys are Copy + Send.
unsafe impl<K: Ord + Copy + Hash + Send, R: Reclaimer> Send for LockFreeList<K, R> {}
unsafe impl<K: Ord + Copy + Hash + Send, R: Reclaimer> Sync for LockFreeList<K, R> {}

impl<K: Ord + Copy + Hash + Send + 'static> LockFreeList<K> {
    /// Create an empty set homed on the current locale, with the default
    /// epoch-based backend.
    pub fn new() -> LockFreeList<K> {
        Self::with_reclaimer()
    }

    /// The list's epoch manager.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<K: Ord + Copy + Hash + Send + 'static, R: Reclaimer> LockFreeList<K, R> {
    /// Create an empty set using reclamation backend `R`.
    pub fn with_reclaimer() -> LockFreeList<K, R> {
        let rt = ctx::current_runtime();
        let head = alloc_local(
            &rt,
            Node {
                key: std::mem::MaybeUninit::uninit(), // sentinel: never read
                next: AtomicObject::null(),
            },
        );
        LockFreeList {
            head,
            em: R::new_in_runtime(),
        }
    }

    /// Register the calling task.
    pub fn register(&self) -> R::Guard<'_> {
        self.em.register()
    }

    /// Find `(pred, curr)` such that `curr` is the first unmarked node with
    /// `key >= target` and `pred` is its unmarked predecessor, snipping
    /// marked nodes along the way. Caller must be pinned. On return the
    /// two nodes are protected (under HP) in slots 0 and 1, in some order.
    fn search(&self, tok: &R::Guard<'_>, target: &K) -> (GlobalPtr<Node<K>>, GlobalPtr<Node<K>>) {
        'retry: loop {
            let pred = self.head;
            // SAFETY: the sentinel is never reclaimed.
            let mut pred_ref = unsafe { pred.deref() };
            let mut pred_ptr = pred;
            let mut pred_slot = 1usize;
            let mut curr_slot = 0usize;
            let mut curr = pred_ref.next.read().without_mark();
            // HP: validated because the sentinel is always in the list.
            if !curr.is_null() && !tok.protect_ptr(curr_slot, curr, || pred_ref.next.read() == curr)
            {
                continue 'retry;
            }
            loop {
                if curr.is_null() {
                    return (pred_ptr, curr);
                }
                // SAFETY: protected — pinned (EBR) or hazard-validated (HP).
                let curr_ref = unsafe { curr.deref() };
                let succ = curr_ref.next.read();
                if succ.is_marked() {
                    // curr is logically deleted: physically unlink it.
                    if !pred_ref.next.compare_and_swap(curr, succ.without_mark()) {
                        continue 'retry;
                    }
                    // Our CAS did the unlink: we retire the node.
                    tok.defer_delete(curr);
                    curr = succ.without_mark();
                    if !curr.is_null()
                        && !tok.protect_ptr(curr_slot, curr, || pred_ref.next.read() == curr)
                    {
                        continue 'retry;
                    }
                } else {
                    // SAFETY: curr is never the sentinel.
                    if unsafe { curr_ref.key() } >= *target {
                        return (pred_ptr, curr);
                    }
                    pred_ptr = curr;
                    pred_ref = curr_ref;
                    std::mem::swap(&mut pred_slot, &mut curr_slot);
                    curr = succ;
                    if !tok.protect_ptr(curr_slot, curr, || pred_ref.next.read() == succ) {
                        continue 'retry;
                    }
                }
            }
        }
    }

    /// Insert `key`; returns `false` if already present.
    pub fn insert(&self, tok: &R::Guard<'_>, key: K) -> bool {
        let span = OpSpan::start(OpClass::ListOp, opkind::INSERT, key_hash64(&key));
        tok.pin();
        let result = loop {
            let (pred, curr) = self.search(tok, &key);
            if !curr.is_null() && unsafe { curr.deref().key() } == key {
                break false;
            }
            let node = alloc_local(
                &ctx::current_runtime(),
                Node {
                    key: std::mem::MaybeUninit::new(key),
                    next: AtomicObject::new(curr),
                },
            );
            // SAFETY: protected; pred is the sentinel or an unmarked node
            // search just traversed.
            if unsafe { pred.deref() }.next.compare_and_swap(curr, node) {
                break true;
            }
            // Lost the race; the node was never published — free eagerly.
            unsafe { pgas_sim::free(&ctx::current_runtime(), node) };
            span.retry();
        };
        tok.release(0);
        tok.release(1);
        tok.unpin();
        result
    }

    /// Remove `key`; returns `false` if absent.
    pub fn remove(&self, tok: &R::Guard<'_>, key: K) -> bool {
        let span = OpSpan::start(OpClass::ListOp, opkind::REMOVE, key_hash64(&key));
        tok.pin();
        let result = loop {
            let (pred, curr) = self.search(tok, &key);
            if curr.is_null() || unsafe { curr.deref().key() } != key {
                break false;
            }
            let curr_ref = unsafe { curr.deref() };
            let succ = curr_ref.next.read();
            if succ.is_marked() {
                span.retry();
                continue; // someone else is deleting it; re-search
            }
            // Logical removal: mark the outgoing link.
            if !curr_ref.next.compare_and_swap(succ, succ.with_mark()) {
                span.retry();
                continue;
            }
            // Physical removal: unlink. On failure, run Harris's
            // completion step — a fresh search snips the marked node (and
            // defers it there) before we return, so exactly-once
            // retirement holds and no marked link outlives the remover.
            // Read-only walks under HP cannot step across a marked link
            // and would spin forever on one left reachable at quiescence.
            if unsafe { pred.deref() }
                .next
                .compare_and_swap(curr, succ.without_mark())
            {
                tok.defer_delete(curr);
            } else {
                let _ = self.search(tok, &key);
            }
            break true;
        };
        tok.release(0);
        tok.release(1);
        tok.unpin();
        result
    }

    /// Membership test. Does not modify the list (no snipping), so it is
    /// read-only with respect to communication.
    pub fn contains(&self, tok: &R::Guard<'_>, key: K) -> bool {
        let _span = OpSpan::start(OpClass::ListOp, opkind::CONTAINS, key_hash64(&key));
        tok.pin();
        let found = 'retry: loop {
            // SAFETY: sentinel, never reclaimed.
            let mut prev_ref = unsafe { self.head.deref() };
            let mut prev_slot = 1usize;
            let mut curr_slot = 0usize;
            let mut curr = prev_ref.next.read().without_mark();
            if !curr.is_null() && !tok.protect_ptr(curr_slot, curr, || prev_ref.next.read() == curr)
            {
                continue 'retry;
            }
            let mut found = false;
            while !curr.is_null() {
                // SAFETY: protected.
                let curr_ref = unsafe { curr.deref() };
                // SAFETY: curr is never the sentinel.
                let k = unsafe { curr_ref.key() };
                if k > key {
                    break;
                }
                let succ = curr_ref.next.read();
                if k == key {
                    found = !succ.is_marked();
                    break;
                }
                // HP cannot safely step across a marked link (the marked
                // node's successor may already be retired): restart. EBR
                // walks straight through, as before.
                if R::NEEDS_PROTECT && succ.is_marked() {
                    continue 'retry;
                }
                prev_ref = curr_ref;
                std::mem::swap(&mut prev_slot, &mut curr_slot);
                curr = succ.without_mark();
                if !curr.is_null()
                    && !tok.protect_ptr(curr_slot, curr, || prev_ref.next.read() == succ)
                {
                    continue 'retry;
                }
            }
            break found;
        };
        tok.release(0);
        tok.release(1);
        tok.unpin();
        found
    }

    /// Number of unmarked nodes (racy; exact in quiescence).
    pub fn len(&self) -> usize {
        let _span = OpSpan::start(OpClass::ListOp, opkind::LEN, 0);
        if R::NEEDS_PROTECT {
            let g = self.em.register();
            g.pin();
            let n = 'retry: loop {
                let mut prev_ref = unsafe { self.head.deref() };
                let mut prev_slot = 1usize;
                let mut curr_slot = 0usize;
                let mut curr = prev_ref.next.read().without_mark();
                if !curr.is_null()
                    && !g.protect_ptr(curr_slot, curr, || prev_ref.next.read() == curr)
                {
                    continue 'retry;
                }
                let mut n = 0;
                while !curr.is_null() {
                    let curr_ref = unsafe { curr.deref() };
                    let succ = curr_ref.next.read();
                    if succ.is_marked() {
                        // Can't step across a marked link under HP.
                        continue 'retry;
                    }
                    n += 1;
                    prev_ref = curr_ref;
                    std::mem::swap(&mut prev_slot, &mut curr_slot);
                    curr = succ;
                    if !curr.is_null()
                        && !g.protect_ptr(curr_slot, curr, || prev_ref.next.read() == succ)
                    {
                        continue 'retry;
                    }
                }
                break n;
            };
            g.release(0);
            g.release(1);
            g.unpin();
            n
        } else {
            let mut n = 0;
            let mut curr = unsafe { self.head.deref() }.next.read().without_mark();
            while !curr.is_null() {
                let succ = unsafe { curr.deref() }.next.read();
                if !succ.is_marked() {
                    n += 1;
                }
                curr = succ.without_mark();
            }
            n
        }
    }

    /// True when no unmarked nodes remain (racy; exact in quiescence).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempt an epoch advance / hazard scan + reclamation.
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The list's reclamation backend.
    pub fn reclaimer(&self) -> &R {
        &self.em
    }
}

impl<K: Ord + Copy + Hash + Send + 'static, R: Reclaimer> Default for LockFreeList<K, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<K: Ord + Copy + Hash + Send, R: Reclaimer> Drop for LockFreeList<K, R> {
    fn drop(&mut self) {
        let teardown = || {
            let rt = ctx::current_runtime();
            // Quiescent teardown: free the whole chain, sentinel included.
            let mut curr = self.head;
            while !curr.is_null() {
                let next = unsafe { curr.deref() }.next.read().without_mark();
                // SAFETY: quiescent; every node was allocated by alloc_local.
                unsafe { pgas_sim::free(&rt, curr) };
                curr = next;
            }
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_epoch::HazardReclaimer;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let rt = zrt(1);
        rt.run(|| {
            let l = LockFreeList::new();
            let tok = l.register();
            assert!(l.insert(&tok, 5u64));
            assert!(l.insert(&tok, 3));
            assert!(l.insert(&tok, 9));
            assert!(!l.insert(&tok, 5), "duplicate rejected");
            assert!(l.contains(&tok, 3));
            assert!(l.contains(&tok, 5));
            assert!(!l.contains(&tok, 4));
            assert_eq!(l.len(), 3);
            assert!(l.remove(&tok, 5));
            assert!(!l.remove(&tok, 5), "already gone");
            assert!(!l.contains(&tok, 5));
            assert_eq!(l.len(), 2);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn keys_stay_sorted_internally() {
        let rt = zrt(1);
        rt.run(|| {
            let l = LockFreeList::new();
            let tok = l.register();
            for k in [5u64, 1, 9, 3, 7] {
                assert!(l.insert(&tok, k));
            }
            // Walk the raw chain and check ordering.
            let mut keys = Vec::new();
            let mut curr = unsafe { l.head.deref() }.next.read().without_mark();
            while !curr.is_null() {
                keys.push(unsafe { curr.deref().key() });
                curr = unsafe { curr.deref() }.next.read().without_mark();
            }
            assert_eq!(keys, vec![1, 3, 5, 7, 9]);
        });
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let rt = zrt(1);
        rt.run(|| {
            let l = LockFreeList::new();
            rt.coforall_tasks(4, |t| {
                let tok = l.register();
                for i in 0..100u64 {
                    assert!(l.insert(&tok, (t as u64) * 1000 + i));
                }
            });
            assert_eq!(l.len(), 400);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn concurrent_same_key_insert_one_winner() {
        let rt = zrt(1);
        rt.run(|| {
            let l = LockFreeList::new();
            let wins = AtomicUsize::new(0);
            rt.coforall_tasks(6, |_| {
                let tok = l.register();
                if l.insert(&tok, 42u64) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
            assert_eq!(l.len(), 1);
        });
    }

    #[test]
    fn concurrent_remove_exactly_one_winner() {
        let rt = zrt(1);
        rt.run(|| {
            let l = LockFreeList::new();
            {
                let tok = l.register();
                for k in 0..20u64 {
                    l.insert(&tok, k);
                }
            }
            let removed = AtomicUsize::new(0);
            rt.coforall_tasks(4, |_| {
                let tok = l.register();
                for k in 0..20u64 {
                    if l.remove(&tok, k) {
                        removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert_eq!(removed.load(Ordering::Relaxed), 20, "each key removed once");
            assert!(l.is_empty());
            l.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn mixed_churn_matches_sequential_model() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let rt = zrt(1);
        rt.run(|| {
            let l = LockFreeList::new();
            let tok = l.register();
            let mut model = std::collections::BTreeSet::new();
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..2000 {
                let k: u8 = rng.gen_range(0..64);
                match rng.gen_range(0..3) {
                    0 => assert_eq!(l.insert(&tok, k), model.insert(k)),
                    1 => assert_eq!(l.remove(&tok, k), model.remove(&k)),
                    _ => assert_eq!(l.contains(&tok, k), model.contains(&k)),
                }
            }
            assert_eq!(l.len(), model.len());
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn distributed_inserts_from_all_locales() {
        let rt = zrt(4);
        rt.run(|| {
            let l = LockFreeList::new();
            rt.coforall_locales(|loc| {
                let tok = l.register();
                for i in 0..25u64 {
                    assert!(l.insert(&tok, (loc as u64) * 100 + i));
                }
            });
            assert_eq!(l.len(), 100);
            let tok = l.register();
            assert!(l.contains(&tok, 301));
            assert!(!l.contains(&tok, 326));
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_backend_churn_matches_model() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let rt = zrt(1);
        rt.run(|| {
            let l = LockFreeList::<u8, HazardReclaimer>::with_reclaimer();
            let tok = l.register();
            let mut model = std::collections::BTreeSet::new();
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..2000 {
                let k: u8 = rng.gen_range(0..64);
                match rng.gen_range(0..3) {
                    0 => assert_eq!(l.insert(&tok, k), model.insert(k)),
                    1 => assert_eq!(l.remove(&tok, k), model.remove(&k)),
                    _ => assert_eq!(l.contains(&tok, k), model.contains(&k)),
                }
            }
            assert_eq!(l.len(), model.len());
            drop(tok);
            l.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_backend_concurrent_removes() {
        let rt = zrt(1);
        rt.run(|| {
            let l = LockFreeList::<u64, HazardReclaimer>::with_reclaimer();
            {
                let tok = l.register();
                for k in 0..40u64 {
                    l.insert(&tok, k);
                }
            }
            let removed = AtomicUsize::new(0);
            rt.coforall_tasks(4, |_| {
                let tok = l.register();
                for k in 0..40u64 {
                    if l.remove(&tok, k) {
                        removed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            assert_eq!(removed.load(Ordering::Relaxed), 40);
            assert!(l.is_empty());
            l.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
