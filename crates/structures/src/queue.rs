//! A distributed lock-free FIFO queue (Michael–Scott), built from the
//! paper's building blocks: `AtomicObject` cells for the links,
//! ABA-protected head/tail, and the `EpochManager` for node reclamation.
//!
//! Queues are one of the "most primitive of non-blocking data structures"
//! the paper's introduction names as blocked on object atomics; this is
//! the canonical algorithm, made distributed: nodes carry the affinity of
//! the enqueuing task's locale, and head/tail live with the queue's
//! creator.

use std::mem::ManuallyDrop;

use pgas_atomics::{AtomicAbaObject, AtomicObject};
use pgas_epoch::{EpochManager, Token};
use pgas_sim::{alloc_local, ctx, GlobalPtr};

/// One queue cell. The node at `head` is always a dummy whose value has
/// already been consumed (or never existed, for the initial sentinel).
pub struct Node<T> {
    value: Option<ManuallyDrop<T>>,
    next: AtomicObject<Node<T>>,
}

/// A lock-free multi-producer multi-consumer FIFO queue with epoch-based
/// reclamation.
pub struct MsQueue<T: Send> {
    head: AtomicAbaObject<Node<T>>,
    tail: AtomicAbaObject<Node<T>>,
    em: EpochManager,
}

// SAFETY: head/tail are atomic words; the manager is thread-safe; values
// are Send by bound.
unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T: Send> MsQueue<T> {
    /// Create an empty queue (one dummy node) homed on the current locale.
    pub fn new() -> MsQueue<T> {
        let dummy = alloc_local(
            &ctx::current_runtime(),
            Node {
                value: None,
                next: AtomicObject::null(),
            },
        );
        MsQueue {
            head: AtomicAbaObject::new(dummy),
            tail: AtomicAbaObject::new(dummy),
            em: EpochManager::new(),
        }
    }

    /// Register the calling task.
    pub fn register(&self) -> Token<'_> {
        self.em.register()
    }

    /// Append `value` at the tail.
    pub fn enqueue(&self, tok: &Token<'_>, value: T) {
        tok.pin();
        let node = alloc_local(
            &ctx::current_runtime(),
            Node {
                value: Some(ManuallyDrop::new(value)),
                next: AtomicObject::null(),
            },
        );
        loop {
            let tail_snap = self.tail.read_aba();
            let tail = tail_snap.get_object();
            // SAFETY: pinned.
            let next = unsafe { tail.deref() }.next.read();
            if next.is_null() {
                if unsafe { tail.deref() }
                    .next
                    .compare_and_swap(GlobalPtr::null(), node)
                {
                    // Swing the tail; failure means someone helped us.
                    let _ = self.tail.compare_and_swap_aba(tail_snap, node);
                    break;
                }
            } else {
                // Tail is lagging: help it forward.
                let _ = self.tail.compare_and_swap_aba(tail_snap, next);
            }
        }
        tok.unpin();
    }

    /// Remove and return the oldest value, or `None` when empty.
    pub fn dequeue(&self, tok: &Token<'_>) -> Option<T> {
        tok.pin();
        let result = loop {
            let head_snap = self.head.read_aba();
            let head = head_snap.get_object();
            let tail = self.tail.read();
            // SAFETY: pinned.
            let next = unsafe { head.deref() }.next.read();
            if head == tail {
                if next.is_null() {
                    break None; // empty
                }
                // Tail lagging behind an in-flight enqueue: help.
                let tail_snap = self.tail.read_aba();
                if tail_snap.get_object() == tail {
                    let _ = self.tail.compare_and_swap_aba(tail_snap, next);
                }
            } else if self.head.compare_and_swap_aba(head_snap, next) {
                // We own the logical removal: `next` becomes the new dummy
                // and we are the unique consumer of its value. Reading it
                // after the CAS is safe under the pin (the node stays in
                // the queue as dummy; no other task touches `value`).
                let value = unsafe {
                    std::ptr::read(&(*next.as_ptr()).value)
                        .map(ManuallyDrop::into_inner)
                        .expect("non-sentinel queue node without a value")
                };
                tok.defer_delete(head);
                break Some(value);
            }
        };
        tok.unpin();
        result
    }

    /// Racy emptiness check (exact only in quiescence).
    pub fn is_empty(&self) -> bool {
        let head = self.head.read();
        unsafe { head.deref() }.next.read().is_null()
    }

    /// Attempt an epoch advance + reclamation.
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The queue's epoch manager.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<T: Send> Default for MsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> Drop for MsQueue<T> {
    fn drop(&mut self) {
        let teardown = || {
            let tok = self.em.register();
            while self.dequeue(&tok).is_some() {}
            // Retire the final dummy as well.
            tok.pin();
            tok.defer_delete(self.head.read());
            tok.unpin();
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn fifo_order_single_task() {
        let rt = zrt(1);
        rt.run(|| {
            let q = MsQueue::new();
            let tok = q.register();
            assert!(q.is_empty());
            for i in 0..10 {
                q.enqueue(&tok, i);
            }
            assert!(!q.is_empty());
            for i in 0..10 {
                assert_eq!(q.dequeue(&tok), Some(i));
            }
            assert_eq!(q.dequeue(&tok), None);
        });
    }

    #[test]
    fn dequeue_empty_is_none() {
        let rt = zrt(1);
        rt.run(|| {
            let q = MsQueue::<String>::new();
            let tok = q.register();
            assert_eq!(q.dequeue(&tok), None);
            q.enqueue(&tok, "x".into());
            assert_eq!(q.dequeue(&tok).as_deref(), Some("x"));
            assert_eq!(q.dequeue(&tok), None);
        });
    }

    #[test]
    fn per_producer_order_preserved() {
        // FIFO per producer: each producer's elements come out in order.
        let rt = zrt(1);
        rt.run(|| {
            let q = MsQueue::new();
            let producers = 3u64;
            let per = 100u64;
            rt.coforall_tasks(producers as usize, |p| {
                let tok = q.register();
                for i in 0..per {
                    q.enqueue(&tok, (p as u64, i));
                }
            });
            let tok = q.register();
            let mut last = vec![None::<u64>; producers as usize];
            let mut n = 0;
            while let Some((p, i)) = q.dequeue(&tok) {
                if let Some(prev) = last[p as usize] {
                    assert!(i > prev, "producer {p} out of order: {prev} then {i}");
                }
                last[p as usize] = Some(i);
                n += 1;
            }
            assert_eq!(n, producers * per);
        });
    }

    #[test]
    fn mpmc_conserves_values() {
        let rt = zrt(1);
        rt.run(|| {
            let q = MsQueue::new();
            let consumed = AtomicU64::new(0);
            let count = AtomicU64::new(0);
            rt.coforall_tasks(4, |t| {
                let tok = q.register();
                if t < 2 {
                    for i in 0..300u64 {
                        q.enqueue(&tok, t as u64 * 300 + i);
                    }
                } else {
                    loop {
                        match q.dequeue(&tok) {
                            Some(v) => {
                                consumed.fetch_add(v, Ordering::Relaxed);
                                count.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                if count.load(Ordering::Relaxed) >= 600 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 600);
            assert_eq!(consumed.load(Ordering::Relaxed), (0..600u64).sum::<u64>());
            q.clear_reclaim();
            // 1 dummy node remains live until drop
            assert_eq!(rt.live_objects(), 1);
        });
        assert_eq!(rt.live_objects(), 0, "drop retires the dummy");
    }

    #[test]
    fn distributed_producers_and_consumer() {
        let rt = zrt(4);
        rt.run(|| {
            let q = MsQueue::new();
            rt.coforall_locales(|l| {
                let tok = q.register();
                for i in 0..25u64 {
                    q.enqueue(&tok, (l as u64) * 1000 + i);
                }
            });
            let tok = q.register();
            let mut n = 0;
            while q.dequeue(&tok).is_some() {
                n += 1;
            }
            assert_eq!(n, 100);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn drop_nonempty_runs_destructors_and_frees_nodes() {
        struct Probe<'a>(&'a AtomicU64);
        impl Drop for Probe<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let rt = zrt(1);
        let drops = AtomicU64::new(0);
        rt.run(|| {
            let q = MsQueue::new();
            let tok = q.register();
            for _ in 0..9 {
                q.enqueue(&tok, Probe(&drops));
            }
            drop(tok);
            drop(q);
            assert_eq!(drops.load(Ordering::Relaxed), 9);
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
