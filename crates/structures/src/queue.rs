//! A distributed lock-free FIFO queue (Michael–Scott), built from the
//! paper's building blocks: `AtomicObject` cells for the links,
//! ABA-protected head/tail, and a pluggable [`Reclaimer`] for node
//! reclamation (epoch-based by default).
//!
//! Queues are one of the "most primitive of non-blocking data structures"
//! the paper's introduction names as blocked on object atomics; this is
//! the canonical algorithm, made distributed: nodes carry the affinity of
//! the enqueuing task's locale, and head/tail live with the queue's
//! creator.
//!
//! The head/tail ABA snapshots that open every `enqueue`/`dequeue` round
//! are the queue's hot read path: with
//! `RuntimeConfig::with_vread_fastpath(true)` they ride the versioned
//! seqlock read (one validated one-sided GET) instead of the DCAS
//! active-message round trip — no code change here, the cell routes it
//! (see `pgas-atomics`' `seqlock` module and ablation A10).
//!
//! Under hazard pointers the operations follow Michael's protocol: the
//! head/tail snapshot is protected in slot 0 (publish, then re-read the
//! cell), and `dequeue` additionally protects the successor in slot 1 —
//! validated by the head not having moved, since FIFO order means the
//! successor cannot be retired before the head is.

use std::mem::ManuallyDrop;

use pgas_atomics::{AtomicAbaObject, AtomicObject};
use pgas_epoch::{EpochManager, ReclaimGuard, Reclaimer};
use pgas_sim::telemetry::{opkind, OpClass, OpSpan};
use pgas_sim::{alloc_local, ctx, GlobalPtr};

/// One queue cell. The node at `head` is always a dummy whose value has
/// already been consumed (or never existed, for the initial sentinel).
pub struct Node<T> {
    value: Option<ManuallyDrop<T>>,
    next: AtomicObject<Node<T>>,
}

/// A lock-free multi-producer multi-consumer FIFO queue, generic over
/// its reclamation backend.
pub struct MsQueue<T: Send, R: Reclaimer = EpochManager> {
    head: AtomicAbaObject<Node<T>>,
    tail: AtomicAbaObject<Node<T>>,
    em: R,
}

// SAFETY: head/tail are atomic words; the reclaimer is Send+Sync by its
// trait bounds; values are Send by bound.
unsafe impl<T: Send, R: Reclaimer> Send for MsQueue<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for MsQueue<T, R> {}

impl<T: Send> MsQueue<T> {
    /// Create an empty queue (one dummy node) homed on the current
    /// locale, with the default epoch-based backend.
    pub fn new() -> MsQueue<T> {
        Self::with_reclaimer()
    }

    /// The queue's epoch manager.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<T: Send, R: Reclaimer> MsQueue<T, R> {
    /// Create an empty queue using reclamation backend `R`.
    pub fn with_reclaimer() -> MsQueue<T, R> {
        let dummy = alloc_local(
            &ctx::current_runtime(),
            Node {
                value: None,
                next: AtomicObject::null(),
            },
        );
        MsQueue {
            head: AtomicAbaObject::new(dummy),
            tail: AtomicAbaObject::new(dummy),
            em: R::new_in_runtime(),
        }
    }

    /// Register the calling task.
    pub fn register(&self) -> R::Guard<'_> {
        self.em.register()
    }

    /// Append `value` at the tail.
    pub fn enqueue(&self, tok: &R::Guard<'_>, value: T) {
        let span = OpSpan::start(OpClass::QueueOp, opkind::ENQUEUE, 0);
        tok.pin();
        let node = alloc_local(
            &ctx::current_runtime(),
            Node {
                value: Some(ManuallyDrop::new(value)),
                next: AtomicObject::null(),
            },
        );
        loop {
            // HP: publish+validate the tail node before dereferencing it.
            let tail_snap = tok.protect_root_aba(0, &self.tail);
            let tail = tail_snap.get_object();
            // SAFETY: protected (pin or validated hazard).
            let next = unsafe { tail.deref() }.next.read();
            if next.is_null() {
                if unsafe { tail.deref() }
                    .next
                    .compare_and_swap(GlobalPtr::null(), node)
                {
                    // Swing the tail; failure means someone helped us.
                    let _ = self.tail.compare_and_swap_aba(tail_snap, node);
                    break;
                }
            } else {
                // Tail is lagging: help it forward.
                let _ = self.tail.compare_and_swap_aba(tail_snap, next);
            }
            // Reached only when the link CAS failed or the tail lagged.
            span.retry();
        }
        tok.release(0);
        tok.unpin();
    }

    /// Remove and return the oldest value, or `None` when empty.
    pub fn dequeue(&self, tok: &R::Guard<'_>) -> Option<T> {
        let span = OpSpan::start(OpClass::QueueOp, opkind::DEQUEUE, 0);
        tok.pin();
        let result = loop {
            let head_snap = tok.protect_root_aba(0, &self.head);
            let head = head_snap.get_object();
            let tail = self.tail.read();
            // SAFETY: protected (pin or validated hazard).
            let next = unsafe { head.deref() }.next.read();
            if head == tail {
                if next.is_null() {
                    break None; // empty
                }
                // Tail lagging behind an in-flight enqueue: help.
                let tail_snap = self.tail.read_aba();
                if tail_snap.get_object() == tail {
                    let _ = self.tail.compare_and_swap_aba(tail_snap, next);
                }
            } else {
                // HP: protect the successor before the head CAS — its
                // value is read *after* the CAS, when another consumer may
                // already have dequeued and retired it. The head not
                // having moved validates the hazard (FIFO: `next` cannot
                // be retired before `head` is).
                if !tok.protect_ptr(1, next, || self.head.read_aba() == head_snap) {
                    span.retry();
                    continue;
                }
                if self.head.compare_and_swap_aba(head_snap, next) {
                    // We own the logical removal: `next` becomes the new
                    // dummy and we are the unique consumer of its value.
                    // Reading it after the CAS is safe under the pin /
                    // slot-1 hazard (no other task touches `value`).
                    let value = unsafe {
                        std::ptr::read(&(*next.as_ptr()).value)
                            .map(ManuallyDrop::into_inner)
                            .expect("non-sentinel queue node without a value")
                    };
                    tok.defer_delete(head);
                    break Some(value);
                }
                span.retry();
            }
        };
        tok.release(0);
        tok.release(1);
        tok.unpin();
        result
    }

    /// Racy emptiness check (exact only in quiescence).
    pub fn is_empty(&self) -> bool {
        let _span = OpSpan::start(OpClass::QueueOp, opkind::LEN, 0);
        if R::NEEDS_PROTECT {
            let g = self.em.register();
            g.pin();
            let head_snap = g.protect_root_aba(0, &self.head);
            let empty = unsafe { head_snap.get_object().deref() }
                .next
                .read()
                .is_null();
            g.release(0);
            g.unpin();
            empty
        } else {
            let head = self.head.read();
            unsafe { head.deref() }.next.read().is_null()
        }
    }

    /// Attempt an epoch advance / hazard scan + reclamation.
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The queue's reclamation backend.
    pub fn reclaimer(&self) -> &R {
        &self.em
    }
}

impl<T: Send, R: Reclaimer> Default for MsQueue<T, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Send, R: Reclaimer> Drop for MsQueue<T, R> {
    fn drop(&mut self) {
        let teardown = || {
            let tok = self.em.register();
            while self.dequeue(&tok).is_some() {}
            // Retire the final dummy as well.
            tok.pin();
            tok.defer_delete(self.head.read());
            tok.unpin();
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_epoch::HazardReclaimer;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn fifo_order_single_task() {
        let rt = zrt(1);
        rt.run(|| {
            let q = MsQueue::new();
            let tok = q.register();
            assert!(q.is_empty());
            for i in 0..10 {
                q.enqueue(&tok, i);
            }
            assert!(!q.is_empty());
            for i in 0..10 {
                assert_eq!(q.dequeue(&tok), Some(i));
            }
            assert_eq!(q.dequeue(&tok), None);
        });
    }

    #[test]
    fn dequeue_empty_is_none() {
        let rt = zrt(1);
        rt.run(|| {
            let q = MsQueue::<String>::new();
            let tok = q.register();
            assert_eq!(q.dequeue(&tok), None);
            q.enqueue(&tok, "x".into());
            assert_eq!(q.dequeue(&tok).as_deref(), Some("x"));
            assert_eq!(q.dequeue(&tok), None);
        });
    }

    #[test]
    fn per_producer_order_preserved() {
        // FIFO per producer: each producer's elements come out in order.
        let rt = zrt(1);
        rt.run(|| {
            let q = MsQueue::new();
            let producers = 3u64;
            let per = 100u64;
            rt.coforall_tasks(producers as usize, |p| {
                let tok = q.register();
                for i in 0..per {
                    q.enqueue(&tok, (p as u64, i));
                }
            });
            let tok = q.register();
            let mut last = vec![None::<u64>; producers as usize];
            let mut n = 0;
            while let Some((p, i)) = q.dequeue(&tok) {
                if let Some(prev) = last[p as usize] {
                    assert!(i > prev, "producer {p} out of order: {prev} then {i}");
                }
                last[p as usize] = Some(i);
                n += 1;
            }
            assert_eq!(n, producers * per);
        });
    }

    #[test]
    fn mpmc_conserves_values() {
        let rt = zrt(1);
        rt.run(|| {
            let q = MsQueue::new();
            let consumed = AtomicU64::new(0);
            let count = AtomicU64::new(0);
            rt.coforall_tasks(4, |t| {
                let tok = q.register();
                if t < 2 {
                    for i in 0..300u64 {
                        q.enqueue(&tok, t as u64 * 300 + i);
                    }
                } else {
                    loop {
                        match q.dequeue(&tok) {
                            Some(v) => {
                                consumed.fetch_add(v, Ordering::Relaxed);
                                count.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                if count.load(Ordering::Relaxed) >= 600 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 600);
            assert_eq!(consumed.load(Ordering::Relaxed), (0..600u64).sum::<u64>());
            q.clear_reclaim();
            // 1 dummy node remains live until drop
            assert_eq!(rt.live_objects(), 1);
        });
        assert_eq!(rt.live_objects(), 0, "drop retires the dummy");
    }

    #[test]
    fn distributed_producers_and_consumer() {
        let rt = zrt(4);
        rt.run(|| {
            let q = MsQueue::new();
            rt.coforall_locales(|l| {
                let tok = q.register();
                for i in 0..25u64 {
                    q.enqueue(&tok, (l as u64) * 1000 + i);
                }
            });
            let tok = q.register();
            let mut n = 0;
            while q.dequeue(&tok).is_some() {
                n += 1;
            }
            assert_eq!(n, 100);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn drop_nonempty_runs_destructors_and_frees_nodes() {
        struct Probe<'a>(&'a AtomicU64);
        impl Drop for Probe<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let rt = zrt(1);
        let drops = AtomicU64::new(0);
        rt.run(|| {
            let q = MsQueue::new();
            let tok = q.register();
            for _ in 0..9 {
                q.enqueue(&tok, Probe(&drops));
            }
            drop(tok);
            drop(q);
            assert_eq!(drops.load(Ordering::Relaxed), 9);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_backend_mpmc() {
        let rt = zrt(2);
        rt.run(|| {
            let q = MsQueue::<u64, HazardReclaimer>::with_reclaimer();
            let count = AtomicU64::new(0);
            rt.coforall_tasks(4, |t| {
                let tok = q.register();
                if t < 2 {
                    for i in 0..250u64 {
                        q.enqueue(&tok, t as u64 * 250 + i);
                    }
                } else {
                    loop {
                        match q.dequeue(&tok) {
                            Some(_) => {
                                count.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                if count.load(Ordering::Relaxed) >= 500 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            assert_eq!(count.load(Ordering::Relaxed), 500);
            assert!(q.is_empty());
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
