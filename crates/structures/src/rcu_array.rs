//! An RCU-like parallel-safe distributed resizable array.
//!
//! Modeled on RCUArray (Jenkins, IPDPSW'18 — reference [15] of the
//! paper, and one of the privatization-based structures the paper cites
//! as motivation). The array is a table of fixed-size *blocks*
//! distributed round-robin across locales. Reads and writes index
//! through the current table snapshot under the reclaimer's protection;
//! `grow` allocates additional blocks, publishes a **new table** with a
//! single `AtomicObject` CAS, and defers the old table to the
//! [`Reclaimer`] — readers concurrent with a grow keep using their
//! snapshot safely. Blocks themselves are never moved or freed until
//! the array drops, so element references remain stable across resizes
//! (the RCU property).
//!
//! The table cell is a *root*: protecting it under hazard pointers is
//! the simple published-then-revalidate loop (`protect_root`), with no
//! traversal validation subtleties — RCU-style single-indirection
//! structures are the friendliest case for HP.
//!
//! Elements are `u64` cells (the common case for index/descriptor
//! payloads); element reads/writes are atomic and charged as PGAS
//! GET/PUT when the block is remote.

use std::sync::atomic::{AtomicU64, Ordering};

use pgas_atomics::AtomicObject;
use pgas_epoch::{EpochManager, ReclaimGuard, Reclaimer};
use pgas_sim::telemetry::{opkind, OpClass, OpSpan};
use pgas_sim::{alloc_local, alloc_on, ctx, engine, GlobalPtr, LocaleId};

/// One fixed-size block of cells, owned by a single locale.
pub struct Block {
    cells: Box<[AtomicU64]>,
}

/// A snapshot table: the indirection layer that RCU swaps.
pub struct Table {
    blocks: Vec<GlobalPtr<Block>>,
    len: usize,
}

/// The resizable array, generic over its reclamation backend.
pub struct RcuArray<R: Reclaimer = EpochManager> {
    table: AtomicObject<Table>,
    em: R,
    block_size: usize,
}

// SAFETY: all shared state is atomics plus reclaimer-managed snapshots.
unsafe impl<R: Reclaimer> Send for RcuArray<R> {}
unsafe impl<R: Reclaimer> Sync for RcuArray<R> {}

impl RcuArray {
    /// Create an array of `initial_len` zeroed cells using blocks of
    /// `block_size` elements, distributed over all locales, with the
    /// default epoch-based backend.
    pub fn new(block_size: usize, initial_len: usize) -> RcuArray {
        Self::with_reclaimer(block_size, initial_len)
    }

    /// The array's epoch manager.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<R: Reclaimer> RcuArray<R> {
    /// Create an array of `initial_len` zeroed cells using reclamation
    /// backend `R`.
    pub fn with_reclaimer(block_size: usize, initial_len: usize) -> RcuArray<R> {
        assert!(block_size >= 1, "block size must be at least 1");
        let rt = ctx::current_runtime();
        let n_blocks = initial_len.div_ceil(block_size);
        let blocks = (0..n_blocks)
            .map(|b| Self::alloc_block(b, block_size))
            .collect();
        let table = alloc_local(
            &rt,
            Table {
                blocks,
                len: initial_len,
            },
        );
        RcuArray {
            table: AtomicObject::new(table),
            em: R::new_in_runtime(),
            block_size,
        }
    }

    fn alloc_block(index: usize, block_size: usize) -> GlobalPtr<Block> {
        let rt = ctx::current_runtime();
        let owner = (index % rt.num_locales()) as LocaleId;
        alloc_on(
            &rt,
            owner,
            Block {
                cells: (0..block_size).map(|_| AtomicU64::new(0)).collect(),
            },
        )
    }

    /// Register the calling task for array operations.
    pub fn register(&self) -> R::Guard<'_> {
        self.em.register()
    }

    /// Logical length of the current snapshot.
    pub fn len(&self) -> usize {
        let _span = OpSpan::start(OpClass::RcuArrayOp, opkind::LEN, 0);
        if R::NEEDS_PROTECT {
            let g = self.em.register();
            g.pin();
            // SAFETY: hazard-validated root protection.
            let n = unsafe { g.protect_root(0, &self.table).deref() }.len;
            g.release(0);
            g.unpin();
            n
        } else {
            // SAFETY: the table pointer is always valid (grow defers,
            // never frees in place); under EBR a racing grow can only
            // make `len` stale, not dangling.
            unsafe { self.table.read().deref() }.len
        }
    }

    /// True when the array has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The locale owning element `i`'s block.
    pub fn affinity(&self, i: usize) -> LocaleId {
        ctx::with_core(|core, _| ((i / self.block_size) % core.num_locales()) as LocaleId)
    }

    /// Read element `i` under the token's protection.
    ///
    /// # Panics
    /// If `i` is out of bounds of the current snapshot.
    pub fn read(&self, tok: &R::Guard<'_>, i: usize) -> u64 {
        let _span = OpSpan::start(OpClass::RcuArrayOp, opkind::READ, i as u64);
        tok.pin();
        let v = ctx::with_core(|core, _| {
            // SAFETY: protected — pinned (EBR) or hazard-validated (HP).
            let t = unsafe { tok.protect_root(0, &self.table).deref() };
            assert!(i < t.len, "index {i} out of bounds (len {})", t.len);
            let block = t.blocks[i / self.block_size];
            engine::get(core, block.locale(), 8);
            // SAFETY: blocks live until the array drops.
            unsafe { block.deref() }.cells[i % self.block_size].load(Ordering::SeqCst)
        });
        tok.release(0);
        tok.unpin();
        v
    }

    /// Write element `i` under the token's protection.
    pub fn write(&self, tok: &R::Guard<'_>, i: usize, v: u64) {
        let _span = OpSpan::start(OpClass::RcuArrayOp, opkind::WRITE, i as u64);
        tok.pin();
        ctx::with_core(|core, _| {
            // SAFETY: as in `read`.
            let t = unsafe { tok.protect_root(0, &self.table).deref() };
            assert!(i < t.len, "index {i} out of bounds (len {})", t.len);
            let block = t.blocks[i / self.block_size];
            engine::put(core, block.locale(), 8);
            unsafe { block.deref() }.cells[i % self.block_size].store(v, Ordering::SeqCst);
        });
        tok.release(0);
        tok.unpin();
    }

    /// Grow the array to at least `new_len` cells. Lock-free: builds a
    /// new table (sharing all existing blocks), publishes it with one
    /// CAS, and defers the old table. Concurrent growers race; the loser
    /// retries on top of the winner's table. Returns the resulting
    /// length.
    pub fn grow(&self, tok: &R::Guard<'_>, new_len: usize) -> usize {
        let span = OpSpan::start(OpClass::RcuArrayOp, opkind::GROW, new_len as u64);
        tok.pin();
        let result = loop {
            let cur_ptr = tok.protect_root(0, &self.table);
            // SAFETY: protected.
            let cur = unsafe { cur_ptr.deref() };
            if cur.len >= new_len {
                break cur.len;
            }
            let want_blocks = new_len.div_ceil(self.block_size);
            let mut blocks = cur.blocks.clone();
            while blocks.len() < want_blocks {
                blocks.push(Self::alloc_block(blocks.len(), self.block_size));
            }
            let fresh_from = cur.blocks.len();
            let rt = ctx::current_runtime();
            let new_table = alloc_local(
                &rt,
                Table {
                    blocks,
                    len: new_len,
                },
            );
            if self.table.compare_and_swap(cur_ptr, new_table) {
                tok.defer_delete(cur_ptr);
                break new_len;
            }
            // Lost the race: free our unpublished table and its *fresh*
            // blocks (shared older blocks belong to the winner's table).
            // SAFETY: never published.
            unsafe {
                let t = &*new_table.as_ptr();
                for &b in &t.blocks[fresh_from..] {
                    pgas_sim::free(&rt, b);
                }
                pgas_sim::free(&rt, new_table);
            }
            span.retry();
        };
        tok.release(0);
        tok.unpin();
        result
    }

    /// Attempt an epoch advance / hazard scan (reclaims superseded
    /// tables).
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The array's reclamation backend.
    pub fn reclaimer(&self) -> &R {
        &self.em
    }
}

impl<R: Reclaimer> Drop for RcuArray<R> {
    fn drop(&mut self) {
        let teardown = || {
            let rt = ctx::current_runtime();
            let t_ptr = self.table.read();
            // SAFETY: quiescent teardown; the final table owns all blocks.
            unsafe {
                let t = &*t_ptr.as_ptr();
                for &b in &t.blocks {
                    pgas_sim::free(&rt, b);
                }
                pgas_sim::free(&rt, t_ptr);
            }
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

impl<R: Reclaimer> std::fmt::Debug for RcuArray<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RcuArray")
            .field("len", &self.len())
            .field("block_size", &self.block_size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::AtomicUsize;

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn read_write_roundtrip() {
        let rt = zrt(2);
        rt.run(|| {
            let a = RcuArray::new(4, 10);
            let tok = a.register();
            assert_eq!(a.len(), 10);
            for i in 0..10 {
                assert_eq!(a.read(&tok, i), 0, "zero-initialized");
                a.write(&tok, i, i as u64 * 3);
            }
            for i in 0..10 {
                assert_eq!(a.read(&tok, i), i as u64 * 3);
            }
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn blocks_distributed_round_robin() {
        let rt = zrt(3);
        rt.run(|| {
            let a = RcuArray::new(2, 12); // 6 blocks over 3 locales
            assert_eq!(a.affinity(0), 0);
            assert_eq!(a.affinity(2), 1);
            assert_eq!(a.affinity(4), 2);
            assert_eq!(a.affinity(6), 0);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn grow_preserves_existing_elements() {
        let rt = zrt(2);
        rt.run(|| {
            let a = RcuArray::new(4, 8);
            let tok = a.register();
            for i in 0..8 {
                a.write(&tok, i, 100 + i as u64);
            }
            assert_eq!(a.grow(&tok, 20), 20);
            assert_eq!(a.len(), 20);
            for i in 0..8 {
                assert_eq!(a.read(&tok, i), 100 + i as u64, "stable across grow");
            }
            a.write(&tok, 19, 7);
            assert_eq!(a.read(&tok, 19), 7);
            drop(tok);
            a.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn grow_to_smaller_is_noop() {
        let rt = zrt(1);
        rt.run(|| {
            let a = RcuArray::new(4, 16);
            let tok = a.register();
            assert_eq!(a.grow(&tok, 8), 16);
            assert_eq!(a.len(), 16);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn readers_survive_concurrent_grows() {
        let rt = zrt(2);
        rt.run(|| {
            let a = RcuArray::new(8, 64);
            {
                let tok = a.register();
                for i in 0..64 {
                    a.write(&tok, i, i as u64);
                }
            }
            rt.coforall_tasks(4, |t| {
                let tok = a.register();
                if t == 0 {
                    for step in 1..=10 {
                        a.grow(&tok, 64 + step * 32);
                        a.try_reclaim();
                    }
                } else {
                    for _ in 0..300 {
                        let i = (t * 13) % 64;
                        assert_eq!(a.read(&tok, i), i as u64, "snapshot stays valid");
                    }
                }
            });
            assert_eq!(a.len(), 64 + 320);
            a.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn racing_growers_converge() {
        let rt = zrt(2);
        rt.run(|| {
            let a = RcuArray::new(4, 4);
            let grows = AtomicUsize::new(0);
            rt.coforall_tasks(4, |t| {
                let tok = a.register();
                let target = 4 + (t + 1) * 16;
                a.grow(&tok, target);
                grows.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(a.len(), 4 + 4 * 16, "max target wins");
            a.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0, "losers' tables and blocks freed");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let rt = zrt(1);
        rt.run(|| {
            let a = RcuArray::new(4, 4);
            let tok = a.register();
            let _ = a.read(&tok, 4);
        });
    }

    #[test]
    fn remote_cells_charge_get_put() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let a = RcuArray::new(2, 8); // blocks alternate locales
            let tok = a.register();
            rt.reset_metrics();
            a.write(&tok, 2, 9); // block 1 → locale 1 (remote)
            let _ = a.read(&tok, 2);
            let s = rt.total_comm();
            assert_eq!(s.puts, 1);
            assert_eq!(s.gets, 1);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_backend_grows_and_reclaims_tables() {
        use pgas_epoch::HazardReclaimer;
        let rt = zrt(2);
        rt.run(|| {
            let a = RcuArray::<HazardReclaimer>::with_reclaimer(8, 32);
            {
                let tok = a.register();
                for i in 0..32 {
                    a.write(&tok, i, i as u64 + 1);
                }
            }
            rt.coforall_tasks(4, |t| {
                let tok = a.register();
                if t == 0 {
                    for step in 1..=8 {
                        a.grow(&tok, 32 + step * 16);
                    }
                } else {
                    for r in 0..200 {
                        let i = (t * 7 + r) % 32;
                        assert_eq!(a.read(&tok, i), i as u64 + 1);
                    }
                }
            });
            assert_eq!(a.len(), 32 + 128);
            a.clear_reclaim();
            let snap = a.reclaimer().stats();
            assert_eq!(
                snap.objects_deferred, snap.objects_reclaimed,
                "every superseded table reclaimed"
            );
            assert_eq!(snap.objects_deferred, 8, "one table retired per grow");
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
