//! # pgas-structures — non-blocking distributed data structures
//!
//! The structures the paper's introduction motivates ("even the most
//! primitive of non-blocking data structures, such as queues, stacks, and
//! linked lists") plus its announced first application (a concurrent hash
//! table), all built on `pgas-atomics` (`AtomicObject` / ABA) and
//! `pgas-epoch` (`EpochManager`):
//!
//! * [`LockFreeStack`] — Treiber stack, the paper's Listing 1.
//! * [`MsQueue`] — Michael–Scott FIFO queue.
//! * [`LockFreeList`] — Harris ordered set (mark bit in the compressed
//!   pointer).
//! * [`DistHashMap`] — hash map with buckets distributed across locales,
//!   the Interlocked-Hash-Table application from the paper's conclusion.
//! * [`LockFreeSkipList`] — ordered set with expected-logarithmic
//!   operations (Fraser's flagship EBR application).
//! * [`RcuArray`] — RCU-style distributed resizable array.
//!
//! On top of the flat structures sits the **global-view tier** (the
//! follow-up paper's privatization step): [`ShardedHashMap`] homes each
//! key's chain on its owning locale so locally-owned ops are
//! communication-free, [`WorkStealingDeque`] gives every locale a local
//! LIFO end with remote thieves stealing via DCAS on the victim's top
//! pointer, and [`GlobalOrderedSet`] shards the skiplist per locale with
//! cross-shard range scans.
//!
//! All of them are usable from any locale; nodes carry the affinity of the
//! task that allocated them. Every structure is generic over its
//! reclamation backend (`R: Reclaimer`, defaulting to the epoch-based
//! `EpochManager`); substituting `HazardReclaimer` swaps in distributed
//! hazard pointers, whose per-pointer protection bounds garbage even
//! when a reader stalls forever (at the cost of charged hazard
//! publication on every traversal step).

#![warn(missing_docs)]

pub mod deque;
pub mod list;
pub mod map;
pub mod ordered;
pub mod queue;
pub mod rcu_array;
pub mod sharded_map;
pub mod skiplist;
pub mod stack;

pub use deque::WorkStealingDeque;
pub use list::LockFreeList;
pub use map::DistHashMap;
pub use ordered::GlobalOrderedSet;
pub use queue::MsQueue;
pub use rcu_array::RcuArray;
pub use sharded_map::{ShardSnapshot, ShardedHashMap};
pub use skiplist::LockFreeSkipList;
pub use stack::LockFreeStack;
