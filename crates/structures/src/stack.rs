//! A distributed lock-free (Treiber) stack — the paper's Listing 1.
//!
//! `push` is the verbatim shape of the paper's example: read the head with
//! its ABA counter, point the new node at it, and `compareAndSwapABA` it
//! in. `pop` logically removes the node and hands it to the
//! `EpochManager`, which is what makes the *memory reclamation* safe — the
//! very problem the paper's two building blocks exist to solve together.
//!
//! Nodes are allocated on the locale of the pushing task, so a stack used
//! from many locales interleaves remote references; the head cell lives on
//! the locale that created the stack.

use std::mem::ManuallyDrop;

use pgas_atomics::AtomicAbaObject;
use pgas_epoch::{EpochManager, Token};
use pgas_sim::{alloc_local, ctx, GlobalPtr};

/// One stack cell.
pub struct Node<T> {
    value: ManuallyDrop<T>,
    next: GlobalPtr<Node<T>>,
}

/// A lock-free stack usable from any locale, with epoch-based reclamation.
pub struct LockFreeStack<T: Send> {
    head: AtomicAbaObject<Node<T>>,
    em: EpochManager,
}

// SAFETY: the head cell is an atomic word and the manager is thread-safe;
// values are required to be Send by the public API bounds.
unsafe impl<T: Send> Send for LockFreeStack<T> {}
unsafe impl<T: Send> Sync for LockFreeStack<T> {}

impl<T: Send> LockFreeStack<T> {
    /// Create an empty stack homed on the current locale, with its own
    /// epoch manager.
    pub fn new() -> LockFreeStack<T> {
        LockFreeStack {
            head: AtomicAbaObject::null(),
            em: EpochManager::new(),
        }
    }

    /// Register the calling task for stack operations (the epoch token).
    pub fn register(&self) -> Token<'_> {
        self.em.register()
    }

    /// Push `value` (Listing 1).
    pub fn push(&self, tok: &Token<'_>, value: T) {
        tok.pin();
        let node = alloc_local(
            &ctx::current_runtime(),
            Node {
                value: ManuallyDrop::new(value),
                next: GlobalPtr::null(),
            },
        );
        loop {
            let old_head = self.head.read_aba();
            // The node is unpublished: writing next is race-free.
            unsafe { &mut *node.as_ptr() }.next = old_head.get_object();
            if self.head.compare_and_swap_aba(old_head, node) {
                break;
            }
        }
        tok.unpin();
    }

    /// Pop the top value, or `None` when empty. The removed node is
    /// deferred to the epoch manager.
    pub fn pop(&self, tok: &Token<'_>) -> Option<T> {
        tok.pin();
        let result = loop {
            let old_head = self.head.read_aba();
            let top = old_head.get_object();
            if top.is_null() {
                break None;
            }
            // SAFETY: pinned — the node cannot be reclaimed under us.
            let next = unsafe { top.deref() }.next;
            if self.head.compare_and_swap_aba(old_head, next) {
                // We won the logical removal: we are the unique owner of
                // the value. Move it out; the deferred drop of the Node
                // will not touch it (ManuallyDrop).
                let value = unsafe { std::ptr::read(&*(*top.as_ptr()).value) };
                tok.defer_delete(top);
                break Some(value);
            }
        };
        tok.unpin();
        result
    }

    /// Racy emptiness check (exact only in quiescence).
    pub fn is_empty(&self) -> bool {
        self.head.read().is_null()
    }

    /// Attempt an epoch advance + reclamation.
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The stack's epoch manager (for stats or manual control).
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<T: Send> Default for LockFreeStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> Drop for LockFreeStack<T> {
    fn drop(&mut self) {
        // Pop-and-drop every remaining value; the embedded EpochManager's
        // own Drop (fields drop after this body) reclaims deferred nodes.
        let teardown = || {
            let tok = self.em.register();
            while self.pop(&tok).is_some() {}
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn lifo_order_single_task() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeStack::new();
            let tok = s.register();
            for i in 0..10 {
                s.push(&tok, i);
            }
            for i in (0..10).rev() {
                assert_eq!(s.pop(&tok), Some(i));
            }
            assert_eq!(s.pop(&tok), None);
            assert!(s.is_empty());
        });
    }

    #[test]
    fn pop_empty_is_none() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeStack::<u64>::new();
            let tok = s.register();
            assert_eq!(s.pop(&tok), None);
        });
    }

    #[test]
    fn values_conserved_under_concurrency() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeStack::new();
            let popped_sum = AtomicU64::new(0);
            let popped_n = AtomicU64::new(0);
            let tasks = 4u64;
            let per = 250u64;
            rt.coforall_tasks(tasks as usize, |t| {
                let tok = s.register();
                for i in 0..per {
                    let v = t as u64 * per + i;
                    s.push(&tok, v);
                    if i % 3 == 0 {
                        if let Some(v) = s.pop(&tok) {
                            popped_sum.fetch_add(v, Ordering::Relaxed);
                            popped_n.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
            let tok = s.register();
            while let Some(v) = s.pop(&tok) {
                popped_sum.fetch_add(v, Ordering::Relaxed);
                popped_n.fetch_add(1, Ordering::Relaxed);
            }
            drop(tok);
            let total = tasks * per;
            assert_eq!(popped_n.load(Ordering::Relaxed), total);
            assert_eq!(
                popped_sum.load(Ordering::Relaxed),
                total * (total - 1) / 2,
                "every pushed value popped exactly once"
            );
            s.clear_reclaim();
            // All nodes reclaimed: only the (zero) remaining live objects.
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn distributed_pushes_interleave_locales() {
        let rt = zrt(4);
        rt.run(|| {
            let s = LockFreeStack::new();
            rt.coforall_locales(|l| {
                let tok = s.register();
                for i in 0..20u64 {
                    s.push(&tok, (l as u64) << 32 | i);
                }
            });
            let tok = s.register();
            let mut n = 0;
            let mut locales_seen = std::collections::HashSet::new();
            while let Some(v) = s.pop(&tok) {
                locales_seen.insert(v >> 32);
                n += 1;
            }
            drop(tok);
            assert_eq!(n, 80);
            assert_eq!(locales_seen.len(), 4);
            s.clear_reclaim();
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn drop_with_remaining_values_leaks_nothing() {
        let rt = zrt(2);
        rt.run(|| {
            {
                let s = LockFreeStack::new();
                let tok = s.register();
                for i in 0..50u64 {
                    s.push(&tok, i);
                }
                drop(tok);
            } // dropped non-empty
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn drop_runs_value_destructors() {
        struct Probe<'a>(&'a AtomicU64);
        impl Drop for Probe<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let rt = zrt(1);
        let drops = AtomicU64::new(0);
        rt.run(|| {
            {
                let s = LockFreeStack::new();
                let tok = s.register();
                for _ in 0..7 {
                    s.push(&tok, Probe(&drops));
                }
                // pop two: their destructors run when the caller drops them
                let a = s.pop(&tok);
                let b = s.pop(&tok);
                drop((a, b));
                drop(tok);
            }
            assert_eq!(drops.load(Ordering::Relaxed), 7);
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
