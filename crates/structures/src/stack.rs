//! A distributed lock-free (Treiber) stack — the paper's Listing 1.
//!
//! `push` is the verbatim shape of the paper's example: read the head with
//! its ABA counter, point the new node at it, and `compareAndSwapABA` it
//! in. `pop` logically removes the node and hands it to the reclamation
//! backend, which is what makes the *memory reclamation* safe — the very
//! problem the paper's two building blocks exist to solve together.
//!
//! The stack is generic over its [`Reclaimer`]: the default is the
//! distributed `EpochManager` (pin covers the whole operation), and
//! `LockFreeStack<T, HazardReclaimer>` swaps in hazard pointers, where
//! `pop` protects the head node in slot 0 before dereferencing it.
//!
//! Nodes are allocated on the locale of the pushing task, so a stack used
//! from many locales interleaves remote references; the head cell lives on
//! the locale that created the stack.
//!
//! The head snapshots (`read_aba` in `push`/`pop`, `read` in `is_empty`)
//! are the stack's hot read path: with
//! `RuntimeConfig::with_vread_fastpath(true)` they ride the versioned
//! seqlock read (one validated one-sided GET) instead of the DCAS
//! active-message round trip — no code change here, the cell routes it
//! (see `pgas-atomics`' `seqlock` module and ablation A10).

use std::mem::ManuallyDrop;

use pgas_atomics::AtomicAbaObject;
use pgas_epoch::{EpochManager, ReclaimGuard, Reclaimer};
use pgas_sim::telemetry::{opkind, OpClass, OpSpan};
use pgas_sim::{alloc_local, ctx, GlobalPtr};

/// One stack cell.
pub struct Node<T> {
    value: ManuallyDrop<T>,
    next: GlobalPtr<Node<T>>,
}

/// A lock-free stack usable from any locale, generic over its
/// reclamation backend (epoch-based by default).
pub struct LockFreeStack<T: Send, R: Reclaimer = EpochManager> {
    head: AtomicAbaObject<Node<T>>,
    em: R,
}

// SAFETY: the head cell is an atomic word and the reclaimer is Send+Sync
// by its trait bounds; values are required to be Send by the public API.
unsafe impl<T: Send, R: Reclaimer> Send for LockFreeStack<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for LockFreeStack<T, R> {}

impl<T: Send> LockFreeStack<T> {
    /// Create an empty stack homed on the current locale, with its own
    /// epoch manager (the default backend).
    pub fn new() -> LockFreeStack<T> {
        Self::with_reclaimer()
    }

    /// The stack's epoch manager (for stats or manual control).
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<T: Send, R: Reclaimer> LockFreeStack<T, R> {
    /// Create an empty stack using reclamation backend `R`, constructed
    /// on the current locale.
    pub fn with_reclaimer() -> LockFreeStack<T, R> {
        LockFreeStack {
            head: AtomicAbaObject::null(),
            em: R::new_in_runtime(),
        }
    }

    /// Register the calling task for stack operations.
    pub fn register(&self) -> R::Guard<'_> {
        self.em.register()
    }

    /// Push `value` (Listing 1). Needs no protection even under hazard
    /// pointers: the new node is unpublished and the head is never
    /// dereferenced.
    pub fn push(&self, tok: &R::Guard<'_>, value: T) {
        let span = OpSpan::start(OpClass::StackOp, opkind::PUSH, 0);
        tok.pin();
        let node = alloc_local(
            &ctx::current_runtime(),
            Node {
                value: ManuallyDrop::new(value),
                next: GlobalPtr::null(),
            },
        );
        loop {
            let old_head = self.head.read_aba();
            // The node is unpublished: writing next is race-free.
            unsafe { &mut *node.as_ptr() }.next = old_head.get_object();
            if self.head.compare_and_swap_aba(old_head, node) {
                break;
            }
            span.retry();
        }
        tok.unpin();
    }

    /// Pop the top value, or `None` when empty. The removed node is
    /// deferred to the reclaimer.
    pub fn pop(&self, tok: &R::Guard<'_>) -> Option<T> {
        let span = OpSpan::start(OpClass::StackOp, opkind::POP, 0);
        tok.pin();
        let result = loop {
            // Under HP this publishes+validates the head in slot 0; under
            // EBR it is a plain `read_aba`.
            let old_head = tok.protect_root_aba(0, &self.head);
            let top = old_head.get_object();
            if top.is_null() {
                break None;
            }
            // SAFETY: protected — pinned (EBR) or hazard-validated (HP).
            let next = unsafe { top.deref() }.next;
            if self.head.compare_and_swap_aba(old_head, next) {
                // We won the logical removal: we are the unique owner of
                // the value. Move it out; the deferred drop of the Node
                // will not touch it (ManuallyDrop).
                let value = unsafe { std::ptr::read(&*(*top.as_ptr()).value) };
                tok.defer_delete(top);
                break Some(value);
            }
            span.retry();
        };
        tok.release(0);
        tok.unpin();
        result
    }

    /// Racy emptiness check (exact only in quiescence).
    pub fn is_empty(&self) -> bool {
        let _span = OpSpan::start(OpClass::StackOp, opkind::LEN, 0);
        self.head.read().is_null()
    }

    /// Attempt an epoch advance / hazard scan + reclamation.
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The stack's reclamation backend (for stats or manual control).
    pub fn reclaimer(&self) -> &R {
        &self.em
    }
}

impl<T: Send, R: Reclaimer> Default for LockFreeStack<T, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Send, R: Reclaimer> Drop for LockFreeStack<T, R> {
    fn drop(&mut self) {
        // Pop-and-drop every remaining value; the embedded reclaimer's
        // own Drop (fields drop after this body) reclaims deferred nodes.
        let teardown = || {
            let tok = self.em.register();
            while self.pop(&tok).is_some() {}
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_epoch::HazardReclaimer;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn lifo_order_single_task() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeStack::new();
            let tok = s.register();
            for i in 0..10 {
                s.push(&tok, i);
            }
            for i in (0..10).rev() {
                assert_eq!(s.pop(&tok), Some(i));
            }
            assert_eq!(s.pop(&tok), None);
            assert!(s.is_empty());
        });
    }

    #[test]
    fn pop_empty_is_none() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeStack::<u64>::new();
            let tok = s.register();
            assert_eq!(s.pop(&tok), None);
        });
    }

    #[test]
    fn values_conserved_under_concurrency() {
        let rt = zrt(1);
        rt.run(|| {
            let s = LockFreeStack::new();
            let popped_sum = AtomicU64::new(0);
            let popped_n = AtomicU64::new(0);
            let tasks = 4u64;
            let per = 250u64;
            rt.coforall_tasks(tasks as usize, |t| {
                let tok = s.register();
                for i in 0..per {
                    let v = t as u64 * per + i;
                    s.push(&tok, v);
                    if i % 3 == 0 {
                        if let Some(v) = s.pop(&tok) {
                            popped_sum.fetch_add(v, Ordering::Relaxed);
                            popped_n.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
            let tok = s.register();
            while let Some(v) = s.pop(&tok) {
                popped_sum.fetch_add(v, Ordering::Relaxed);
                popped_n.fetch_add(1, Ordering::Relaxed);
            }
            drop(tok);
            let total = tasks * per;
            assert_eq!(popped_n.load(Ordering::Relaxed), total);
            assert_eq!(
                popped_sum.load(Ordering::Relaxed),
                total * (total - 1) / 2,
                "every pushed value popped exactly once"
            );
            s.clear_reclaim();
            // All nodes reclaimed: only the (zero) remaining live objects.
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn distributed_pushes_interleave_locales() {
        let rt = zrt(4);
        rt.run(|| {
            let s = LockFreeStack::new();
            rt.coforall_locales(|l| {
                let tok = s.register();
                for i in 0..20u64 {
                    s.push(&tok, (l as u64) << 32 | i);
                }
            });
            let tok = s.register();
            let mut n = 0;
            let mut locales_seen = std::collections::HashSet::new();
            while let Some(v) = s.pop(&tok) {
                locales_seen.insert(v >> 32);
                n += 1;
            }
            drop(tok);
            assert_eq!(n, 80);
            assert_eq!(locales_seen.len(), 4);
            s.clear_reclaim();
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn drop_with_remaining_values_leaks_nothing() {
        let rt = zrt(2);
        rt.run(|| {
            {
                let s = LockFreeStack::new();
                let tok = s.register();
                for i in 0..50u64 {
                    s.push(&tok, i);
                }
                drop(tok);
            } // dropped non-empty
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn drop_runs_value_destructors() {
        struct Probe<'a>(&'a AtomicU64);
        impl Drop for Probe<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let rt = zrt(1);
        let drops = AtomicU64::new(0);
        rt.run(|| {
            {
                let s = LockFreeStack::new();
                let tok = s.register();
                for _ in 0..7 {
                    s.push(&tok, Probe(&drops));
                }
                // pop two: their destructors run when the caller drops them
                let a = s.pop(&tok);
                let b = s.pop(&tok);
                drop((a, b));
                drop(tok);
            }
            assert_eq!(drops.load(Ordering::Relaxed), 7);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn hazard_pointer_backend_conserves_values() {
        let rt = zrt(2);
        rt.run(|| {
            let s = LockFreeStack::<u64, HazardReclaimer>::with_reclaimer();
            let popped_n = AtomicU64::new(0);
            rt.coforall_tasks(4, |t| {
                let tok = s.register();
                for i in 0..200u64 {
                    s.push(&tok, t as u64 * 200 + i);
                    if i % 2 == 0 && s.pop(&tok).is_some() {
                        popped_n.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            let tok = s.register();
            while s.pop(&tok).is_some() {
                popped_n.fetch_add(1, Ordering::Relaxed);
            }
            drop(tok);
            assert_eq!(popped_n.load(Ordering::Relaxed), 800);
            s.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
