//! A distributed work-stealing deque for the global-view tier.
//!
//! Each locale owns a private LIFO segment (a Treiber chain, exactly the
//! paper's Listing 1 protocol) whose **top cell is homed on that locale**:
//!
//! * the **owner** pushes and pops at its own top — local memory, CPU
//!   atomics when network atomics are off, zero communication;
//! * a **thief** steals by running the same pop protocol against the
//!   *victim's* top cell: read the `(pointer, ABA count)` pair and
//!   `compare_and_swap_aba` it — a DCAS on the remote top pointer, which
//!   the NIC executes as a wide network atomic (or the AM slow path
//!   routes, or the versioned fast-read path accelerates the read half;
//!   the cell decides, see `pgas-atomics`).
//!
//! The ABA counter is what makes the remote steal safe: a thief's CAS
//! can lose an arbitrary amount of time between reading the top and
//! swinging it, during which the owner may pop and re-push the same
//! node address. The counter turns that into a failed CAS instead of a
//! corrupted chain — the exact failure mode the paper's
//! `compareAndSwapABA` exists for.
//!
//! `steal` scans victims round-robin starting after the calling locale,
//! so concurrent thieves spread instead of convoying on one victim.
//! Values parked in a crashed locale's segment stay reachable from every
//! other locale (global pointers), which is what makes this layout a
//! deque *in the PGAS sense* rather than N independent stacks.
//!
//! Generic over `R:`[`Reclaimer`] like every structure in this crate:
//! popped/stolen nodes are deferred to the backend, and hazard-pointer
//! thieves publish the victim's top in slot 0 before dereferencing it.

use std::mem::ManuallyDrop;

use pgas_atomics::AtomicAbaObject;
use pgas_epoch::{EpochManager, ReclaimGuard, Reclaimer};
use pgas_sim::telemetry::{opkind, OpClass, OpSpan};
use pgas_sim::{alloc_local, ctx, GlobalPtr, LocaleId};

/// One deque cell.
pub struct Node<T> {
    value: ManuallyDrop<T>,
    next: GlobalPtr<Node<T>>,
}

/// A distributed work-stealing deque: one locale-homed LIFO segment per
/// locale, remote steals via DCAS on the victim's top.
pub struct WorkStealingDeque<T: Send, R: Reclaimer = EpochManager> {
    /// `tops[l]` is homed on locale `l`.
    tops: Box<[AtomicAbaObject<Node<T>>]>,
    em: R,
}

// SAFETY: top cells are atomic words; the reclaimer is Send+Sync by its
// trait bounds; values are required Send by the public API.
unsafe impl<T: Send, R: Reclaimer> Send for WorkStealingDeque<T, R> {}
unsafe impl<T: Send, R: Reclaimer> Sync for WorkStealingDeque<T, R> {}

impl<T: Send> WorkStealingDeque<T> {
    /// Create an empty deque spanning every locale of the current
    /// runtime, with the default epoch-based backend.
    pub fn new() -> WorkStealingDeque<T> {
        Self::with_reclaimer()
    }

    /// The deque's epoch manager.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.em
    }
}

impl<T: Send, R: Reclaimer> WorkStealingDeque<T, R> {
    /// Create an empty deque using reclamation backend `R`, one segment
    /// per locale of the current runtime.
    pub fn with_reclaimer() -> WorkStealingDeque<T, R> {
        let rt = ctx::current_runtime();
        let tops = (0..rt.num_locales())
            .map(|l| AtomicAbaObject::new_on(l as LocaleId, GlobalPtr::null()))
            .collect();
        WorkStealingDeque {
            tops,
            em: R::new_in_runtime(),
        }
    }

    /// Register the calling task.
    pub fn register(&self) -> R::Guard<'_> {
        self.em.register()
    }

    /// Number of per-locale segments.
    pub fn num_segments(&self) -> usize {
        self.tops.len()
    }

    /// Push `value` onto the calling locale's own segment. The node is
    /// allocated locally and the top cell is local, so this is the
    /// communication-free owner path.
    pub fn push(&self, tok: &R::Guard<'_>, value: T) {
        let span = OpSpan::start(OpClass::DequeOp, opkind::PUSH, 0);
        tok.pin();
        let top = &self.tops[ctx::here() as usize];
        let node = alloc_local(
            &ctx::current_runtime(),
            Node {
                value: ManuallyDrop::new(value),
                next: GlobalPtr::null(),
            },
        );
        loop {
            let old_top = top.read_aba();
            // Unpublished node: writing next is race-free.
            unsafe { &mut *node.as_ptr() }.next = old_top.get_object();
            if top.compare_and_swap_aba(old_top, node) {
                break;
            }
            span.retry();
        }
        tok.unpin();
    }

    /// Pop from the calling locale's own segment (LIFO), or `None` when
    /// it is empty. Competes only with thieves, never with remote owners.
    pub fn pop(&self, tok: &R::Guard<'_>) -> Option<T> {
        let span = OpSpan::start(OpClass::DequeOp, opkind::POP, 0);
        self.take_from(tok, ctx::here(), &span)
    }

    /// Steal one value from `victim`'s segment, or `None` when it is
    /// empty: the DCAS-on-remote-top protocol.
    pub fn steal_from(&self, tok: &R::Guard<'_>, victim: LocaleId) -> Option<T> {
        let span = OpSpan::start(OpClass::DequeOp, opkind::STEAL, victim as u64);
        self.take_from(tok, victim, &span)
    }

    /// Steal one value from any non-empty segment, scanning victims
    /// round-robin starting after the calling locale. Returns the value
    /// and the locale it was stolen from.
    pub fn steal(&self, tok: &R::Guard<'_>) -> Option<(T, LocaleId)> {
        let span = OpSpan::start(OpClass::DequeOp, opkind::STEAL, 0);
        let n = self.tops.len();
        let here = ctx::here() as usize;
        for i in 1..n {
            let victim = ((here + i) % n) as LocaleId;
            if let Some(v) = self.take_from(tok, victim, &span) {
                return Some((v, victim));
            }
        }
        None
    }

    /// Pop locally, falling back to stealing when the own segment is
    /// empty — the scheduler-loop primitive.
    pub fn pop_or_steal(&self, tok: &R::Guard<'_>) -> Option<T> {
        self.pop(tok).or_else(|| self.steal(tok).map(|(v, _)| v))
    }

    /// The shared removal protocol: Treiber pop against `segment`'s top.
    /// For the owner the cell is local; for a thief the `read_aba` +
    /// `compare_and_swap_aba` pair is the remote DCAS.
    fn take_from(&self, tok: &R::Guard<'_>, segment: LocaleId, span: &OpSpan) -> Option<T> {
        tok.pin();
        let top = &self.tops[segment as usize];
        let result = loop {
            // Under HP this publishes+validates the top in slot 0; under
            // EBR it is a plain `read_aba`.
            let old_top = tok.protect_root_aba(0, top);
            let head = old_top.get_object();
            if head.is_null() {
                break None;
            }
            // SAFETY: protected — pinned (EBR) or hazard-validated (HP).
            let next = unsafe { head.deref() }.next;
            if top.compare_and_swap_aba(old_top, next) {
                // Unique owner of the value now; the deferred node drop
                // will not touch it (ManuallyDrop).
                let value = unsafe { std::ptr::read(&*(*head.as_ptr()).value) };
                tok.defer_delete(head);
                break Some(value);
            }
            span.retry();
        };
        tok.release(0);
        tok.unpin();
        result
    }

    /// Racy emptiness check across every segment (exact in quiescence).
    pub fn is_empty(&self) -> bool {
        let _span = OpSpan::start(OpClass::DequeOp, opkind::LEN, 0);
        self.tops.iter().all(|t| t.read().is_null())
    }

    /// Racy emptiness check of the calling locale's own segment.
    pub fn is_empty_local(&self) -> bool {
        self.tops[ctx::here() as usize].read().is_null()
    }

    /// Attempt an epoch advance / hazard scan + reclamation.
    pub fn try_reclaim(&self) -> bool {
        self.em.try_reclaim()
    }

    /// Reclaim everything; callers must guarantee quiescence.
    pub fn clear_reclaim(&self) {
        self.em.clear()
    }

    /// The deque's reclamation backend.
    pub fn reclaimer(&self) -> &R {
        &self.em
    }
}

impl<T: Send, R: Reclaimer> Default for WorkStealingDeque<T, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Send, R: Reclaimer> Drop for WorkStealingDeque<T, R> {
    fn drop(&mut self) {
        // Drain every segment (remote pops are fine at teardown); the
        // embedded reclaimer's own Drop reclaims the deferred nodes.
        let teardown = || {
            let tok = self.em.register();
            let span = OpSpan::start(OpClass::DequeOp, opkind::POP, 0);
            for l in 0..self.tops.len() {
                while self.take_from(&tok, l as LocaleId, &span).is_some() {}
            }
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.em.runtime().run(teardown);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_epoch::HazardReclaimer;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn owner_lifo_roundtrip() {
        let rt = zrt(2);
        rt.run(|| {
            let d = WorkStealingDeque::new();
            let tok = d.register();
            for i in 0..10u64 {
                d.push(&tok, i);
            }
            assert!(!d.is_empty_local());
            for i in (0..10).rev() {
                assert_eq!(d.pop(&tok), Some(i));
            }
            assert_eq!(d.pop(&tok), None);
            assert!(d.is_empty());
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn segments_are_per_locale() {
        let rt = zrt(4);
        rt.run(|| {
            let d = WorkStealingDeque::new();
            for (l, t) in d.tops.iter().enumerate() {
                assert_eq!(t.owner() as usize, l, "top {l} homed on its locale");
            }
            rt.coforall_locales(|l| {
                let tok = d.register();
                d.push(&tok, l as u64);
                // Own segment sees only the own push.
                assert_eq!(d.pop(&tok), Some(l as u64));
                assert_eq!(d.pop(&tok), None);
            });
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn steal_takes_from_remote_segment() {
        let rt = zrt(4);
        rt.run(|| {
            let d = WorkStealingDeque::new();
            rt.on(2, || {
                let tok = d.register();
                for i in 0..5u64 {
                    d.push(&tok, 100 + i);
                }
            });
            // Locale 0's own segment is empty: pop fails, steal hits 2.
            let tok = d.register();
            assert_eq!(d.pop(&tok), None);
            let (v, victim) = d.steal(&tok).expect("victim has work");
            assert_eq!(victim, 2);
            assert!((100..105).contains(&v));
            assert!(d.steal_from(&tok, 2).is_some());
            assert_eq!(d.steal_from(&tok, 1), None, "empty victim");
            drop(tok);
            d.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn owner_local_ops_send_no_ams() {
        let rt = Runtime::new(RuntimeConfig::cluster(4).without_network_atomics());
        rt.run(|| {
            let d = WorkStealingDeque::<u64>::new();
            rt.on(1, || {
                let tok = d.register();
                let before = rt.total_comm();
                for i in 0..64u64 {
                    d.push(&tok, i);
                }
                for _ in 0..64 {
                    assert!(d.pop(&tok).is_some());
                }
                let delta = rt.total_comm() - before;
                assert_eq!(delta.am_sent, 0, "owner push/pop is communication-free");
                assert_eq!(delta.rdma_atomics, 0);
                assert!(delta.cpu_atomics > 0);
            });
            d.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    /// The CI steal-storm: one producer locale, every other locale
    /// stealing concurrently. Every value must surface exactly once.
    #[test]
    fn steal_storm_conserves_values() {
        let rt = zrt(4);
        rt.run(|| {
            let d = WorkStealingDeque::new();
            let n = 600u64;
            let taken_sum = AtomicU64::new(0);
            let taken_n = AtomicU64::new(0);
            rt.coforall_locales(|l| {
                let tok = d.register();
                if l == 0 {
                    // Producer: push everything, then help drain.
                    for v in 0..n {
                        d.push(&tok, v);
                    }
                    while let Some(v) = d.pop(&tok) {
                        taken_sum.fetch_add(v, Ordering::Relaxed);
                        taken_n.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    // Thieves: spin until the producer's segment stays
                    // dry and all values are accounted for.
                    let mut dry = 0;
                    while taken_n.load(Ordering::Relaxed) < n && dry < 10_000 {
                        match d.steal(&tok) {
                            Some((v, _)) => {
                                dry = 0;
                                taken_sum.fetch_add(v, Ordering::Relaxed);
                                taken_n.fetch_add(1, Ordering::Relaxed);
                            }
                            None => dry += 1,
                        }
                    }
                }
            });
            assert_eq!(
                taken_n.load(Ordering::Relaxed),
                n,
                "each value exactly once"
            );
            assert_eq!(
                taken_sum.load(Ordering::Relaxed),
                n * (n - 1) / 2,
                "no value lost or duplicated"
            );
            d.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn steal_storm_under_hazard_pointers() {
        let rt = zrt(3);
        rt.run(|| {
            let d = WorkStealingDeque::<u64, HazardReclaimer>::with_reclaimer();
            let n = 300u64;
            let taken_n = AtomicU64::new(0);
            rt.coforall_locales(|l| {
                let tok = d.register();
                if l == 0 {
                    for v in 0..n {
                        d.push(&tok, v);
                    }
                    while d.pop(&tok).is_some() {
                        taken_n.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    let mut dry = 0;
                    while taken_n.load(Ordering::Relaxed) < n && dry < 10_000 {
                        if d.steal(&tok).is_some() {
                            dry = 0;
                            taken_n.fetch_add(1, Ordering::Relaxed);
                        } else {
                            dry += 1;
                        }
                    }
                }
            });
            assert_eq!(taken_n.load(Ordering::Relaxed), n);
            d.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn pop_or_steal_drains_everything() {
        let rt = zrt(3);
        rt.run(|| {
            let d = WorkStealingDeque::new();
            rt.coforall_locales(|l| {
                let tok = d.register();
                for i in 0..40u64 {
                    d.push(&tok, (l as u64) * 100 + i);
                }
            });
            // Drain from locale 0 only: pops its own 40, steals the rest.
            let tok = d.register();
            let mut seen = std::collections::HashSet::new();
            while let Some(v) = d.pop_or_steal(&tok) {
                assert!(seen.insert(v), "value {v} surfaced twice");
            }
            assert_eq!(seen.len(), 120);
            drop(tok);
            d.clear_reclaim();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn drop_with_remaining_values_leaks_nothing() {
        let rt = zrt(3);
        rt.run(|| {
            {
                let d = WorkStealingDeque::new();
                rt.coforall_locales(|l| {
                    let tok = d.register();
                    for i in 0..25u64 {
                        d.push(&tok, (l as u64) << 32 | i);
                    }
                });
            } // dropped with 75 values across 3 segments
            assert_eq!(rt.live_objects(), 0);
        });
    }
}
