//! # pgas-atomics — atomic operations on object references in PGAS
//!
//! Rust port of the paper's `AtomicObject` module: Chapel defines atomics
//! only on `bool`/`int`/`uint`/`real`, yet every non-blocking data
//! structure needs to CAS *object references*. This crate provides:
//!
//! * [`AtomicObject`] — atomics on [`pgas_sim::GlobalPtr`]s. Under pointer
//!   compression (48-bit address + 16-bit locale) the cell is a single
//!   word, so remote operations are RDMA (NIC) atomics; in the > 2^16
//!   locale wide-pointer fallback, operations become double-word CAS
//!   locally and active messages remotely.
//! * [`AtomicAbaObject`] / [`Aba`] — the 128-bit `{pointer, counter}`
//!   wrapper giving ABA-immune compare-and-swap via DCAS.
//! * [`LocalAtomicObject`] / [`LocalAtomicAbaObject`] — the shared-memory
//!   variants that ignore locality.
//! * [`AtomicInt`] — the `atomic int` baseline Fig. 3 compares against,
//!   routed through the same simulated network.
//!
//! ## Treiber-stack push, as in Listing 1 of the paper
//!
//! ```
//! use pgas_sim::{Runtime, alloc_local, GlobalPtr};
//! use pgas_atomics::AtomicAbaObject;
//!
//! struct Node {
//!     value: u64,
//!     next: GlobalPtr<Node>,
//! }
//!
//! let rt = Runtime::shared_memory();
//! rt.run(|| {
//!     let head = AtomicAbaObject::<Node>::null();
//!     // proc push(newObj: T) { ... } while(!head.compareAndSwapABA(...))
//!     let node = alloc_local(&rt, Node { value: 42, next: GlobalPtr::null() });
//!     loop {
//!         let old_head = head.read_aba();
//!         unsafe { &mut *node.as_ptr() }.next = old_head.get_object();
//!         if head.compare_and_swap_aba(old_head, node) {
//!             break;
//!         }
//!     }
//!     assert_eq!(unsafe { head.read().deref() }.value, 42);
//!     unsafe { pgas_sim::free(&rt, node) };
//! });
//! ```

#![warn(missing_docs)]

pub mod aba;
pub mod atomic_int;
pub mod compression;
pub mod descriptor;
pub mod global;
pub mod local;
pub(crate) mod seqlock;

pub use aba::{Aba, AtomicAbaObject};
pub use atomic_int::AtomicInt;
pub use compression::{preferred_mode, requires_wide, MAX_COMPRESSED_LOCALES};
pub use descriptor::{DescRef, DescriptorAtomicObject, DescriptorTable};
pub use global::AtomicObject;
pub use local::{LocalAtomicAbaObject, LocalAtomicObject};
