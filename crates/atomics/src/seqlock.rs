//! Seqlock plumbing shared by the 128-bit atomic cells.
//!
//! The "Big Atomics" observation (PAPERS.md, arXiv:2501.07503): wide atomic
//! *loads* do not need the DCAS round trip — pairing the cell with a
//! sequence counter lets readers validate an optimistic two-load window
//! instead, while writers keep the DCAS as the linearization point and
//! bump the sequence to odd before / even after their update. Readers that
//! observe an odd or moved sequence retry; after a bounded number of torn
//! windows they escalate to the existing DCAS slow path.
//!
//! The cost model and counters live in the comm layer
//! ([`pgas_sim::engine::CommEngine::remote_vread_u128`]); this module only
//! holds the writer-side sequence discipline and the reader-side entry
//! point shared by [`crate::AtomicObject`] (wide repr) and
//! [`crate::AtomicAbaObject`].

use std::sync::atomic::{AtomicU64, Ordering};

use pgas_sim::engine;
use pgas_sim::runtime::RuntimeCore;
use pgas_sim::LocaleId;
use portable_atomic::AtomicU128;

/// Run a mutating 128-bit cell operation under the writer half of the
/// seqlock protocol: sequence to odd (write in flight) before `f`, back to
/// even after. Must be called on the owner side, around the DCAS/store
/// that `f` performs — the DCAS stays the linearization point; the
/// sequence only tells optimistic readers their window was torn.
///
/// The sequence stores are uncounted and charge no virtual time (they
/// share the writer's cache line and hide entirely under the DCAS cost),
/// so with the fast path disabled every counter and vtime charge is
/// bit-identical to the pre-seqlock build.
#[inline]
pub(crate) fn write_locked<R>(seq: &AtomicU64, f: impl FnOnce() -> R) -> R {
    seq.fetch_add(1, Ordering::SeqCst);
    let r = f();
    seq.fetch_add(1, Ordering::SeqCst);
    r
}

/// One versioned fast read of `cell`: `None` when the fast path is
/// disabled or the retry budget ran dry (the caller must then take the
/// DCAS slow path). See [`pgas_sim::engine::CommEngine::remote_vread_u128`]
/// for the attempt protocol, cost model, and counters.
#[inline]
pub(crate) fn fast_read(
    core: &RuntimeCore,
    owner: LocaleId,
    seq: &AtomicU64,
    cell: &AtomicU128,
) -> Option<u128> {
    if !core.config.vread_fastpath {
        return None;
    }
    engine::remote_vread_u128(core, owner, seq, &|| cell.load(Ordering::SeqCst))
}
