//! The baseline: Chapel's `atomic int`, routed through the simulated
//! network exactly like every other atomic.
//!
//! Fig. 3 of the paper compares `AtomicObject` against `atomic int` — the
//! only natively-atomic type family in Chapel — so the reproduction needs
//! an `atomic int` whose operations take the same NIC/CPU/AM paths. This
//! is that type: a 64-bit atomic whose operations are priced by
//! [`pgas_sim::engine`], with remote operations executing either as RDMA
//! atomics (network atomics on) or active messages (off).

use std::sync::atomic::{AtomicU64, Ordering};

use pgas_sim::engine::{self, AtomicPath};
use pgas_sim::{ctx, LocaleId};

/// A 64-bit integer with Chapel-`atomic`-like semantics in the simulated
/// PGAS world. The value itself lives wherever the containing object
/// lives; `owner` records that affinity for routing.
#[derive(Debug)]
pub struct AtomicInt {
    cell: AtomicU64,
    owner: LocaleId,
}

impl AtomicInt {
    /// Create with affinity to the current locale.
    pub fn new(v: u64) -> AtomicInt {
        AtomicInt {
            cell: AtomicU64::new(v),
            owner: pgas_sim::here(),
        }
    }

    /// Create with explicit affinity (for objects embedded in structures
    /// allocated on another locale).
    pub fn new_on(owner: LocaleId, v: u64) -> AtomicInt {
        AtomicInt {
            cell: AtomicU64::new(v),
            owner,
        }
    }

    /// The locale this atomic's storage belongs to.
    pub fn owner(&self) -> LocaleId {
        self.owner
    }

    fn route<R: Send>(&self, op: impl FnOnce(&AtomicU64) -> R + Send) -> R {
        ctx::with_core(
            |core, _| match engine::remote_atomic_u64(core, self.owner) {
                AtomicPath::Nic | AtomicPath::CpuLocal => op(&self.cell),
                AtomicPath::ActiveMessage => core.on_combining(self.owner, move || {
                    engine::handler_atomic_u64(core);
                    op(&self.cell)
                }),
            },
        )
    }

    /// Atomic load (SeqCst, like Chapel's default). A pure read, so under
    /// fault injection it is tagged idempotent: a lost read request can be
    /// retried safely (see [`pgas_sim::faults`]).
    pub fn read(&self) -> u64 {
        pgas_sim::faults::with_class(pgas_sim::faults::OpClass::Idempotent, || {
            self.route(|c| c.load(Ordering::SeqCst))
        })
    }

    /// Atomic store.
    pub fn write(&self, v: u64) {
        self.route(|c| c.store(v, Ordering::SeqCst))
    }

    /// Atomic swap, returning the previous value.
    pub fn exchange(&self, v: u64) -> u64 {
        self.route(|c| c.swap(v, Ordering::SeqCst))
    }

    /// Compare-and-swap; returns `true` on success.
    pub fn compare_and_swap(&self, expected: u64, new: u64) -> bool {
        self.route(|c| {
            c.compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        })
    }

    /// Atomic fetch-add, returning the previous value.
    pub fn fetch_add(&self, v: u64) -> u64 {
        self.route(|c| c.fetch_add(v, Ordering::SeqCst))
    }

    /// Atomic fetch-sub, returning the previous value.
    pub fn fetch_sub(&self, v: u64) -> u64 {
        self.route(|c| c.fetch_sub(v, Ordering::SeqCst))
    }

    /// Chapel's `testAndSet` on `atomic bool` (used for election flags):
    /// returns the *previous* value, so `false` means "we won".
    pub fn test_and_set(&self) -> bool {
        self.route(|c| c.swap(1, Ordering::SeqCst) != 0)
    }

    /// Clear a flag previously taken with [`Self::test_and_set`].
    pub fn clear(&self) {
        self.route(|c| c.store(0, Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};

    #[test]
    fn local_ops_behave_like_an_atomic() {
        let rt = Runtime::cluster(1);
        rt.run(|| {
            let a = AtomicInt::new(5);
            assert_eq!(a.read(), 5);
            a.write(9);
            assert_eq!(a.exchange(11), 9);
            assert!(a.compare_and_swap(11, 12));
            assert!(!a.compare_and_swap(11, 13));
            assert_eq!(a.read(), 12);
            assert_eq!(a.fetch_add(8), 12);
            assert_eq!(a.fetch_sub(10), 20);
            assert_eq!(a.read(), 10);
        });
    }

    #[test]
    fn with_network_atomics_every_op_is_rdma() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let a = AtomicInt::new_on(1, 0);
            rt.reset_metrics();
            a.write(3);
            let _ = a.read();
            assert!(a.compare_and_swap(3, 4));
            let s = rt.total_comm();
            assert_eq!(s.rdma_atomics, 3);
            assert_eq!(s.am_sent, 0, "RDMA atomics bypass the progress thread");
        });
    }

    #[test]
    fn without_network_atomics_remote_ops_use_am() {
        let rt = Runtime::new(RuntimeConfig::cluster(2).without_network_atomics());
        rt.run(|| {
            let a = AtomicInt::new_on(1, 0);
            rt.reset_metrics();
            a.write(3);
            assert_eq!(a.read(), 3);
            let s = rt.total_comm();
            assert_eq!(s.rdma_atomics, 0);
            assert_eq!(s.am_sent, 2);
            assert_eq!(s.cpu_atomics, 2, "the op executes as a CPU atomic remotely");
        });
    }

    #[test]
    fn without_network_atomics_local_ops_are_cpu() {
        let rt = Runtime::new(RuntimeConfig::cluster(2).without_network_atomics());
        rt.run(|| {
            let a = AtomicInt::new(0);
            rt.reset_metrics();
            a.fetch_add(1);
            let s = rt.total_comm();
            assert_eq!(s.cpu_atomics, 1);
            assert_eq!(s.network_events(), 0);
        });
    }

    #[test]
    fn test_and_set_elects_exactly_one() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let flag = AtomicInt::new(0);
            let winners = std::sync::atomic::AtomicUsize::new(0);
            rt.coforall_tasks(8, |_| {
                if !flag.test_and_set() {
                    winners.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1);
            flag.clear();
            assert!(!flag.test_and_set(), "clear re-arms the flag");
        });
    }

    #[test]
    fn concurrent_fetch_add_conserves_count() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let a = AtomicInt::new(0);
            rt.forall_dist_tasks(
                1000,
                2,
                |_, _| (),
                |_, _| {
                    a.fetch_add(1);
                },
            );
            assert_eq!(a.read(), 1000);
        });
    }
}
