//! `AtomicObject<T>` — atomic operations on object references, in shared
//! *and* distributed memory.
//!
//! This is the paper's first contribution (§II-A). A Chapel class
//! reference is a 128-bit wide pointer, too big for the 64-bit atomics the
//! NIC supports; pointer compression (48-bit address + 16-bit locale id)
//! shrinks it to a single word so that remote atomics can be genuine RDMA
//! operations. On systems with more than 2^16 locales the compressed form
//! is unsound, and the implementation falls back to a 128-bit
//! representation updated with double-word CAS — demoting remote
//! operations from RDMA atomics to active messages.
//!
//! Both representations are implemented and selected by the runtime's
//! [`pgas_sim::PointerMode`], so the fallback path is exercised under test
//! even though the simulator never actually hosts 2^16 locales.
//!
//! All operations use `SeqCst` ordering, matching the semantics of Chapel's
//! `atomic` variables that the original implementation is built on.

use std::sync::atomic::{AtomicU64, Ordering};

use pgas_sim::engine::{self, AtomicPath};
use pgas_sim::telemetry::{opkind, OpClass, OpSpan};
use pgas_sim::{ctx, GlobalPtr, LocaleId, PointerMode, WideGlobalPtr};
use portable_atomic::AtomicU128;

use crate::seqlock;

/// Storage for the object word: one compressed word, or the full wide
/// pair glued into a `u128` (`high = locality`, `low = address`) together
/// with the seqlock word that backs the versioned fast-read path (see
/// [`crate::seqlock`]; maintained unconditionally, consulted only when
/// [`pgas_sim::RuntimeConfig::vread_fastpath`] is on).
enum Repr {
    Compressed(AtomicU64),
    Wide { cell: AtomicU128, seq: AtomicU64 },
}

fn wide_to_u128<T>(p: WideGlobalPtr<T>) -> u128 {
    let (locale, addr) = p.into_words();
    ((locale as u128) << 64) | addr as u128
}

fn u128_to_wide<T>(bits: u128) -> WideGlobalPtr<T> {
    WideGlobalPtr::from_words((bits >> 64) as u64, bits as u64)
}

/// An atomic cell holding a reference to a (locale-owned, `unmanaged`)
/// object. Supports `read`, `write`, `exchange`, and `compare_exchange`
/// from any locale; see the module docs for how each routes.
///
/// The cell itself has an affinity (`owner`): the locale on which the
/// containing structure was allocated. Operations from other locales are
/// remote operations.
pub struct AtomicObject<T> {
    repr: Repr,
    owner: LocaleId,
    _marker: std::marker::PhantomData<*mut T>,
}

// SAFETY: the cell holds a pointer-sized word; every dereference of the
// pointers it yields is a separately-unsafe operation.
unsafe impl<T> Send for AtomicObject<T> {}
unsafe impl<T> Sync for AtomicObject<T> {}

impl<T> AtomicObject<T> {
    /// A null cell with affinity to the current locale, using the runtime's
    /// configured pointer mode.
    pub fn null() -> Self {
        Self::new(GlobalPtr::null())
    }

    /// A cell initialized to `ptr`, with affinity to the current locale.
    pub fn new(ptr: GlobalPtr<T>) -> Self {
        Self::new_on(pgas_sim::here(), ptr)
    }

    /// A cell initialized to `ptr` whose storage belongs to `owner`.
    pub fn new_on(owner: LocaleId, ptr: GlobalPtr<T>) -> Self {
        let mode = ctx::with_core(|core, _| core.config.pointer_mode);
        let repr = match mode {
            PointerMode::Compressed => Repr::Compressed(AtomicU64::new(ptr.into_bits())),
            PointerMode::Wide => Repr::Wide {
                cell: AtomicU128::new(wide_to_u128(ptr.widen())),
                seq: AtomicU64::new(0),
            },
        };
        AtomicObject {
            repr,
            owner,
            _marker: std::marker::PhantomData,
        }
    }

    /// The locale owning this cell's storage.
    pub fn owner(&self) -> LocaleId {
        self.owner
    }

    /// Route a compressed-word operation: direct for NIC/CPU paths, active
    /// message otherwise.
    fn route64<R: Send>(&self, cell: &AtomicU64, op: impl FnOnce(&AtomicU64) -> R + Send) -> R {
        ctx::with_core(
            |core, _| match engine::remote_atomic_u64(core, self.owner) {
                AtomicPath::Nic | AtomicPath::CpuLocal => op(cell),
                AtomicPath::ActiveMessage => core.on_combining(self.owner, move || {
                    engine::handler_atomic_u64(core);
                    op(cell)
                }),
            },
        )
    }

    /// Route a wide (128-bit) operation: local DCAS or active message —
    /// never the NIC, which tops out at 64 bits.
    fn route128<R: Send>(&self, cell: &AtomicU128, op: impl FnOnce(&AtomicU128) -> R + Send) -> R {
        ctx::with_core(|core, _| match engine::remote_dcas_u128(core, self.owner) {
            AtomicPath::CpuLocal => op(cell),
            AtomicPath::ActiveMessage => core.on_combining(self.owner, move || {
                engine::handler_dcas_u128(core);
                op(cell)
            }),
            AtomicPath::Nic => unreachable!("128-bit atomics never take the NIC path"),
        })
    }

    /// Atomically read the current reference. A pure read — idempotent
    /// under fault injection, so a lost read request may be retried (see
    /// [`pgas_sim::faults`]).
    ///
    /// In wide mode with [`pgas_sim::RuntimeConfig::vread_fastpath`]
    /// enabled, the read is an optimistic versioned (seqlock) read on the
    /// one-sided GET cost model, falling back to the DCAS path after the
    /// retry budget (see [`crate::seqlock`]).
    pub fn read(&self) -> GlobalPtr<T> {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::READ, 0);
        pgas_sim::faults::with_class(pgas_sim::faults::OpClass::Idempotent, || match &self.repr {
            Repr::Compressed(c) => {
                GlobalPtr::from_bits(self.route64(c, |c| c.load(Ordering::SeqCst)))
            }
            Repr::Wide { cell, seq } => {
                let fast =
                    ctx::with_core(|core, _| seqlock::fast_read(core, self.owner, seq, cell));
                let bits = match fast {
                    Some(bits) => bits,
                    None => self.route128(cell, |c| c.load(Ordering::SeqCst)),
                };
                wide_ptr_to_global(u128_to_wide::<T>(bits))
            }
        })
    }

    /// Atomically replace the reference.
    pub fn write(&self, ptr: GlobalPtr<T>) {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::WRITE, 0);
        match &self.repr {
            Repr::Compressed(c) => {
                let bits = ptr.into_bits();
                self.route64(c, move |c| c.store(bits, Ordering::SeqCst))
            }
            Repr::Wide { cell, seq } => {
                let bits = wide_to_u128(ptr.widen());
                self.route128(cell, move |c| {
                    seqlock::write_locked(seq, || c.store(bits, Ordering::SeqCst))
                })
            }
        }
    }

    /// Atomically swap in `ptr`, returning the previous reference.
    pub fn exchange(&self, ptr: GlobalPtr<T>) -> GlobalPtr<T> {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::EXCHANGE, 0);
        match &self.repr {
            Repr::Compressed(c) => {
                let bits = ptr.into_bits();
                GlobalPtr::from_bits(self.route64(c, move |c| c.swap(bits, Ordering::SeqCst)))
            }
            Repr::Wide { cell, seq } => {
                let bits = wide_to_u128(ptr.widen());
                let old = self.route128(cell, move |c| {
                    seqlock::write_locked(seq, || c.swap(bits, Ordering::SeqCst))
                });
                wide_ptr_to_global(u128_to_wide::<T>(old))
            }
        }
    }

    /// Compare-and-swap: install `new` iff the cell currently holds
    /// `expected`. On failure returns the actual value as `Err`.
    pub fn compare_exchange(
        &self,
        expected: GlobalPtr<T>,
        new: GlobalPtr<T>,
    ) -> Result<GlobalPtr<T>, GlobalPtr<T>> {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::CAS, 0);
        match &self.repr {
            Repr::Compressed(c) => {
                let (e, n) = (expected.into_bits(), new.into_bits());
                self.route64(c, move |c| {
                    c.compare_exchange(e, n, Ordering::SeqCst, Ordering::SeqCst)
                })
                .map(GlobalPtr::from_bits)
                .map_err(GlobalPtr::from_bits)
            }
            Repr::Wide { cell, seq } => {
                let (e, n) = (wide_to_u128(expected.widen()), wide_to_u128(new.widen()));
                self.route128(cell, move |c| {
                    seqlock::write_locked(seq, || {
                        c.compare_exchange(e, n, Ordering::SeqCst, Ordering::SeqCst)
                    })
                })
                .map(|b| wide_ptr_to_global(u128_to_wide::<T>(b)))
                .map_err(|b| wide_ptr_to_global(u128_to_wide::<T>(b)))
            }
        }
    }

    /// Convenience: boolean compare-and-swap, Chapel style.
    pub fn compare_and_swap(&self, expected: GlobalPtr<T>, new: GlobalPtr<T>) -> bool {
        self.compare_exchange(expected, new).is_ok()
    }

    /// Read without runtime context, communication charging, or
    /// statistics. For teardown paths (`Drop`) that may run outside any
    /// locale context; callers must ensure no concurrent mutation.
    pub fn read_untracked(&self) -> GlobalPtr<T> {
        match &self.repr {
            Repr::Compressed(c) => GlobalPtr::from_bits(c.load(Ordering::SeqCst)),
            Repr::Wide { cell, .. } => {
                wide_ptr_to_global(u128_to_wide::<T>(cell.load(Ordering::SeqCst)))
            }
        }
    }
}

/// Convert a wide pointer back to the `GlobalPtr` the public API speaks.
/// In wide mode the locale id still fits 16 bits inside the simulator, so
/// this cannot fail here; a real > 2^16-locale system would surface
/// `WideGlobalPtr` directly instead.
fn wide_ptr_to_global<T>(w: WideGlobalPtr<T>) -> GlobalPtr<T> {
    w.compress()
}

impl<T> std::fmt::Debug for AtomicObject<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match self.repr {
            Repr::Compressed(_) => "compressed",
            Repr::Wide { .. } => "wide",
        };
        f.debug_struct("AtomicObject")
            .field("owner", &self.owner)
            .field("mode", &mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{alloc_local, alloc_on, free, Runtime, RuntimeConfig};

    fn with_both_modes(n: usize, f: impl Fn(&Runtime)) {
        let rt = Runtime::new(RuntimeConfig::zero_latency(n));
        f(&rt);
        let rt = Runtime::new(RuntimeConfig::zero_latency(n).with_wide_pointers());
        f(&rt);
    }

    #[test]
    fn read_write_exchange_roundtrip_both_modes() {
        with_both_modes(2, |rt| {
            rt.run(|| {
                let a = alloc_local(rt, 1u64);
                let b = alloc_on(rt, 1, 2u64);
                let cell = AtomicObject::new(a);
                assert_eq!(cell.read(), a);
                cell.write(b);
                assert_eq!(cell.read(), b);
                assert_eq!(cell.exchange(a), b);
                assert_eq!(cell.read(), a);
                unsafe {
                    free(rt, a);
                    free(rt, b);
                }
            });
        });
    }

    #[test]
    fn compare_exchange_success_and_failure_both_modes() {
        with_both_modes(2, |rt| {
            rt.run(|| {
                let a = alloc_local(rt, 1u32);
                let b = alloc_on(rt, 1, 2u32);
                let cell = AtomicObject::new(a);
                assert_eq!(cell.compare_exchange(a, b), Ok(a));
                assert_eq!(cell.compare_exchange(a, b), Err(b));
                assert!(cell.compare_and_swap(b, a));
                unsafe {
                    free(rt, a);
                    free(rt, b);
                }
            });
        });
    }

    #[test]
    fn null_cell_reads_null() {
        let rt = Runtime::cluster(1);
        rt.run(|| {
            let cell = AtomicObject::<u64>::null();
            assert!(cell.read().is_null());
        });
    }

    #[test]
    fn pointer_identity_preserves_locale_across_cell() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let p = alloc_on(&rt, 3, 99u64);
            let cell = AtomicObject::null();
            cell.write(p);
            let q = cell.read();
            assert_eq!(q.locale(), 3);
            assert_eq!(unsafe { *q.deref() }, 99);
            unsafe { free(&rt, p) };
        });
    }

    #[test]
    fn compressed_remote_ops_are_rdma_with_network_atomics() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let cell = AtomicObject::<u64>::new_on(1, GlobalPtr::null());
            rt.reset_metrics();
            let _ = cell.read();
            cell.write(GlobalPtr::null());
            let s = rt.total_comm();
            assert_eq!(s.rdma_atomics, 2, "compressed remote ops ride the NIC");
            assert_eq!(s.am_sent, 0);
        });
    }

    #[test]
    fn compressed_remote_ops_fall_back_to_am_without_network_atomics() {
        let rt = Runtime::new(RuntimeConfig::cluster(2).without_network_atomics());
        rt.run(|| {
            let cell = AtomicObject::<u64>::new_on(1, GlobalPtr::null());
            rt.reset_metrics();
            let _ = cell.read();
            let s = rt.total_comm();
            assert_eq!(s.rdma_atomics, 0);
            assert_eq!(s.am_sent, 1);
        });
    }

    #[test]
    fn wide_mode_remote_ops_always_use_am() {
        // Even WITH network atomics: RDMA atomics cannot cover 128 bits,
        // which is the paper's stated cost of the wide fallback.
        let rt = Runtime::new(RuntimeConfig::cluster(2).with_wide_pointers());
        rt.run(|| {
            let cell = AtomicObject::<u64>::new_on(1, GlobalPtr::null());
            rt.reset_metrics();
            let _ = cell.read();
            cell.write(GlobalPtr::null());
            let s = rt.total_comm();
            assert_eq!(s.rdma_atomics, 0, "wide ops never ride the NIC");
            assert_eq!(s.am_sent, 2);
            assert_eq!(s.cpu_dcas, 2, "the remote handler performs a DCAS");
        });
    }

    #[test]
    fn wide_mode_local_ops_are_dcas() {
        let rt = Runtime::new(RuntimeConfig::cluster(1).with_wide_pointers());
        rt.run(|| {
            let cell = AtomicObject::<u64>::null();
            rt.reset_metrics();
            let _ = cell.read();
            let s = rt.total_comm();
            assert_eq!(s.cpu_dcas, 1);
            assert_eq!(s.network_events(), 0);
        });
    }

    #[test]
    fn wide_mode_new_on_is_accepted() {
        // Twin of aba.rs's `wide_mode_rejects_aba_cells_via_new_on`: the
        // plain AtomicObject is exactly what wide mode exists for, so the
        // same constructor must succeed here and behave.
        let rt = Runtime::new(RuntimeConfig::cluster(2).with_wide_pointers());
        rt.run(|| {
            let cell = AtomicObject::<u64>::new_on(1, GlobalPtr::null());
            assert_eq!(cell.owner(), 1);
            assert!(cell.read().is_null());
        });
    }

    #[test]
    fn wide_mode_fast_read_skips_the_dcas_handler() {
        let rt = Runtime::new(
            RuntimeConfig::cluster(2)
                .with_wide_pointers()
                .with_vread_fastpath(true),
        );
        rt.run(|| {
            let cell = AtomicObject::<u64>::new_on(1, GlobalPtr::null());
            rt.reset_metrics();
            let _ = cell.read();
            let s = rt.total_comm();
            assert_eq!(s.vread_fast, 1);
            assert_eq!(s.am_sent, 0, "read migrated off the handler path");
            assert_eq!(s.cpu_dcas, 0);
            assert_eq!(s.gets, 1);
            // Writes keep the DCAS as the linearization point.
            cell.write(GlobalPtr::null());
            let s = rt.total_comm();
            assert_eq!(s.am_sent, 1);
            assert_eq!(s.cpu_dcas, 1);
        });
    }

    #[test]
    fn wide_mode_fast_read_matches_dcas_read_values() {
        let mk = |fast: bool| {
            RuntimeConfig::zero_latency(2)
                .with_wide_pointers()
                .with_vread_fastpath(fast)
        };
        for fast in [false, true] {
            let rt = Runtime::new(mk(fast));
            rt.run(|| {
                let p = alloc_on(&rt, 1, 42u64);
                let cell = AtomicObject::<u64>::new_on(1, GlobalPtr::null());
                cell.write(p);
                let got = cell.read();
                assert_eq!(got, p, "fast={fast}");
                assert_eq!(got.locale(), 1);
                unsafe { free(&rt, p) };
            });
        }
    }

    #[test]
    fn concurrent_cas_admits_exactly_one_winner_per_round() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            let slots: Vec<_> = (0..8).map(|i| alloc_local(&rt, i as u64)).collect();
            let cell = AtomicObject::new(GlobalPtr::null());
            let wins = std::sync::atomic::AtomicUsize::new(0);
            rt.coforall_tasks(8, |t| {
                if cell.compare_and_swap(GlobalPtr::null(), slots[t]) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
            assert!(!cell.read().is_null());
            for p in slots {
                unsafe { free(&rt, p) };
            }
        });
    }
}
