//! ABA protection: the 128-bit `{pointer, counter}` wrapper.
//!
//! §II-A of the paper: a compare-and-swap can succeed *incorrectly* when an
//! address is freed and recycled between a thread's read and its CAS (the
//! ABA problem). The cure implemented here is the one the paper ships — a
//! 64-bit counter held adjacent to the 64-bit (compressed) pointer,
//! updated together with it by a double-word compare-and-swap
//! (`CMPXCHG16B` / LL-SC). Every successful mutating operation bumps the
//! counter, so a stale snapshot can never win a CAS even if the address
//! matches.
//!
//! [`AtomicAbaObject`] offers both plain operations (pointer-only
//! semantics) and `*_aba` variants that compare the counter too — the
//! paper allows mixing them freely. [`Aba`] is the snapshot type returned
//! by `read_aba`; like the Chapel version (which uses the `forwarding`
//! decorator) it behaves as a smart reference to the object it wraps.
//!
//! Because RDMA atomics top out at 64 bits, remote ABA operations execute
//! as active messages ("remote execution rather than RDMA"); the plain
//! 64-bit `read` still rides the NIC. ABA protection requires the
//! compressed pointer representation — with a 128-bit wide pointer there
//! is no room left for a counter — matching the paper, whose ABA wrapper
//! is defined over compressed pointers.

use std::sync::atomic::{AtomicU64, Ordering};

use pgas_sim::engine::{self, AtomicPath};
use pgas_sim::telemetry::{opkind, OpClass, OpSpan};
use pgas_sim::{ctx, GlobalPtr, LocaleId, PointerMode};
use portable_atomic::AtomicU128;

use crate::seqlock;

/// A snapshot of an [`AtomicAbaObject`]: the object reference plus the
/// counter value observed with it.
pub struct Aba<T> {
    ptr: GlobalPtr<T>,
    count: u64,
}

impl<T> Aba<T> {
    /// The object reference (Chapel: `getObject()`).
    #[inline]
    pub fn get_object(&self) -> GlobalPtr<T> {
        self.ptr
    }

    /// The ABA counter observed alongside the reference.
    #[inline]
    pub fn get_aba_count(&self) -> u64 {
        self.count
    }

    /// True when the snapshot holds no object.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }
}

impl<T> Clone for Aba<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Aba<T> {}

impl<T> PartialEq for Aba<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ptr == other.ptr && self.count == other.count
    }
}
impl<T> Eq for Aba<T> {}

impl<T> std::fmt::Debug for Aba<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aba")
            .field("ptr", &self.ptr)
            .field("count", &self.count)
            .finish()
    }
}

#[inline]
fn pack<T>(ptr: GlobalPtr<T>, count: u64) -> u128 {
    ((count as u128) << 64) | ptr.into_bits() as u128
}

#[inline]
fn unpack<T>(bits: u128) -> Aba<T> {
    Aba {
        ptr: GlobalPtr::from_bits(bits as u64),
        count: (bits >> 64) as u64,
    }
}

/// An atomic object reference with ABA protection (a 128-bit
/// `{compressed pointer, counter}` pair).
pub struct AtomicAbaObject<T> {
    cell: AtomicU128,
    /// Seqlock word for the versioned fast-read path (see
    /// [`crate::seqlock`]): odd while a writer's DCAS is in flight, bumped
    /// to even on completion. Maintained unconditionally (the stores are
    /// free), consulted only when
    /// [`pgas_sim::RuntimeConfig::vread_fastpath`] is enabled.
    seq: AtomicU64,
    owner: LocaleId,
    _marker: std::marker::PhantomData<*mut T>,
}

// SAFETY: as for `AtomicObject` — the cell stores plain words.
unsafe impl<T> Send for AtomicAbaObject<T> {}
unsafe impl<T> Sync for AtomicAbaObject<T> {}

impl<T> AtomicAbaObject<T> {
    /// A null cell owned by the current locale.
    pub fn null() -> Self {
        Self::new(GlobalPtr::null())
    }

    /// A cell holding `ptr`, owned by the current locale.
    pub fn new(ptr: GlobalPtr<T>) -> Self {
        Self::new_on(pgas_sim::here(), ptr)
    }

    /// A cell holding `ptr` whose storage belongs to `owner`.
    ///
    /// # Panics
    /// If the runtime uses wide pointers — ABA protection requires the
    /// compressed representation (there is no room for a counter next to a
    /// 128-bit pointer).
    pub fn new_on(owner: LocaleId, ptr: GlobalPtr<T>) -> Self {
        ctx::with_core(|core, _| {
            assert!(
                core.config.pointer_mode == PointerMode::Compressed,
                "ABA protection requires compressed pointers; wide mode \
                 (RuntimeConfig::with_wide_pointers / PointerMode::Wide) \
                 leaves no room for the adjacent counter — configure \
                 PointerMode::Compressed to use ABA cells"
            );
        });
        AtomicAbaObject {
            cell: AtomicU128::new(pack(ptr, 0)),
            seq: AtomicU64::new(0),
            owner,
            _marker: std::marker::PhantomData,
        }
    }

    /// The locale owning this cell's storage.
    pub fn owner(&self) -> LocaleId {
        self.owner
    }

    /// Route a 128-bit operation (local DCAS or active message). The
    /// closure receives the cell together with its seqlock word so writers
    /// can bump the sequence on the owner side, around the DCAS.
    fn route<R: Send>(&self, op: impl FnOnce(&AtomicU128, &AtomicU64) -> R + Send) -> R {
        ctx::with_core(|core, _| match engine::remote_dcas_u128(core, self.owner) {
            AtomicPath::CpuLocal => op(&self.cell, &self.seq),
            AtomicPath::ActiveMessage => core.on_combining(self.owner, move || {
                engine::handler_dcas_u128(core);
                op(&self.cell, &self.seq)
            }),
            AtomicPath::Nic => unreachable!("128-bit atomics never take the NIC path"),
        })
    }

    // ---- ABA variants -----------------------------------------------

    /// Atomically read the `{pointer, counter}` snapshot. A pure read —
    /// idempotent under fault injection, so a lost read request may be
    /// retried (see [`pgas_sim::faults`]).
    ///
    /// With [`pgas_sim::RuntimeConfig::vread_fastpath`] enabled this is an
    /// optimistic versioned read (sequence-validated two-load window on
    /// the one-sided GET cost model, see [`crate::seqlock`]); a torn
    /// window beyond the retry budget falls back to the DCAS path below.
    pub fn read_aba(&self) -> Aba<T> {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::READ, 0);
        pgas_sim::faults::with_class(pgas_sim::faults::OpClass::Idempotent, || {
            let fast = ctx::with_core(|core, _| {
                seqlock::fast_read(core, self.owner, &self.seq, &self.cell)
            });
            if let Some(bits) = fast {
                return unpack(bits);
            }
            unpack(self.route(|c, _| c.load(Ordering::SeqCst)))
        })
    }

    /// Install `new` iff both the pointer *and* the counter still match
    /// `expected` — the ABA-immune CAS. The counter is bumped on success.
    pub fn compare_and_swap_aba(&self, expected: Aba<T>, new: GlobalPtr<T>) -> bool {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::CAS, 0);
        let e = pack(expected.ptr, expected.count);
        let n = pack(new, expected.count.wrapping_add(1));
        self.route(move |c, s| {
            seqlock::write_locked(s, || {
                c.compare_exchange(e, n, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            })
        })
    }

    /// Atomically swap in `new`, bumping the counter; returns the previous
    /// snapshot.
    pub fn exchange_aba(&self, new: GlobalPtr<T>) -> Aba<T> {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::EXCHANGE, 0);
        let bits = new.into_bits();
        unpack(self.route(move |c, s| {
            seqlock::write_locked(s, || {
                let mut cur = c.load(Ordering::SeqCst);
                loop {
                    let next =
                        ((((cur >> 64) as u64).wrapping_add(1) as u128) << 64) | bits as u128;
                    match c.compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                        Ok(old) => return old,
                        Err(now) => cur = now,
                    }
                }
            })
        }))
    }

    /// Atomically store `new`, bumping the counter.
    pub fn write_aba(&self, new: GlobalPtr<T>) {
        let _ = self.exchange_aba(new);
    }

    // ---- plain (pointer-only) variants ------------------------------

    /// Read just the object reference. This is a 64-bit operation on the
    /// low word, so — unlike every other operation here — it can ride the
    /// NIC as an RDMA atomic.
    pub fn read(&self) -> GlobalPtr<T> {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::READ, 0);
        pgas_sim::faults::with_class(pgas_sim::faults::OpClass::Idempotent, || {
            ctx::with_core(
                |core, _| match engine::remote_atomic_u64(core, self.owner) {
                    AtomicPath::Nic | AtomicPath::CpuLocal => {
                        // SAFETY of the narrow read: the low half of the
                        // 128-bit cell is itself 8-byte aligned, and a racing
                        // DCAS replaces the pair atomically, so a 64-bit load
                        // observes a pointer word that was current at some
                        // point — the same guarantee an RDMA GET of the low
                        // word gives on real hardware. We express it as a full
                        // 128-bit load and truncate, which is what
                        // portable-atomic can do losslessly on every target.
                        GlobalPtr::from_bits(self.cell.load(Ordering::SeqCst) as u64)
                    }
                    AtomicPath::ActiveMessage => {
                        let bits = core.on_combining(self.owner, || {
                            engine::handler_atomic_u64(core);
                            self.cell.load(Ordering::SeqCst) as u64
                        });
                        GlobalPtr::from_bits(bits)
                    }
                },
            )
        })
    }

    /// Store an object reference without ABA semantics. Still bumps the
    /// counter so that *other* tasks' ABA snapshots are invalidated — a
    /// plain write changes the logical value, after all.
    pub fn write(&self, new: GlobalPtr<T>) {
        self.write_aba(new);
    }

    /// Swap the object reference, returning only the previous pointer.
    pub fn exchange(&self, new: GlobalPtr<T>) -> GlobalPtr<T> {
        self.exchange_aba(new).get_object()
    }

    /// Read the pointer word without runtime context, communication
    /// charging, or statistics. Intended for teardown paths (`Drop`) that
    /// may run outside any locale context; callers must be sure no other
    /// task is mutating the cell.
    pub fn read_untracked(&self) -> GlobalPtr<T> {
        GlobalPtr::from_bits(self.cell.load(Ordering::SeqCst) as u64)
    }

    /// Pointer-only compare-and-swap: succeeds when the *pointer* matches,
    /// regardless of the counter (the ABA-susceptible operation — provided
    /// because the paper lets advanced users mix variants). The counter
    /// still advances on success.
    pub fn compare_and_swap(&self, expected: GlobalPtr<T>, new: GlobalPtr<T>) -> bool {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::CAS, 0);
        let (e, n) = (expected.into_bits(), new.into_bits());
        self.route(move |c, s| {
            seqlock::write_locked(s, || {
                let mut cur = c.load(Ordering::SeqCst);
                loop {
                    if cur as u64 != e {
                        return false;
                    }
                    let next = ((((cur >> 64) as u64).wrapping_add(1) as u128) << 64) | n as u128;
                    match c.compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                        Ok(_) => return true,
                        Err(now) => cur = now,
                    }
                }
            })
        })
    }
}

impl<T> std::fmt::Debug for AtomicAbaObject<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicAbaObject")
            .field("owner", &self.owner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{alloc_local, free, Runtime, RuntimeConfig};

    #[test]
    fn read_aba_starts_at_count_zero() {
        let rt = Runtime::cluster(1);
        rt.run(|| {
            let cell = AtomicAbaObject::<u64>::null();
            let snap = cell.read_aba();
            assert!(snap.is_null());
            assert_eq!(snap.get_aba_count(), 0);
        });
    }

    #[test]
    fn successful_mutations_bump_counter() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let a = alloc_local(&rt, 1u64);
            let b = alloc_local(&rt, 2u64);
            let cell = AtomicAbaObject::new(a);
            assert_eq!(cell.read_aba().get_aba_count(), 0);
            cell.write_aba(b); // 1
            let s = cell.read_aba();
            assert_eq!(s.get_aba_count(), 1);
            assert!(cell.compare_and_swap_aba(s, a)); // 2
            let _ = cell.exchange_aba(b); // 3
            assert!(cell.compare_and_swap(b, a)); // 4
            assert_eq!(cell.read_aba().get_aba_count(), 4);
            unsafe {
                free(&rt, a);
                free(&rt, b);
            }
        });
    }

    #[test]
    fn stale_snapshot_fails_even_when_pointer_matches() {
        // The ABA scenario from the paper: pointer returns to its old
        // value, but the counter has moved on.
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let a = alloc_local(&rt, 1u64);
            let b = alloc_local(&rt, 2u64);
            let cell = AtomicAbaObject::new(a);
            let stale = cell.read_aba(); // {a, 0}
            cell.write_aba(b); // {b, 1}
            cell.write_aba(a); // {a, 2}: pointer is A again!
            assert_eq!(cell.read().into_bits(), a.into_bits());
            assert!(
                !cell.compare_and_swap_aba(stale, b),
                "ABA CAS must fail on a stale counter"
            );
            assert!(
                cell.compare_and_swap(a, b),
                "the unprotected CAS is fooled — that is the ABA problem"
            );
            unsafe {
                free(&rt, a);
                free(&rt, b);
            }
        });
    }

    #[test]
    fn exchange_aba_returns_previous_snapshot() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let a = alloc_local(&rt, 7u64);
            let cell = AtomicAbaObject::<u64>::null();
            let prev = cell.exchange_aba(a);
            assert!(prev.is_null());
            assert_eq!(prev.get_aba_count(), 0);
            let now = cell.read_aba();
            assert_eq!(now.get_object(), a);
            assert_eq!(now.get_aba_count(), 1);
            unsafe { free(&rt, a) };
        });
    }

    #[test]
    fn remote_aba_ops_use_active_messages_even_with_network_atomics() {
        let rt = Runtime::cluster(2); // network atomics ON
        rt.run(|| {
            let cell = AtomicAbaObject::<u64>::new_on(1, GlobalPtr::null());
            rt.reset_metrics();
            let s = cell.read_aba();
            let _ = cell.compare_and_swap_aba(s, GlobalPtr::null());
            let stats = rt.total_comm();
            assert_eq!(stats.am_sent, 2, "128-bit ops go remote-execution");
            assert_eq!(stats.rdma_atomics, 0);
        });
    }

    #[test]
    fn plain_remote_read_rides_the_nic() {
        let rt = Runtime::cluster(2); // network atomics ON
        rt.run(|| {
            let cell = AtomicAbaObject::<u64>::new_on(1, GlobalPtr::null());
            rt.reset_metrics();
            let _ = cell.read();
            let stats = rt.total_comm();
            assert_eq!(stats.rdma_atomics, 1, "64-bit read is RDMA-capable");
            assert_eq!(stats.am_sent, 0);
        });
    }

    #[test]
    #[should_panic(expected = "compressed pointers")]
    fn wide_mode_rejects_aba_cells() {
        let rt = Runtime::new(RuntimeConfig::cluster(1).with_wide_pointers());
        rt.run(|| {
            let _ = AtomicAbaObject::<u64>::null();
        });
    }

    #[test]
    #[should_panic(expected = "compressed pointers")]
    fn wide_mode_rejects_aba_cells_via_new_on() {
        // Twin of `wide_mode_rejects_aba_cells` exercising the explicit
        // `new_on` constructor (the path structures actually take), with a
        // genuinely remote owner.
        let rt = Runtime::new(RuntimeConfig::cluster(2).with_wide_pointers());
        rt.run(|| {
            let _ = AtomicAbaObject::<u64>::new_on(1, GlobalPtr::null());
        });
    }

    #[test]
    fn remote_fast_read_skips_the_dcas_handler() {
        let rt = Runtime::new(RuntimeConfig::cluster(2).with_vread_fastpath(true));
        rt.run(|| {
            let cell = AtomicAbaObject::<u64>::new_on(1, GlobalPtr::null());
            rt.reset_metrics();
            let s = cell.read_aba();
            assert!(s.is_null());
            let stats = rt.total_comm();
            assert_eq!(stats.vread_fast, 1, "validated on the first attempt");
            assert_eq!(stats.vread_fallbacks, 0);
            assert_eq!(stats.am_sent, 0, "no handler round trip");
            assert_eq!(stats.cpu_dcas, 0, "no DCAS anywhere");
            assert_eq!(stats.gets, 1, "one cache-line GET per attempt");
        });
    }

    #[test]
    fn local_fast_read_is_not_communication() {
        let rt = Runtime::new(RuntimeConfig::cluster(1).with_vread_fastpath(true));
        rt.run(|| {
            let cell = AtomicAbaObject::<u64>::null();
            rt.reset_metrics();
            let _ = cell.read_aba();
            let stats = rt.total_comm();
            assert_eq!(stats.vread_fast, 1);
            assert_eq!(stats.cpu_dcas, 0);
            assert_eq!(stats.network_events(), 0);
        });
    }

    #[test]
    fn wedged_sequence_falls_back_to_dcas() {
        let rt = Runtime::new(
            RuntimeConfig::cluster(2)
                .with_vread_fastpath(true)
                .with_vread_max_tries(3),
        );
        rt.run(|| {
            let cell = AtomicAbaObject::<u64>::new_on(1, GlobalPtr::null());
            // Wedge the sequence odd: a writer forever in flight, so every
            // optimistic attempt sees a torn window.
            cell.seq.fetch_add(1, Ordering::SeqCst);
            rt.reset_metrics();
            let s = cell.read_aba();
            assert!(s.is_null(), "fallback still returns the right value");
            let stats = rt.total_comm();
            assert_eq!(stats.vread_fast, 0);
            assert_eq!(stats.vread_retries, 3, "one per budgeted attempt");
            assert_eq!(stats.vread_fallbacks, 1);
            assert_eq!(stats.am_sent, 1, "escalated to the DCAS active message");
        });
    }

    #[test]
    fn fast_path_off_keeps_counters_bit_identical() {
        // The same read with the fast path disabled must count exactly as
        // the pre-seqlock build: one AM, one handler DCAS, no vread traffic.
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let cell = AtomicAbaObject::<u64>::new_on(1, GlobalPtr::null());
            rt.reset_metrics();
            let _ = cell.read_aba();
            let stats = rt.total_comm();
            assert_eq!(stats.am_sent, 1);
            assert_eq!(stats.cpu_dcas, 1);
            assert_eq!(
                stats.vread_fast + stats.vread_retries + stats.vread_fallbacks,
                0
            );
            assert_eq!(stats.gets, 0);
        });
    }

    #[test]
    fn concurrent_aba_cas_forms_a_linear_history() {
        // Many tasks CAS the same cell; counter must end exactly at the
        // number of successful operations, and every success must have
        // seen the then-current snapshot.
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let ptrs: Vec<_> = (0..4).map(|i| alloc_local(&rt, i as u64)).collect();
            let cell = AtomicAbaObject::new(ptrs[0]);
            let successes = std::sync::atomic::AtomicU64::new(0);
            rt.coforall_tasks(4, |t| {
                for _ in 0..100 {
                    let snap = cell.read_aba();
                    if cell.compare_and_swap_aba(snap, ptrs[t]) {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            let final_count = cell.read_aba().get_aba_count();
            assert_eq!(final_count, successes.load(Ordering::Relaxed));
            for p in ptrs {
                unsafe { free(&rt, p) };
            }
        });
    }
}
