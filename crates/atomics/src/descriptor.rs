//! Descriptor-table indirection: RDMA-capable object atomics beyond 2^16
//! locales.
//!
//! The paper's conclusion sketches this as future work: *"it is planned to
//! allow more than 2^16 locales while still allowing RDMA atomic
//! operations, by introducing another level of indirection and utilizing
//! a descriptor index into a separate table of objects in place of the
//! pointer itself."* This module implements that design:
//!
//! * every locale owns a **descriptor shard**: a fixed table of slots,
//!   each holding a full 128-bit wide pointer;
//! * an atomic cell stores a 64-bit **descriptor**: `{locale:16, gen:16,
//!   slot:32}`. Being a single word, it supports genuine RDMA atomics
//!   regardless of how wide the real pointer is;
//! * dereferencing costs one (possibly remote) GET of the slot;
//! * slots are recycled through a per-shard lock-free free list, and the
//!   16-bit **generation** stamped into the descriptor detects stale
//!   descriptors after recycling (the indirection-level ABA problem).
//!
//! The trade: every update allocates/retires a descriptor and every read
//! through the cell adds one GET, in exchange for keeping the hot CAS on
//! the NIC fast path at any machine scale.
//!
//! Relation to the versioned fast-read path ([`crate::seqlock`]): both
//! attack the same cost — wide reads paying the DCAS active-message round
//! trip — from opposite ends. The seqlock keeps the 128-bit cell and
//! validates an optimistic two-load window against a sequence word;
//! descriptors shrink the cell itself to one RDMA-able word. A descriptor
//! read therefore needs no sequence validation of its own: the cell load
//! is a single 64-bit atomic (it cannot tear) and the generation stamp
//! already rejects any slot recycled between the cell load and the slot
//! GET — the generation check *is* this path's validation, so the
//! `vread_*` counters stay untouched here by design (CI's
//! `validate_results` asserts they are zero outside the A10 rows).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use pgas_sim::engine::{self, AtomicPath};
use pgas_sim::telemetry::{opkind, OpClass, OpSpan};
use pgas_sim::{ctx, LocaleId, Privatized, WideGlobalPtr};

const SLOT_BITS: u32 = 32;
const GEN_BITS: u32 = 16;
const GEN_MASK: u64 = (1 << GEN_BITS) - 1;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
/// Descriptor value reserved for "null pointer".
const NULL_DESC: u64 = u64::MAX;

#[inline]
fn pack_desc(locale: LocaleId, gen: u16, slot: u32) -> u64 {
    ((locale as u64) << (GEN_BITS + SLOT_BITS)) | ((gen as u64) << SLOT_BITS) | slot as u64
}

#[inline]
fn unpack_desc(d: u64) -> (LocaleId, u16, u32) {
    (
        (d >> (GEN_BITS + SLOT_BITS)) as LocaleId,
        ((d >> SLOT_BITS) & GEN_MASK) as u16,
        (d & SLOT_MASK) as u32,
    )
}

/// One table slot: the wide pointer's two words, the current generation,
/// and the free-list link.
struct Slot {
    locale_word: AtomicU64,
    addr_word: AtomicU64,
    gen: AtomicU32,
    next_free: AtomicU32,
}

const NO_SLOT: u32 = u32::MAX;

/// A locale's shard of the descriptor table.
struct Shard {
    slots: Box<[Slot]>,
    /// Lock-free free list: `{aba_count:32, head_slot:32}` packed in one
    /// word; `head_slot == NO_SLOT` means empty.
    free_head: AtomicU64,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        let slots: Box<[Slot]> = (0..capacity)
            .map(|i| Slot {
                locale_word: AtomicU64::new(0),
                addr_word: AtomicU64::new(0),
                gen: AtomicU32::new(0),
                next_free: AtomicU32::new(if i + 1 < capacity {
                    (i + 1) as u32
                } else {
                    NO_SLOT
                }),
            })
            .collect();
        Shard {
            slots,
            free_head: AtomicU64::new(if capacity == 0 { NO_SLOT as u64 } else { 0 }),
        }
    }

    fn pop_free(&self) -> Option<u32> {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            let slot = (head & SLOT_MASK) as u32;
            if slot == NO_SLOT {
                return None;
            }
            let count = head >> SLOT_BITS;
            let next = self.slots[slot as usize].next_free.load(Ordering::Acquire);
            let new_head = ((count + 1) << SLOT_BITS) | next as u64;
            match self.free_head.compare_exchange_weak(
                head,
                new_head,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(slot),
                Err(h) => head = h,
            }
        }
    }

    fn push_free(&self, slot: u32) {
        let mut head = self.free_head.load(Ordering::Acquire);
        loop {
            self.slots[slot as usize]
                .next_free
                .store((head & SLOT_MASK) as u32, Ordering::Release);
            let count = head >> SLOT_BITS;
            let new_head = ((count + 1) << SLOT_BITS) | slot as u64;
            match self.free_head.compare_exchange_weak(
                head,
                new_head,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }
}

/// The distributed descriptor table: one shard per locale.
pub struct DescriptorTable {
    shards: Privatized<Shard>,
}

impl DescriptorTable {
    /// Build a table with `slots_per_locale` descriptors available on each
    /// locale.
    pub fn new(slots_per_locale: usize) -> Arc<DescriptorTable> {
        let rt = ctx::current_runtime();
        Arc::new(DescriptorTable {
            shards: Privatized::new(&rt, |_| Shard::new(slots_per_locale)),
        })
    }

    /// Allocate a descriptor on the *current* locale pointing at `ptr`.
    /// Returns the packed descriptor word.
    ///
    /// # Panics
    /// When the local shard is exhausted (fixed capacity by design — a
    /// descriptor leak is a bug in the caller's retirement protocol).
    fn allocate<T>(&self, ptr: WideGlobalPtr<T>) -> u64 {
        let here = pgas_sim::here();
        let shard = self.shards.get();
        let slot = shard
            .pop_free()
            .expect("descriptor shard exhausted; retire descriptors or grow the table");
        let s = &shard.slots[slot as usize];
        let (locale_word, addr_word) = ptr.into_words();
        s.locale_word.store(locale_word, Ordering::Relaxed);
        s.addr_word.store(addr_word, Ordering::Release);
        let gen = s.gen.load(Ordering::Relaxed) as u16;
        pack_desc(here, gen, slot)
    }

    /// Retire a descriptor, recycling its slot and bumping the generation
    /// so stale descriptors become detectable. Must be called on any
    /// locale; routes to the owning shard.
    fn retire(&self, core: &pgas_sim::RuntimeCore, desc: u64) {
        if desc == NULL_DESC {
            return;
        }
        let (owner, gen, slot) = unpack_desc(desc);
        let do_retire = || {
            let shard = self.shards.get_for(owner);
            let s = &shard.slots[slot as usize];
            debug_assert_eq!(s.gen.load(Ordering::Relaxed) as u16, gen, "double retire");
            s.gen.fetch_add(1, Ordering::AcqRel);
            shard.push_free(slot);
        };
        if owner == pgas_sim::here() {
            do_retire();
        } else {
            core.on(owner, do_retire);
        }
    }

    /// Resolve a descriptor to the wide pointer it names, charging one GET
    /// when the shard is remote. Returns `None` when the descriptor is
    /// stale (its slot was recycled).
    fn resolve<T>(&self, core: &pgas_sim::RuntimeCore, desc: u64) -> Option<WideGlobalPtr<T>> {
        if desc == NULL_DESC {
            return Some(WideGlobalPtr::null());
        }
        let (owner, gen, slot) = unpack_desc(desc);
        engine::get(core, owner, 16);
        let shard = self.shards.get_for(owner);
        let s = &shard.slots[slot as usize];
        if s.gen.load(Ordering::Acquire) as u16 != gen {
            return None; // stale descriptor
        }
        let addr = s.addr_word.load(Ordering::Acquire);
        let locale = s.locale_word.load(Ordering::Relaxed);
        Some(WideGlobalPtr::from_words(locale, addr))
    }
}

/// A snapshot of a [`DescriptorAtomicObject`]: the descriptor observed and
/// the pointer it resolved to at read time.
pub struct DescRef<T> {
    desc: u64,
    ptr: WideGlobalPtr<T>,
}

impl<T> DescRef<T> {
    /// The wide pointer this descriptor named when read.
    pub fn ptr(&self) -> WideGlobalPtr<T> {
        self.ptr
    }

    /// True when the snapshot names no object.
    pub fn is_null(&self) -> bool {
        self.desc == NULL_DESC
    }
}

impl<T> Clone for DescRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DescRef<T> {}

impl<T> std::fmt::Debug for DescRef<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DescRef")
            .field("desc", &format_args!("{:#x}", self.desc))
            .field("ptr", &self.ptr)
            .finish()
    }
}

/// An atomic object reference whose cell stores a 64-bit descriptor —
/// RDMA atomics at any locale count, wide pointers included.
pub struct DescriptorAtomicObject<T> {
    cell: AtomicU64,
    owner: LocaleId,
    table: Arc<DescriptorTable>,
    _marker: std::marker::PhantomData<*mut T>,
}

// SAFETY: cell is a word, table is internally synchronized.
unsafe impl<T> Send for DescriptorAtomicObject<T> {}
unsafe impl<T> Sync for DescriptorAtomicObject<T> {}

impl<T> DescriptorAtomicObject<T> {
    /// A null cell on the current locale, using `table` for indirection.
    pub fn null(table: Arc<DescriptorTable>) -> Self {
        DescriptorAtomicObject {
            cell: AtomicU64::new(NULL_DESC),
            owner: pgas_sim::here(),
            table,
            _marker: std::marker::PhantomData,
        }
    }

    /// A cell initialized to `ptr` (a descriptor is allocated for it on
    /// the current locale).
    pub fn new(table: Arc<DescriptorTable>, ptr: WideGlobalPtr<T>) -> Self {
        let cell = Self::null(table);
        let desc = if ptr.is_null() {
            NULL_DESC
        } else {
            cell.table.allocate(ptr)
        };
        cell.cell.store(desc, Ordering::Release);
        cell
    }

    fn route<R: Send>(&self, op: impl FnOnce(&AtomicU64) -> R + Send) -> R {
        ctx::with_core(
            |core, _| match engine::remote_atomic_u64(core, self.owner) {
                AtomicPath::Nic | AtomicPath::CpuLocal => op(&self.cell),
                AtomicPath::ActiveMessage => core.on_combining(self.owner, move || {
                    engine::handler_atomic_u64(core);
                    op(&self.cell)
                }),
            },
        )
    }

    /// Read the current reference: one 64-bit (RDMA-capable) atomic load
    /// of the descriptor plus one GET to resolve it. A read that observes
    /// a descriptor recycled mid-flight retries.
    pub fn read(&self) -> DescRef<T> {
        let span = OpSpan::start(OpClass::AtomicObjectOp, opkind::READ, 0);
        ctx::with_core(|core, _| loop {
            let desc = self.route(|c| c.load(Ordering::SeqCst));
            if let Some(ptr) = self.table.resolve::<T>(core, desc) {
                return DescRef { desc, ptr };
            }
            // Stale: the cell has necessarily moved on; re-read.
            span.retry();
        })
    }

    /// Install a new reference. Allocates a descriptor for `new`, swaps it
    /// in with a single 64-bit atomic, and retires the previous
    /// descriptor. Returns the previous pointer.
    pub fn exchange(&self, new: WideGlobalPtr<T>) -> WideGlobalPtr<T> {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::EXCHANGE, 0);
        ctx::with_core(|core, _| {
            let new_desc = if new.is_null() {
                NULL_DESC
            } else {
                self.table.allocate(new)
            };
            let old_desc = self.route(move |c| c.swap(new_desc, Ordering::SeqCst));
            let old_ptr = self
                .table
                .resolve::<T>(core, old_desc)
                .expect("the previous descriptor was live until this swap");
            self.table.retire(core, old_desc);
            old_ptr
        })
    }

    /// Store a new reference, discarding the old one.
    pub fn write(&self, new: WideGlobalPtr<T>) {
        let _ = self.exchange(new);
    }

    /// Compare-and-swap against a previously [`read`](Self::read)
    /// snapshot. The comparison is on the *descriptor*, so recycled slots
    /// cannot spoof it (generation bits differ). On success the old
    /// descriptor is retired.
    pub fn compare_and_swap(&self, expected: DescRef<T>, new: WideGlobalPtr<T>) -> bool {
        let _span = OpSpan::start(OpClass::AtomicObjectOp, opkind::CAS, 0);
        ctx::with_core(|core, _| {
            let new_desc = if new.is_null() {
                NULL_DESC
            } else {
                self.table.allocate(new)
            };
            let e = expected.desc;
            let ok = self.route(move |c| {
                c.compare_exchange(e, new_desc, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            });
            if ok {
                self.table.retire(core, expected.desc);
            } else if new_desc != NULL_DESC {
                // Roll back the speculative allocation.
                self.table.retire(core, new_desc);
            }
            ok
        })
    }
}

impl<T> Drop for DescriptorAtomicObject<T> {
    fn drop(&mut self) {
        // Retire the final descriptor if we still can (requires context;
        // shard teardown reclaims slots regardless).
        if pgas_sim::try_here().is_some() {
            let desc = *self.cell.get_mut();
            ctx::with_core(|core, _| self.table.retire(core, desc));
        }
    }
}

impl<T> std::fmt::Debug for DescriptorAtomicObject<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DescriptorAtomicObject")
            .field("owner", &self.owner)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};

    fn wide_of(v: &mut u64) -> WideGlobalPtr<u64> {
        WideGlobalPtr::new(pgas_sim::here() as u64, v as *mut u64 as usize)
    }

    #[test]
    fn desc_pack_unpack_roundtrip() {
        let d = pack_desc(513, 0xBEEF, 0xDEAD_CAFE);
        assert_eq!(unpack_desc(d), (513, 0xBEEF, 0xDEAD_CAFE));
    }

    #[test]
    fn read_write_exchange_roundtrip() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2).with_wide_pointers());
        rt.run(|| {
            let table = DescriptorTable::new(64);
            let mut a = 1u64;
            let mut b = 2u64;
            let (pa, pb) = (wide_of(&mut a), wide_of(&mut b));
            let cell = DescriptorAtomicObject::new(Arc::clone(&table), pa);
            assert_eq!(cell.read().ptr(), pa);
            let old = cell.exchange(pb);
            assert_eq!(old, pa);
            assert_eq!(cell.read().ptr(), pb);
            cell.write(WideGlobalPtr::null());
            assert!(cell.read().is_null());
        });
    }

    #[test]
    fn cas_succeeds_on_current_snapshot() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1).with_wide_pointers());
        rt.run(|| {
            let table = DescriptorTable::new(8);
            let mut a = 1u64;
            let mut b = 2u64;
            let (pa, pb) = (wide_of(&mut a), wide_of(&mut b));
            let cell = DescriptorAtomicObject::new(Arc::clone(&table), pa);
            let snap = cell.read();
            assert!(cell.compare_and_swap(snap, pb));
            assert!(!cell.compare_and_swap(snap, pa), "stale descriptor");
            assert_eq!(cell.read().ptr(), pb);
        });
    }

    #[test]
    fn recycled_slot_cannot_spoof_cas() {
        // The descriptor-level ABA: a retired slot is recycled for a new
        // pointer; a CAS against the old snapshot must fail because the
        // generation advanced.
        let rt = Runtime::new(RuntimeConfig::zero_latency(1).with_wide_pointers());
        rt.run(|| {
            // 2 slots: the live descriptor plus one for the speculative
            // CAS allocation — retired slots are recycled immediately.
            let table = DescriptorTable::new(2);
            let mut a = 1u64;
            let mut b = 2u64;
            let (pa, pb) = (wide_of(&mut a), wide_of(&mut b));
            let cell = DescriptorAtomicObject::new(Arc::clone(&table), pa);
            let stale = cell.read();
            cell.write(WideGlobalPtr::null()); // retires pa's slot
            cell.write(pb); // recycles the same slot, new generation
            assert!(
                !cell.compare_and_swap(stale, pa),
                "recycled descriptor must not match"
            );
            assert_eq!(cell.read().ptr(), pb);
        });
    }

    #[test]
    fn slots_recycle_indefinitely() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1).with_wide_pointers());
        rt.run(|| {
            let table = DescriptorTable::new(2);
            let mut a = 1u64;
            let pa = wide_of(&mut a);
            let cell = DescriptorAtomicObject::null(Arc::clone(&table));
            for _ in 0..100 {
                cell.write(pa);
                cell.write(WideGlobalPtr::null());
            }
        });
    }

    #[test]
    fn remote_cell_uses_rdma_even_in_wide_mode() {
        // The whole point: with >2^16-locale-style wide pointers, the
        // descriptor cell still takes the NIC path.
        let rt = Runtime::new(RuntimeConfig::cluster(2).with_wide_pointers());
        rt.run(|| {
            let table = DescriptorTable::new(8);
            let cell = rt.on(1, || {
                DescriptorAtomicObject::<u64>::null(Arc::clone(&table))
            });
            rt.reset_metrics();
            let _ = cell.read();
            let s = rt.total_comm();
            assert_eq!(s.rdma_atomics, 1, "descriptor load rides the NIC");
            assert_eq!(s.am_sent, 0);
        });
    }

    #[test]
    fn concurrent_cas_single_winner() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1).with_wide_pointers());
        rt.run(|| {
            let table = DescriptorTable::new(64);
            let mut vals = [0u64; 8];
            let cell = DescriptorAtomicObject::<u64>::null(Arc::clone(&table));
            let wins = std::sync::atomic::AtomicUsize::new(0);
            let ptrs: Vec<WideGlobalPtr<u64>> = vals
                .iter_mut()
                .map(|v| WideGlobalPtr::new(0, v as *mut u64 as usize))
                .collect();
            rt.coforall_tasks(8, |t| {
                let snap = cell.read();
                if snap.is_null() && cell.compare_and_swap(snap, ptrs[t]) {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(wins.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn shard_exhaustion_is_loud() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let table = DescriptorTable::new(1);
            let mut a = 1u64;
            let mut b = 2u64;
            let _c1 = DescriptorAtomicObject::new(Arc::clone(&table), wide_of(&mut a));
            let _c2 = DescriptorAtomicObject::new(Arc::clone(&table), wide_of(&mut b));
        });
    }
}
