//! Pointer-compression policy helpers.
//!
//! The mechanics of packing `(locale, address)` into a `u64` live on
//! [`pgas_sim::GlobalPtr`]; this module holds the *policy* described in
//! §II-A of the paper: compression is only sound while the locale id fits
//! in the 16 bits freed up by the 48-bit virtual-address assumption, and
//! installations beyond 2^16 locales must fall back to wide pointers and
//! double-word CAS.

use pgas_sim::{GlobalPtr, PointerMode, RuntimeCore, WideGlobalPtr};

/// Maximum number of locales representable under pointer compression.
pub const MAX_COMPRESSED_LOCALES: usize = 1 << 16;

/// Does a system of `num_locales` locales require the wide-pointer
/// fallback?
#[inline]
pub fn requires_wide(num_locales: usize) -> bool {
    num_locales > MAX_COMPRESSED_LOCALES
}

/// The pointer mode a runtime *should* use for its locale count: the
/// compressed fast path whenever it is sound.
#[inline]
pub fn preferred_mode(num_locales: usize) -> PointerMode {
    if requires_wide(num_locales) {
        PointerMode::Wide
    } else {
        PointerMode::Compressed
    }
}

/// The effective pointer mode of a runtime (its configured mode, which
/// [`pgas_sim::RuntimeConfig::validate`] has already checked for soundness).
#[inline]
pub fn effective_mode(core: &RuntimeCore) -> PointerMode {
    core.config.pointer_mode
}

/// Compress a wide pointer, or return it unchanged as `Err` when the
/// locale id exceeds 16 bits (the caller must stay on the wide path).
pub fn try_compress<T>(wide: WideGlobalPtr<T>) -> Result<GlobalPtr<T>, WideGlobalPtr<T>> {
    if wide.locale() < MAX_COMPRESSED_LOCALES as u64 {
        Ok(wide.compress())
    } else {
        Err(wide)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_locale_counts() {
        assert!(!requires_wide(1));
        assert!(!requires_wide(MAX_COMPRESSED_LOCALES));
        assert!(requires_wide(MAX_COMPRESSED_LOCALES + 1));
    }

    #[test]
    fn preferred_mode_matches_requirement() {
        assert_eq!(preferred_mode(64), PointerMode::Compressed);
        assert_eq!(preferred_mode(1 << 20), PointerMode::Wide);
    }

    #[test]
    fn try_compress_small_locale() {
        let w = WideGlobalPtr::<u8>::new(12, 0x4000);
        let c = try_compress(w).expect("fits");
        assert_eq!(c.locale(), 12);
        assert_eq!(c.addr(), 0x4000);
    }

    #[test]
    fn try_compress_huge_locale_fails() {
        let w = WideGlobalPtr::<u8>::new(1 << 17, 0x4000);
        assert!(try_compress(w).is_err());
    }

    mod pack_roundtrip {
        use super::*;
        use proptest::prelude::*;

        const ADDR_BITS: u32 = 48;
        const ADDR_SPACE: u64 = 1 << ADDR_BITS;

        /// Run `f`, which is expected to panic, with the default panic hook
        /// suppressed so hundreds of proptest cases don't spam stderr.
        fn panics(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let r = std::panic::catch_unwind(f);
            std::panic::set_hook(hook);
            r.is_err()
        }

        /// Bias `addr` toward the interesting corners — null, the 48-bit
        /// ceiling, the mark bit's neighbours — far more often than uniform
        /// sampling would hit them. (`sel` picks a corner ~half the time.)
        fn bias_addr(sel: u8, addr: u64) -> u64 {
            match sel {
                0 => 0,
                1 => 1,
                2 => ADDR_SPACE - 1,
                3 => ADDR_SPACE - 2,
                _ => addr,
            }
        }

        proptest! {
            /// Every in-range (locale, addr) survives compression: locale
            /// exactly, address up to the Harris mark bit (which `addr()`
            /// masks and `is_marked()` reports instead).
            #[test]
            fn compressed_pack_unpack_roundtrips(
                locale in 0u16..=u16::MAX,
                sel in 0u8..8,
                raw_addr in 0u64..ADDR_SPACE,
            ) {
                let addr = bias_addr(sel, raw_addr);
                let p = GlobalPtr::<u64>::new(locale, addr as usize);
                prop_assert_eq!(p.locale(), locale);
                prop_assert_eq!(p.addr() as u64, addr & !1);
                prop_assert_eq!(p.is_marked(), addr & 1 == 1);
                prop_assert_eq!(p.is_null(), addr & !1 == 0);

                // The raw-word and wide representations agree with it.
                let q = GlobalPtr::<u64>::from_bits(p.into_bits());
                prop_assert_eq!(q, p);
                let w = p.widen();
                prop_assert_eq!(w.locale(), locale as u64);
                prop_assert_eq!(w.compress(), p);
            }

            /// Any address with a bit at or above position 48 set is not a
            /// canonical user-space address and must be rejected loudly,
            /// never silently truncated.
            #[test]
            fn out_of_range_addresses_are_rejected(
                locale in 0u16..=u16::MAX,
                low in 0u64..ADDR_SPACE,
                bit in ADDR_BITS..u64::BITS,
            ) {
                let bad = low | (1u64 << bit);
                let rejected = panics(move || {
                    let _ = GlobalPtr::<u8>::new(locale, bad as usize);
                });
                prop_assert!(rejected, "address {:#x} was not rejected", bad);
            }

            /// `try_compress` succeeds exactly when the locale fits in 16
            /// bits, and a successful compression is lossless.
            #[test]
            fn try_compress_agrees_with_the_locale_bound(
                raw_locale in 0u64..(1u64 << 24),
                fits in 0u8..2,
                sel in 0u8..8,
                raw_addr in 0u64..ADDR_SPACE,
            ) {
                // Half the cases are forced into the compressible range so
                // both arms get real coverage.
                let locale = if fits == 0 {
                    raw_locale & (MAX_COMPRESSED_LOCALES as u64 - 1)
                } else {
                    raw_locale
                };
                let addr = bias_addr(sel, raw_addr);
                let w = WideGlobalPtr::<u32>::new(locale, addr as usize);
                match try_compress(w) {
                    Ok(c) => {
                        prop_assert!(locale < MAX_COMPRESSED_LOCALES as u64);
                        prop_assert_eq!(c.locale() as u64, locale);
                        prop_assert_eq!(c.addr(), w.addr());
                    }
                    Err(back) => {
                        prop_assert!(locale >= MAX_COMPRESSED_LOCALES as u64);
                        prop_assert_eq!(back, w, "failure returns the input unchanged");
                    }
                }
            }
        }
    }
}
