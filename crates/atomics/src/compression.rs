//! Pointer-compression policy helpers.
//!
//! The mechanics of packing `(locale, address)` into a `u64` live on
//! [`pgas_sim::GlobalPtr`]; this module holds the *policy* described in
//! §II-A of the paper: compression is only sound while the locale id fits
//! in the 16 bits freed up by the 48-bit virtual-address assumption, and
//! installations beyond 2^16 locales must fall back to wide pointers and
//! double-word CAS.

use pgas_sim::{GlobalPtr, PointerMode, RuntimeCore, WideGlobalPtr};

/// Maximum number of locales representable under pointer compression.
pub const MAX_COMPRESSED_LOCALES: usize = 1 << 16;

/// Does a system of `num_locales` locales require the wide-pointer
/// fallback?
#[inline]
pub fn requires_wide(num_locales: usize) -> bool {
    num_locales > MAX_COMPRESSED_LOCALES
}

/// The pointer mode a runtime *should* use for its locale count: the
/// compressed fast path whenever it is sound.
#[inline]
pub fn preferred_mode(num_locales: usize) -> PointerMode {
    if requires_wide(num_locales) {
        PointerMode::Wide
    } else {
        PointerMode::Compressed
    }
}

/// The effective pointer mode of a runtime (its configured mode, which
/// [`pgas_sim::RuntimeConfig::validate`] has already checked for soundness).
#[inline]
pub fn effective_mode(core: &RuntimeCore) -> PointerMode {
    core.config.pointer_mode
}

/// Compress a wide pointer, or return it unchanged as `Err` when the
/// locale id exceeds 16 bits (the caller must stay on the wide path).
pub fn try_compress<T>(wide: WideGlobalPtr<T>) -> Result<GlobalPtr<T>, WideGlobalPtr<T>> {
    if wide.locale() < MAX_COMPRESSED_LOCALES as u64 {
        Ok(wide.compress())
    } else {
        Err(wide)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_locale_counts() {
        assert!(!requires_wide(1));
        assert!(!requires_wide(MAX_COMPRESSED_LOCALES));
        assert!(requires_wide(MAX_COMPRESSED_LOCALES + 1));
    }

    #[test]
    fn preferred_mode_matches_requirement() {
        assert_eq!(preferred_mode(64), PointerMode::Compressed);
        assert_eq!(preferred_mode(1 << 20), PointerMode::Wide);
    }

    #[test]
    fn try_compress_small_locale() {
        let w = WideGlobalPtr::<u8>::new(12, 0x4000);
        let c = try_compress(w).expect("fits");
        assert_eq!(c.locale(), 12);
        assert_eq!(c.addr(), 0x4000);
    }

    #[test]
    fn try_compress_huge_locale_fails() {
        let w = WideGlobalPtr::<u8>::new(1 << 17, 0x4000);
        assert!(try_compress(w).is_err());
    }
}
