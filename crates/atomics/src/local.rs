//! `LocalAtomicObject<T>` — the shared-memory-optimized variant.
//!
//! The paper's initial prototype (§II-A): locality information is ignored
//! entirely and the cell holds only the 64-bit virtual address. That makes
//! it cheaper than [`crate::AtomicObject`] — no compression or locale
//! bookkeeping — but it is only sound when every pointer stored in it is
//! local to the locale the cell lives on, which is asserted in debug
//! builds.
//!
//! An ABA-protected local variant is provided as [`LocalAtomicAbaObject`]
//! (the paper's `LocalAtomicObject` offers the same `ABA` wrapper as the
//! global one).

use std::sync::atomic::{AtomicU64, Ordering};

use pgas_sim::engine::{self, AtomicPath};
use pgas_sim::{ctx, GlobalPtr, LocaleId};

use crate::aba::{Aba, AtomicAbaObject};

/// An atomic object reference that stores *only the address*, valid for
/// objects co-located with the cell.
pub struct LocalAtomicObject<T> {
    cell: AtomicU64,
    home: LocaleId,
    _marker: std::marker::PhantomData<*mut T>,
}

// SAFETY: stores a plain address word; dereferences are separately unsafe.
unsafe impl<T> Send for LocalAtomicObject<T> {}
unsafe impl<T> Sync for LocalAtomicObject<T> {}

impl<T> LocalAtomicObject<T> {
    /// A null cell homed on the current locale.
    pub fn null() -> Self {
        Self::new(GlobalPtr::null())
    }

    /// A cell holding `ptr`, homed on the current locale.
    pub fn new(ptr: GlobalPtr<T>) -> Self {
        let home = pgas_sim::here();
        let cell = LocalAtomicObject {
            cell: AtomicU64::new(0),
            home,
            _marker: std::marker::PhantomData,
        };
        cell.check(ptr);
        cell.cell.store(ptr.addr() as u64, Ordering::Relaxed);
        cell
    }

    /// The locale whose objects this cell may reference.
    pub fn home(&self) -> LocaleId {
        self.home
    }

    #[inline]
    fn check(&self, ptr: GlobalPtr<T>) {
        debug_assert!(
            ptr.is_null() || ptr.locale() == self.home,
            "LocalAtomicObject ignores locality: storing a pointer to \
             locale {} in a cell homed on locale {} would lose its identity",
            ptr.locale(),
            self.home
        );
    }

    #[inline]
    fn rehydrate(&self, addr: u64) -> GlobalPtr<T> {
        if addr == 0 {
            GlobalPtr::null()
        } else {
            GlobalPtr::new(self.home, addr as usize)
        }
    }

    fn route<R: Send>(&self, op: impl FnOnce(&AtomicU64) -> R + Send) -> R {
        ctx::with_core(|core, _| match engine::remote_atomic_u64(core, self.home) {
            AtomicPath::Nic | AtomicPath::CpuLocal => op(&self.cell),
            AtomicPath::ActiveMessage => core.on_combining(self.home, move || {
                engine::handler_atomic_u64(core);
                op(&self.cell)
            }),
        })
    }

    /// Atomically read the reference.
    pub fn read(&self) -> GlobalPtr<T> {
        self.rehydrate(self.route(|c| c.load(Ordering::SeqCst)))
    }

    /// Atomically replace the reference.
    pub fn write(&self, ptr: GlobalPtr<T>) {
        self.check(ptr);
        let bits = ptr.addr() as u64;
        self.route(move |c| c.store(bits, Ordering::SeqCst));
    }

    /// Atomically swap in `ptr`, returning the previous reference.
    pub fn exchange(&self, ptr: GlobalPtr<T>) -> GlobalPtr<T> {
        self.check(ptr);
        let bits = ptr.addr() as u64;
        self.rehydrate(self.route(move |c| c.swap(bits, Ordering::SeqCst)))
    }

    /// Compare-and-swap by address; `true` on success.
    pub fn compare_and_swap(&self, expected: GlobalPtr<T>, new: GlobalPtr<T>) -> bool {
        self.check(expected);
        self.check(new);
        let (e, n) = (expected.addr() as u64, new.addr() as u64);
        self.route(move |c| {
            c.compare_exchange(e, n, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        })
    }
}

impl<T> std::fmt::Debug for LocalAtomicObject<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalAtomicObject")
            .field("home", &self.home)
            .finish()
    }
}

/// The ABA-protected local variant: identical machinery to
/// [`AtomicAbaObject`], retained as a distinct name to mirror the paper's
/// API (and to document intent: all stored pointers are local).
pub struct LocalAtomicAbaObject<T> {
    inner: AtomicAbaObject<T>,
}

impl<T> LocalAtomicAbaObject<T> {
    /// A null cell homed on the current locale.
    pub fn null() -> Self {
        LocalAtomicAbaObject {
            inner: AtomicAbaObject::null(),
        }
    }

    /// A cell holding `ptr`, homed on the current locale.
    pub fn new(ptr: GlobalPtr<T>) -> Self {
        LocalAtomicAbaObject {
            inner: AtomicAbaObject::new(ptr),
        }
    }

    /// Read the `{pointer, counter}` snapshot.
    pub fn read_aba(&self) -> Aba<T> {
        self.inner.read_aba()
    }

    /// ABA-immune compare-and-swap (see [`AtomicAbaObject`]).
    pub fn compare_and_swap_aba(&self, expected: Aba<T>, new: GlobalPtr<T>) -> bool {
        self.inner.compare_and_swap_aba(expected, new)
    }

    /// Swap, returning the previous snapshot.
    pub fn exchange_aba(&self, new: GlobalPtr<T>) -> Aba<T> {
        self.inner.exchange_aba(new)
    }

    /// Read only the pointer word.
    pub fn read(&self) -> GlobalPtr<T> {
        self.inner.read()
    }

    /// Swap, returning only the previous pointer.
    pub fn exchange(&self, new: GlobalPtr<T>) -> GlobalPtr<T> {
        self.inner.exchange(new)
    }

    /// Uncharged, context-free read for teardown paths; see
    /// [`AtomicAbaObject::read_untracked`].
    pub fn read_untracked(&self) -> GlobalPtr<T> {
        self.inner.read_untracked()
    }
}

impl<T> std::fmt::Debug for LocalAtomicAbaObject<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalAtomicAbaObject").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{alloc_local, free, Runtime, RuntimeConfig};

    #[test]
    fn roundtrip_preserves_home_locale() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            rt.on(1, || {
                let p = alloc_local(&rt, 5u64);
                let cell = LocalAtomicObject::new(p);
                assert_eq!(cell.home(), 1);
                let q = cell.read();
                assert_eq!(q.locale(), 1, "locality rehydrated from home");
                assert_eq!(q, p);
                unsafe { free(&rt, p) };
            });
        });
    }

    #[test]
    fn ops_match_global_variant_semantics() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let a = alloc_local(&rt, 1u32);
            let b = alloc_local(&rt, 2u32);
            let cell = LocalAtomicObject::null();
            assert!(cell.read().is_null());
            cell.write(a);
            assert_eq!(cell.exchange(b), a);
            assert!(cell.compare_and_swap(b, a));
            assert!(!cell.compare_and_swap(b, a));
            unsafe {
                free(&rt, a);
                free(&rt, b);
            }
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "ignores locality")]
    fn storing_remote_pointer_is_a_bug() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            let remote = pgas_sim::alloc_on(&rt, 1, 9u64);
            let cell = LocalAtomicObject::null(); // homed on locale 0
            cell.write(remote);
        });
    }

    #[test]
    fn local_aba_variant_protects_against_aba() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let a = alloc_local(&rt, 1u64);
            let b = alloc_local(&rt, 2u64);
            let cell = LocalAtomicAbaObject::new(a);
            let stale = cell.read_aba();
            let _ = cell.exchange_aba(b);
            let _ = cell.exchange(a); // pointer is A again
            assert!(!cell.compare_and_swap_aba(stale, b));
            assert_eq!(cell.read(), a);
            unsafe {
                free(&rt, a);
                free(&rt, b);
            }
        });
    }
}
