//! Torn-read oracle for the versioned fast-read path.
//!
//! A writer task churns an ABA cell through `write_aba` so that the cell
//! always holds a *self-consistent* `{pointer, counter}` pair: after the
//! k-th write the counter is exactly `k` and the pointer bits are exactly
//! `k * MULT`. Concurrent readers take validated fast reads
//! (`vread_fastpath = true`) and check every snapshot against that
//! invariant — a mixed pair (pointer from one write, counter from another)
//! can only be produced by an unvalidated torn two-load window.
//!
//! The planted-bug twin flips [`pgas_sim::engine::debug_vread_skip_validate`]
//! on, which makes the fast read skip the seqlock validation (and widens
//! the torn window), and asserts the oracle *does* catch the resulting
//! mixed pairs — proving the checker is sharp, not vacuously green. The
//! chaos binary runs the same planted bug as a self-test
//! (`checker_self_test_vread`) before every matrix run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pgas_atomics::AtomicAbaObject;
use pgas_sim::{GlobalPtr, Runtime, RuntimeConfig};
use proptest::prelude::*;

/// The skip-validate hook is process-wide and the test harness runs tests
/// concurrently — serialize every oracle run against the planted-bug twin
/// so the hook can never leak into a clean round.
static HOOK: Mutex<()> = Mutex::new(());

/// Pointer bits for the k-th write: any odd multiplier works; this one
/// keeps high and low halves busy so a torn compose is visibly wrong.
const MULT: u64 = 0x9E37_79B9;

/// Run `writes` sequential writes against one remote ABA cell while
/// `readers` tasks hammer it with fast reads; returns the number of
/// snapshots violating `ptr == count * MULT` (0 unless reads tear).
fn run_mix(writes: u64, readers: usize) -> u64 {
    let rt = Runtime::new(
        RuntimeConfig::cluster(2)
            .with_vread_fastpath(true)
            .with_vread_max_tries(8),
    );
    rt.run(|| {
        let cell = AtomicAbaObject::<u64>::new_on(1, GlobalPtr::null());
        let violations = AtomicU64::new(0);
        rt.coforall_tasks(readers + 1, |t| {
            if t == 0 {
                for k in 1..=writes {
                    cell.write_aba(GlobalPtr::from_bits(k.wrapping_mul(MULT)));
                }
            } else {
                for _ in 0..writes * 4 {
                    let snap = cell.read_aba();
                    let ptr = snap.get_object().into_bits();
                    let count = snap.get_aba_count();
                    if ptr != count.wrapping_mul(MULT) {
                        violations.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        });
        violations.load(Ordering::SeqCst)
    })
}

proptest! {
    // Each case spins up a full runtime (real threads); keep the case
    // count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// However writers and readers interleave, a *validated* fast read
    /// never surfaces a mixed `{pointer, counter}` pair.
    #[test]
    fn validated_fast_reads_never_surface_torn_pairs(
        writes in 16u64..128,
        readers in 1usize..4,
    ) {
        let _serial = HOOK.lock().unwrap_or_else(|e| e.into_inner());
        prop_assert_eq!(
            run_mix(writes, readers),
            0,
            "a sequence-validated read surfaced a torn pair"
        );
    }
}

/// Planted bug: with validation skipped the very same oracle must start
/// reporting torn pairs — otherwise the proptest above proves nothing.
#[test]
fn oracle_catches_skipped_validation() {
    let _serial = HOOK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = pgas_sim::engine::debug_vread_skip_validate(true);
    assert!(!prev, "skip-validate hook unexpectedly already set");
    let mut torn = 0;
    // The tear is a real-thread race; retry a few rounds so the planted
    // bug is caught deterministically without making one round huge.
    for _ in 0..50 {
        torn = run_mix(256, 2);
        if torn > 0 {
            break;
        }
    }
    pgas_sim::engine::debug_vread_skip_validate(false);
    assert!(
        torn > 0,
        "oracle failed to catch the planted validation-skip bug"
    );
}
