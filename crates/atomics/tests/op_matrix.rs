//! Exhaustive operation matrix for the atomic types: every operation ×
//! {local, remote} × {network atomics on, off} × {compressed, wide},
//! asserting both the result semantics and the exact communication path
//! taken.

use pgas_atomics::{AtomicAbaObject, AtomicInt, AtomicObject, LocalAtomicObject};
use pgas_sim::{alloc_local, alloc_on, free, GlobalPtr, Runtime, RuntimeConfig};

/// Communication expectation for one op.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Path {
    Rdma(u64),
    Cpu(u64),
    Am(u64),
    Dcas(u64),
}

fn assert_paths(rt: &Runtime, expected: &[Path]) {
    let s = rt.total_comm();
    for e in expected {
        match *e {
            Path::Rdma(n) => assert_eq!(s.rdma_atomics, n, "rdma count: {s}"),
            Path::Cpu(n) => assert_eq!(s.cpu_atomics, n, "cpu count: {s}"),
            Path::Am(n) => assert_eq!(s.am_sent, n, "am count: {s}"),
            Path::Dcas(n) => assert_eq!(s.cpu_dcas, n, "dcas count: {s}"),
        }
    }
}

#[test]
fn atomic_int_matrix() {
    // (net_atomics, owner-is-remote) → expected path for 4 ops
    for (net, remote, expected) in [
        (true, false, vec![Path::Rdma(4), Path::Am(0)]),
        (true, true, vec![Path::Rdma(4), Path::Am(0)]),
        (false, false, vec![Path::Cpu(4), Path::Am(0), Path::Rdma(0)]),
        (false, true, vec![Path::Cpu(4), Path::Am(4), Path::Rdma(0)]),
    ] {
        let cfg = if net {
            RuntimeConfig::cluster(2)
        } else {
            RuntimeConfig::cluster(2).without_network_atomics()
        };
        let rt = Runtime::new(cfg);
        rt.run(|| {
            let owner = if remote { 1 } else { 0 };
            let a = AtomicInt::new_on(owner, 5);
            rt.reset_metrics();
            assert_eq!(a.read(), 5);
            a.write(7);
            assert_eq!(a.exchange(9), 7);
            assert!(a.compare_and_swap(9, 11));
            assert_paths(&rt, &expected);
        });
    }
}

#[test]
fn atomic_object_matrix_compressed() {
    for (net, remote, expected) in [
        (true, false, vec![Path::Rdma(4)]),
        (true, true, vec![Path::Rdma(4), Path::Am(0)]),
        (false, false, vec![Path::Cpu(4)]),
        (false, true, vec![Path::Cpu(4), Path::Am(4)]),
    ] {
        let cfg = if net {
            RuntimeConfig::cluster(2)
        } else {
            RuntimeConfig::cluster(2).without_network_atomics()
        };
        let rt = Runtime::new(cfg);
        rt.run(|| {
            let owner = if remote { 1 } else { 0 };
            let x = alloc_local(&rt, 1u64);
            let y = alloc_on(&rt, 1, 2u64);
            let cell = AtomicObject::new_on(owner, x);
            rt.reset_metrics();
            assert_eq!(cell.read(), x);
            cell.write(y);
            assert_eq!(cell.exchange(x), y);
            assert!(cell.compare_and_swap(x, y));
            assert_paths(&rt, &expected);
            unsafe {
                free(&rt, x);
                free(&rt, y);
            }
        });
    }
}

#[test]
fn atomic_object_matrix_wide() {
    // Wide mode: local = DCAS, remote = AM + DCAS, never RDMA.
    for (remote, expected) in [
        (false, vec![Path::Dcas(4), Path::Rdma(0), Path::Am(0)]),
        (true, vec![Path::Dcas(4), Path::Rdma(0), Path::Am(4)]),
    ] {
        let rt = Runtime::new(RuntimeConfig::cluster(2).with_wide_pointers());
        rt.run(|| {
            let owner = if remote { 1 } else { 0 };
            let x = alloc_local(&rt, 1u64);
            let cell = AtomicObject::new_on(owner, GlobalPtr::null());
            rt.reset_metrics();
            let _ = cell.read();
            cell.write(x);
            let _ = cell.exchange(x);
            assert!(cell.compare_and_swap(x, GlobalPtr::null()));
            assert_paths(&rt, &expected);
            unsafe { free(&rt, x) };
        });
    }
}

#[test]
fn aba_object_matrix() {
    // ABA ops are DCAS locally, AM+DCAS remotely (the DCAS then executes
    // on the owner and is counted there); the plain 64-bit read is the
    // only NIC-eligible op.
    for (remote, dcas_total, ams) in [(false, 4, 0), (true, 4, 4)] {
        let rt = Runtime::new(RuntimeConfig::cluster(2));
        rt.run(|| {
            let owner = if remote { 1 } else { 0 };
            let x = alloc_local(&rt, 1u64);
            let cell = AtomicAbaObject::new_on(owner, GlobalPtr::null());
            rt.reset_metrics();
            let snap = cell.read_aba();
            cell.write_aba(x);
            let _ = cell.exchange_aba(GlobalPtr::null());
            let _ = cell.compare_and_swap_aba(snap, x);
            let s = rt.total_comm();
            assert_eq!(s.cpu_dcas, dcas_total, "{s}");
            assert_eq!(s.am_sent, ams, "{s}");
            assert_eq!(s.rdma_atomics, 0);
            // the 64-bit read: NIC
            let _ = cell.read();
            assert_eq!(rt.total_comm().rdma_atomics, 1);
            unsafe { free(&rt, x) };
        });
    }
}

#[test]
fn local_atomic_object_tracks_native_atomic_costs() {
    // LocalAtomicObject must cost exactly what atomic int costs.
    for net in [true, false] {
        let cfg = if net {
            RuntimeConfig::cluster(1)
        } else {
            RuntimeConfig::cluster(1).without_network_atomics()
        };
        let rt = Runtime::new(cfg);
        rt.run(|| {
            let x = alloc_local(&rt, 3u64);
            let obj = LocalAtomicObject::new(x);
            let int = AtomicInt::new(0);
            rt.reset_metrics();
            let _ = obj.read();
            let a = rt.total_comm();
            rt.reset_metrics();
            let _ = int.read();
            let b = rt.total_comm();
            assert_eq!(a, b, "identical communication profile");
            unsafe { free(&rt, x) };
        });
    }
}

#[test]
fn exchange_sequences_are_linearizable_per_cell() {
    // N tasks exchange distinct values into one cell; collecting
    // "previous" values must form a permutation chain.
    let rt = Runtime::new(RuntimeConfig::zero_latency(1));
    rt.run(|| {
        let ptrs: Vec<GlobalPtr<u64>> = (0..8).map(|i| alloc_local(&rt, i as u64)).collect();
        let cell = AtomicObject::new(GlobalPtr::null());
        let prevs: Vec<std::sync::Mutex<Vec<u64>>> =
            (0..8).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        rt.coforall_tasks(8, |t| {
            for _ in 0..50 {
                let old = cell.exchange(ptrs[t]);
                prevs[t].lock().unwrap().push(old.into_bits());
            }
        });
        // Each non-null previous value must be one of the 8 pointers, and
        // the total count of "I replaced X" events per X equals the number
        // of times X was installed minus (possibly) the final resident.
        let valid: std::collections::HashSet<u64> = ptrs.iter().map(|p| p.into_bits()).collect();
        let mut replaced = 0u64;
        for p in &prevs {
            for &bits in p.lock().unwrap().iter() {
                if bits != 0 {
                    assert!(valid.contains(&bits));
                    replaced += 1;
                }
            }
        }
        assert_eq!(
            replaced,
            8 * 50 - 1,
            "every install except the last resident was replaced"
        );
        for p in ptrs {
            unsafe { free(&rt, p) };
        }
    });
}
