//! Distributed arrays — the `dmapped Cyclic`/`Block` arrays the paper's
//! microbenchmarks allocate their objects in (Listing 5:
//! `var objsDom = {0..#numObjects} dmapped Cyclic(startIdx=0)`).
//!
//! A [`DistArray`] owns one contiguous segment per locale; an index maps
//! to `(owning locale, offset)` according to the distribution. Local
//! element access is a plain reference; remote access goes through
//! GET/PUT with the usual charging. `forall`-style iteration with
//! locality (each element visited by a task on its owning locale) is
//! provided by [`DistArray::forall`].

use std::sync::atomic::Ordering;

use crate::ctx;
use crate::engine;
use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;
use crate::vtime;

/// How indices map to locales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dist {
    /// Index `i` lives on locale `i % L` (Chapel's `Cyclic(startIdx=0)`).
    Cyclic,
    /// Indices are split into `L` contiguous blocks (Chapel's `Block`);
    /// locale `l` owns `[l*ceil(n/L), min((l+1)*ceil(n/L), n))`.
    Block,
}

/// A distributed array of `T` with one segment per locale.
///
/// The segments are plain `Box<[T]>`s owned by this struct; "ownership by
/// a locale" is the affinity metadata used for routing, exactly like the
/// rest of the simulator's memory model.
pub struct DistArray<T> {
    segments: Box<[Box<[T]>]>,
    len: usize,
    dist: Dist,
}

impl<T: Send + Sync> DistArray<T> {
    /// Build an array of `len` elements with the given distribution;
    /// `init(i)` is evaluated *on the owning locale* of index `i`.
    pub fn new(core: &RuntimeCore, len: usize, dist: Dist, init: impl Fn(usize) -> T + Sync) -> Self
    where
        T: Send,
    {
        let locales = core.num_locales();
        let mut segments: Vec<Box<[T]>> = Vec::with_capacity(locales);
        for l in 0..locales as LocaleId {
            let seg = core.on(l, || {
                let indices = Self::owned_indices(len, dist, locales, l);
                indices.map(&init).collect::<Box<[T]>>()
            });
            segments.push(seg);
        }
        DistArray {
            segments: segments.into_boxed_slice(),
            len,
            dist,
        }
    }

    fn owned_indices(
        len: usize,
        dist: Dist,
        locales: usize,
        l: LocaleId,
    ) -> Box<dyn Iterator<Item = usize> + Send> {
        match dist {
            Dist::Cyclic => Box::new((l as usize..len).step_by(locales)),
            Dist::Block => {
                let chunk = len.div_ceil(locales);
                let start = (l as usize * chunk).min(len);
                let end = ((l as usize + 1) * chunk).min(len);
                Box::new(start..end)
            }
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The distribution in use.
    pub fn dist(&self) -> Dist {
        self.dist
    }

    /// The locale that owns index `i`.
    pub fn affinity(&self, i: usize) -> LocaleId {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let locales = self.segments.len();
        match self.dist {
            Dist::Cyclic => (i % locales) as LocaleId,
            Dist::Block => {
                let chunk = self.len.div_ceil(locales);
                (i / chunk) as LocaleId
            }
        }
    }

    fn locate(&self, i: usize) -> (LocaleId, usize) {
        let locales = self.segments.len();
        let owner = self.affinity(i);
        let offset = match self.dist {
            Dist::Cyclic => i / locales,
            Dist::Block => i - owner as usize * self.len.div_ceil(locales),
        };
        (owner, offset)
    }

    /// Borrow element `i` without communication accounting. Only correct
    /// for elements local to the calling task; asserted in debug builds.
    pub fn local_ref(&self, i: usize) -> &T {
        let (owner, offset) = self.locate(i);
        debug_assert_eq!(
            owner,
            ctx::here(),
            "local_ref used on a remote element; use get()"
        );
        &self.segments[owner as usize][offset]
    }

    /// Read element `i`, charging a GET when it is remote.
    pub fn get(&self, i: usize) -> T
    where
        T: Copy,
    {
        let (owner, offset) = self.locate(i);
        ctx::with_core(|core, _| {
            engine::get(core, owner, std::mem::size_of::<T>());
        });
        self.segments[owner as usize][offset]
    }

    /// The slice owned by one locale.
    pub fn local_segment(&self, locale: LocaleId) -> &[T] {
        &self.segments[locale as usize]
    }

    /// `forall x in A`: visit every element with a task on its owning
    /// locale, `tasks` tasks per locale. The body receives
    /// `(global index, &element)`.
    pub fn forall<F>(&self, core: &RuntimeCore, tasks: usize, body: F)
    where
        F: Fn(usize, &T) + Send + Sync,
    {
        let len = self.len;
        let dist = self.dist;
        let locales = self.segments.len();
        let parent_vt = vtime::now();
        let wire = core.config.network.am_wire_ns;
        let src = ctx::here();
        let mut max_end = parent_vt;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for l in 0..locales as LocaleId {
                for t in 0..tasks {
                    let body = &body;
                    let this = &*self;
                    let core_ptr = CorePtrLocal(core as *const RuntimeCore);
                    handles.push(scope.spawn(move || {
                        // SAFETY: joined before the scope (and `core`) end.
                        let _g = unsafe { ctx::enter(core_ptr.get(), l) };
                        vtime::set(if l == src {
                            parent_vt
                        } else {
                            parent_vt + wire
                        });
                        let seg = this.local_segment(l);
                        let mut j = t;
                        while j < seg.len() {
                            let global = match dist {
                                Dist::Cyclic => l as usize + j * locales,
                                Dist::Block => l as usize * len.div_ceil(locales) + j,
                            };
                            body(global, &seg[j]);
                            j += tasks;
                        }
                        vtime::now() + if l == src { 0 } else { wire }
                    }));
                }
            }
            let mut panic = None;
            for h in handles {
                match h.join() {
                    Ok(end) => max_end = max_end.max(end),
                    Err(p) => panic = Some(p),
                }
            }
            if let Some(p) = panic {
                std::panic::resume_unwind(p);
            }
        });
        let spawns = (locales.saturating_sub(1)) * tasks;
        core.locale(src)
            .stats
            .am_sent
            .fetch_add(spawns as u64, Ordering::Relaxed);
        vtime::advance_to(max_end);
    }
}

/// `Send` wrapper mirroring the one in `runtime.rs` (see the comment
/// there about edition-2021 disjoint capture).
#[derive(Clone, Copy)]
struct CorePtrLocal(*const RuntimeCore);
unsafe impl Send for CorePtrLocal {}
unsafe impl Sync for CorePtrLocal {}
impl CorePtrLocal {
    fn get(self) -> *const RuntimeCore {
        self.0
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for DistArray<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistArray")
            .field("len", &self.len)
            .field("dist", &self.dist)
            .field("locales", &self.segments.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn cyclic_affinity_matches_modulo() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(3));
        rt.run(|| {
            let a = DistArray::new(&rt, 10, Dist::Cyclic, |i| i as u64);
            for i in 0..10 {
                assert_eq!(a.affinity(i) as usize, i % 3);
                assert_eq!(a.get(i), i as u64);
            }
        });
    }

    #[test]
    fn block_affinity_is_contiguous() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(3));
        rt.run(|| {
            let a = DistArray::new(&rt, 10, Dist::Block, |i| i as u64);
            // ceil(10/3) = 4: [0..4) on 0, [4..8) on 1, [8..10) on 2.
            let expect = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2];
            for (i, &l) in expect.iter().enumerate() {
                assert_eq!(a.affinity(i), l, "index {i}");
                assert_eq!(a.get(i), i as u64);
            }
            assert_eq!(a.local_segment(0).len(), 4);
            assert_eq!(a.local_segment(2).len(), 2);
        });
    }

    #[test]
    fn init_runs_on_owner_locale() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let a = DistArray::new(&rt, 16, Dist::Cyclic, |i| {
                assert_eq!(ctx::here() as usize, i % 4, "init on owner");
                ctx::here() as u64
            });
            for i in 0..16 {
                assert_eq!(a.get(i), (i % 4) as u64);
            }
        });
    }

    #[test]
    fn remote_get_charges_local_get_does_not() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let a = DistArray::new(&rt, 4, Dist::Cyclic, |i| i as u32);
            rt.reset_metrics();
            let _ = a.get(0); // local to locale 0
            assert_eq!(rt.total_comm().gets, 0);
            let _ = a.get(1); // owned by locale 1
            assert_eq!(rt.total_comm().gets, 1);
        });
    }

    #[test]
    fn forall_visits_each_element_once_with_affinity() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(3));
        rt.run(|| {
            let n = 40;
            let a = DistArray::new(&rt, n, Dist::Cyclic, |i| i);
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            a.forall(&rt, 2, |i, &v| {
                assert_eq!(i, v);
                assert_eq!(ctx::here() as usize, i % 3);
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
            }
        });
    }

    #[test]
    fn forall_block_distribution() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let n = 21;
            let a = DistArray::new(&rt, n, Dist::Block, |i| i);
            let count = AtomicUsize::new(0);
            a.forall(&rt, 3, |i, &v| {
                assert_eq!(i, v);
                assert_eq!(ctx::here(), a.affinity(i));
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), n);
        });
    }

    #[test]
    fn empty_array_is_fine() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            let a: DistArray<u64> = DistArray::new(&rt, 0, Dist::Cyclic, |_| 0);
            assert!(a.is_empty());
            a.forall(&rt, 2, |_, _| unreachable!());
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            let a = DistArray::new(&rt, 4, Dist::Cyclic, |i| i);
            let _ = a.get(4);
        });
    }
}
