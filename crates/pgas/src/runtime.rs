//! The multi-locale runtime.
//!
//! A [`Runtime`] owns a set of simulated locales (each with progress
//! threads servicing active messages) and provides the Chapel-style
//! execution constructs the paper's code uses:
//!
//! * [`RuntimeCore::run`] — enter the runtime on locale 0 (the `main`).
//! * [`RuntimeCore::on`] — Chapel's `on Locales[i] do { ... }`: execute a
//!   closure on another locale and block for its result.
//! * [`RuntimeCore::coforall_locales`] — `coforall loc in Locales do on loc`.
//! * [`RuntimeCore::coforall_tasks`] — `coforall t in 0..#T` on the current
//!   locale.
//! * [`RuntimeCore::forall_dist`] — a distributed `forall` over a cyclically
//!   distributed index space, with a task-private value per task (Chapel's
//!   `with (var tok = ...)` intent).
//!
//! All constructs merge virtual time the way a discrete-event simulation
//! would (see [`crate::vtime`]), so a phase's virtual makespan is simply
//! the caller's clock delta.

use std::ops::Deref;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;

use crossbeam_channel::unbounded;

use crate::am::{self, AmMsg};
use crate::config::RuntimeConfig;
use crate::ctx;
use crate::engine::{CommEngine, Completion, SimEngine};
use crate::globalptr::LocaleId;
use crate::locale::Locale;
use crate::stats::CommSnapshot;
use crate::telemetry::{Sink, Span, TelemetrySnapshot};
use crate::vtime;

/// A `Send`-able wrapper for the runtime pointer handed to scoped worker
/// threads. Safe because the scope joins before the runtime can move.
#[derive(Clone, Copy)]
struct CorePtr(*const RuntimeCore);
unsafe impl Send for CorePtr {}
unsafe impl Sync for CorePtr {}

impl CorePtr {
    // Accessor (rather than field access) so that closures capture the
    // whole `Send` wrapper, not the raw pointer field (edition-2021
    // disjoint capture would otherwise grab the non-Send field).
    fn get(self) -> *const RuntimeCore {
        self.0
    }
}

/// Shared runtime state. Public operations live here so that both the
/// owning [`Runtime`] and cheap [`RuntimeHandle`] clones expose them.
pub struct RuntimeCore {
    /// The configuration the runtime was started with.
    pub config: RuntimeConfig,
    locales: Box<[Locale]>,
    engine: Box<dyn CommEngine>,
    /// Live fault-injection state, built from [`RuntimeConfig::faults`];
    /// `None` (the default) short-circuits every injection hook.
    faults: Option<crate::faults::FaultState>,
    /// Telemetry span sink (see [`crate::telemetry::Sink`]). Unset by
    /// default: the fast path is one `OnceLock::get` returning `None`, so
    /// span emission is free unless a sink is installed.
    telemetry_sink: OnceLock<Arc<dyn Sink>>,
    shutdown: AtomicBool,
    self_weak: Weak<RuntimeCore>,
}

/// Owning handle: joins progress threads when dropped. Not `Clone`; use
/// [`Runtime::handle`] (or [`ctx::current_runtime`]) for shareable handles.
pub struct Runtime {
    core: Arc<RuntimeCore>,
    progress: Vec<JoinHandle<()>>,
}

/// A cheap, cloneable reference to a running [`Runtime`]. Operations panic
/// if used after the owning `Runtime` has shut down.
#[derive(Clone)]
pub struct RuntimeHandle {
    core: Arc<RuntimeCore>,
}

impl Deref for Runtime {
    type Target = RuntimeCore;
    fn deref(&self) -> &RuntimeCore {
        &self.core
    }
}

impl Deref for RuntimeHandle {
    type Target = RuntimeCore;
    fn deref(&self) -> &RuntimeCore {
        &self.core
    }
}

impl Runtime {
    /// Start a runtime with `config.num_locales` simulated locales, using
    /// the in-process [`SimEngine`] backend.
    ///
    /// # Panics
    /// If `config.engine` selects a non-simulator backend: transport
    /// engines are external objects and must come in through
    /// [`Runtime::with_engine`] (the `pgas-net` crate provides
    /// `ProcEngine`).
    pub fn new(config: RuntimeConfig) -> Runtime {
        assert!(
            config.engine == crate::config::EngineKind::Sim,
            "RuntimeConfig::engine is {:?}: construct this backend \
             explicitly with Runtime::with_engine (e.g. pgas_net::ProcEngine)",
            config.engine
        );
        Runtime::build(config, Box::new(SimEngine), true)
    }

    /// Start a runtime around an externally constructed [`CommEngine`]
    /// backend. No simulator progress threads are spawned: the engine owns
    /// its own progress service (started from [`CommEngine::bind`]), and
    /// [`RuntimeCore::run`] enters the engine's
    /// [`CommEngine::entry_locale`] instead of locale 0.
    pub fn with_engine(config: RuntimeConfig, engine: Box<dyn CommEngine>) -> Runtime {
        Runtime::build(config, engine, false)
    }

    fn build(config: RuntimeConfig, engine: Box<dyn CommEngine>, sim_progress: bool) -> Runtime {
        config.validate();
        let mut receivers = Vec::with_capacity(config.num_locales);
        let core = Arc::new_cyclic(|self_weak| {
            let locales = (0..config.num_locales)
                .map(|id| {
                    let (tx, rx) = unbounded();
                    receivers.push(rx);
                    let am_slowdown = config
                        .faults
                        .as_ref()
                        .map_or(1, |p| p.slowdown_for(id as LocaleId));
                    Locale::new(
                        id as LocaleId,
                        config.progress_threads,
                        config.num_locales,
                        tx,
                        am_slowdown,
                        config.sym_heap_bytes,
                    )
                })
                .collect();
            let faults = config.faults.clone().map(crate::faults::FaultState::new);
            RuntimeCore {
                config,
                locales,
                engine,
                faults,
                telemetry_sink: OnceLock::new(),
                shutdown: AtomicBool::new(false),
                self_weak: self_weak.clone(),
            }
        });
        let mut progress = Vec::new();
        if sim_progress {
            for (id, rx) in receivers.into_iter().enumerate() {
                for t in 0..core.config.progress_threads {
                    let core = Arc::clone(&core);
                    let rx = rx.clone();
                    progress.push(
                        std::thread::Builder::new()
                            .name(format!("pgas-progress-{id}.{t}"))
                            .spawn(move || am::progress_loop(core, id as LocaleId, rx))
                            .expect("failed to spawn progress thread"),
                    );
                }
            }
        }
        core.engine.bind(&core);
        Runtime { core, progress }
    }

    /// Convenience: an `n`-locale cluster with the default network model.
    pub fn cluster(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::cluster(n))
    }

    /// Convenience: a single-locale shared-memory runtime.
    pub fn shared_memory() -> Runtime {
        Runtime::new(RuntimeConfig::shared_memory())
    }

    /// A cloneable handle that can be stored inside long-lived objects.
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            core: Arc::clone(&self.core),
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // External engines first: their progress threads hold a Weak to the
        // core and must be joined before the AM channels close.
        self.core.engine.shutdown();
        self.core.shutdown.store(true, Ordering::SeqCst);
        for locale in self.core.locales.iter() {
            for _ in 0..self.core.config.progress_threads {
                // Progress threads exit on Shutdown; if one already died the
                // channel may be disconnected, which is fine.
                let _ = locale.am_tx.send(AmMsg::Shutdown);
            }
        }
        for handle in self.progress.drain(..) {
            let _ = handle.join();
        }
    }
}

impl RuntimeCore {
    /// Number of locales in this runtime.
    #[inline]
    pub fn num_locales(&self) -> usize {
        self.locales.len()
    }

    /// Access one locale's state (stats, heap accounting).
    #[inline]
    pub fn locale(&self, id: LocaleId) -> &Locale {
        &self.locales[id as usize]
    }

    /// Iterate over all locales.
    pub fn locales(&self) -> impl Iterator<Item = &Locale> {
        self.locales.iter()
    }

    /// The live fault-injection state, if a [`crate::faults::FaultPlan`]
    /// was installed in the configuration.
    #[inline]
    pub fn faults(&self) -> Option<&crate::faults::FaultState> {
        self.faults.as_ref()
    }

    /// A cloneable handle to this runtime.
    ///
    /// # Panics
    /// If the owning [`Runtime`] has already been dropped.
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            core: self.self_weak.upgrade().expect("runtime already shut down"),
        }
    }

    pub(crate) fn send_am(&self, dest: LocaleId, msg: AmMsg) {
        assert!(
            !self.shutdown.load(Ordering::Relaxed),
            "runtime has shut down"
        );
        self.locales[dest as usize]
            .am_tx
            .send(msg)
            .expect("active-message queue closed");
    }

    /// Enter the runtime on the engine's entry locale (locale 0 for the
    /// simulator, the process's own rank for a transport backend) and
    /// execute `f` on the calling thread. This is the moral equivalent of
    /// Chapel's `main`. The task-local virtual clock starts at zero when
    /// entering from outside.
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        self.run_on(self.engine.entry_locale(), f)
    }

    /// Enter the runtime on a specific locale and execute `f` on the
    /// calling thread. This is how an engine backend's progress threads
    /// establish the runtime context before invoking handlers; ordinary
    /// code wants [`RuntimeCore::run`].
    pub fn run_on<R>(&self, locale: LocaleId, f: impl FnOnce() -> R) -> R {
        assert!(
            (locale as usize) < self.locales.len(),
            "locale {locale} out of range (runtime has {} locales)",
            self.locales.len()
        );
        let fresh = ctx::try_here().is_none();
        // SAFETY: `self` is borrowed for the duration of the call and the
        // guard is dropped before it returns.
        let _g = unsafe { ctx::enter(self as *const RuntimeCore, locale) };
        if fresh {
            vtime::set(0);
        }
        f()
    }

    /// Enter the runtime on locale 0, reset virtual time, execute `f`, and
    /// return `(result, virtual_makespan_ns)`.
    pub fn run_measured<R>(&self, f: impl FnOnce() -> R) -> (R, u64) {
        self.run(|| {
            vtime::set(0);
            let r = f();
            (r, vtime::now())
        })
    }

    /// The communication engine this runtime routes all remote traffic
    /// through (see [`crate::engine::CommEngine`]).
    #[inline]
    pub fn engine(&self) -> &dyn CommEngine {
        &*self.engine
    }

    /// Chapel's `on Locales[dest] do f()`: execute `f` on locale `dest`,
    /// blocking until it finishes. Runs inline (zero communication) when
    /// the caller is already on `dest`; otherwise ships an active message
    /// through the [`Self::engine`], whose handling serializes on the
    /// target's progress threads.
    pub fn on<R, F>(&self, dest: LocaleId, f: F) -> R
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        assert!(
            (dest as usize) < self.locales.len(),
            "locale {dest} out of range (runtime has {} locales)",
            self.locales.len()
        );
        // The engine's `on` takes a unit closure; the return value travels
        // through this stack slot, which the engine's blocking contract
        // guarantees is written before `on` returns.
        let mut slot: Option<R> = None;
        {
            let slot_ref = &mut slot;
            self.engine.on(
                self,
                dest,
                Box::new(move || {
                    *slot_ref = Some(f());
                }),
            );
        }
        slot.expect("remote closure did not run")
    }

    /// Like [`Self::on`], but *combinable*: when
    /// [`RuntimeConfig::combining`] is enabled and several tasks on this
    /// locale concurrently target the same destination, their closures ride
    /// a single bulk active message shipped by an elected combiner task
    /// (see [`crate::engine::combine`]); otherwise this is exactly a
    /// blocking [`Self::on`]. Still blocks until `f` has run on `dest` and
    /// still executes inline when already there, so semantics are
    /// unchanged — only the message count and virtual time differ.
    pub fn on_combining<R, F>(&self, dest: LocaleId, f: F) -> R
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        assert!(
            (dest as usize) < self.locales.len(),
            "locale {dest} out of range (runtime has {} locales)",
            self.locales.len()
        );
        // Same stack-slot pattern as `on`: the engine's blocking contract
        // guarantees the slot is written before `on_combined` returns.
        let mut slot: Option<R> = None;
        {
            let slot_ref = &mut slot;
            self.engine.on_combined(
                self,
                dest,
                Box::new(move || {
                    *slot_ref = Some(f());
                }),
            );
        }
        slot.expect("combined remote closure did not run")
    }

    /// Fire-and-forget variant of [`Self::on`]: ship `f` to `dest` and
    /// return a [`Completion`] immediately, without advancing the caller's
    /// virtual clock. Waiting on the handle merges the handler's finish
    /// time back in; dropping it abandons the result (the handler still
    /// runs).
    pub fn on_async<F>(&self, dest: LocaleId, f: F) -> Completion
    where
        F: FnOnce() + Send + 'static,
    {
        assert!(
            (dest as usize) < self.locales.len(),
            "locale {dest} out of range (runtime has {} locales)",
            self.locales.len()
        );
        self.engine.on_async(self, dest, Box::new(f))
    }

    /// `coforall loc in Locales do on loc { f(loc) }`: run `f` once per
    /// locale, concurrently, and join. The caller's virtual clock advances
    /// to the slowest child (plus wire latency for remote children).
    pub fn coforall_locales<F>(&self, f: F)
    where
        F: Fn(LocaleId) + Send + Sync,
    {
        let src = ctx::here();
        let parent_vt = vtime::now();
        let wire = self.config.network.am_wire_ns;
        let self_ptr = CorePtr(self as *const RuntimeCore);
        let mut max_end = parent_vt;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.locales.len() as LocaleId)
                .map(|l| {
                    let f = &f;
                    scope.spawn(move || {
                        // SAFETY: the scope joins before `self` can move.
                        let _g = unsafe { ctx::enter(self_ptr.get(), l) };
                        vtime::set(if l == src {
                            parent_vt
                        } else {
                            parent_vt + wire
                        });
                        f(l);
                        vtime::now() + if l == src { 0 } else { wire }
                    })
                })
                .collect();
            let mut panic = None;
            for (l, h) in handles.into_iter().enumerate() {
                if l as LocaleId != src {
                    self.locales[src as usize]
                        .stats
                        .am_sent
                        .fetch_add(1, Ordering::Relaxed);
                }
                match h.join() {
                    Ok(end) => max_end = max_end.max(end),
                    Err(p) => panic = Some(p),
                }
            }
            if let Some(p) = panic {
                resume_unwind(p);
            }
        });
        vtime::advance_to(max_end);
    }

    /// `coforall t in 0..#tasks`: run `tasks` concurrent tasks on the
    /// *current* locale and join, merging virtual time.
    pub fn coforall_tasks<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        let here = ctx::here();
        let parent_vt = vtime::now();
        let self_ptr = CorePtr(self as *const RuntimeCore);
        let mut max_end = parent_vt;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..tasks)
                .map(|t| {
                    let f = &f;
                    scope.spawn(move || {
                        // SAFETY: the scope joins before `self` can move.
                        let _g = unsafe { ctx::enter(self_ptr.get(), here) };
                        vtime::set(parent_vt);
                        f(t);
                        vtime::now()
                    })
                })
                .collect();
            let mut panic = None;
            for h in handles {
                match h.join() {
                    Ok(end) => max_end = max_end.max(end),
                    Err(p) => panic = Some(p),
                }
            }
            if let Some(p) = panic {
                resume_unwind(p);
            }
        });
        vtime::advance_to(max_end);
    }

    /// A distributed `forall i in 0..#n` over a cyclically distributed
    /// index space: index `i` has affinity to locale `i % num_locales`, and
    /// each locale runs `config.tasks_per_locale` worker tasks.
    ///
    /// `init(locale, task)` produces each task's private state — the
    /// equivalent of Chapel's `with (var tok = manager.register())` — and
    /// `body(&mut state, i)` runs for every index. Task-private state is
    /// dropped (e.g. tokens unregister) when the task finishes.
    pub fn forall_dist<T, I, F>(&self, n: usize, init: I, body: F)
    where
        T: Send,
        I: Fn(LocaleId, usize) -> T + Send + Sync,
        F: Fn(&mut T, usize) + Send + Sync,
    {
        self.forall_dist_tasks(n, self.config.tasks_per_locale, init, body)
    }

    /// [`Self::forall_dist`] with an explicit per-locale task count.
    pub fn forall_dist_tasks<T, I, F>(&self, n: usize, tasks: usize, init: I, body: F)
    where
        T: Send,
        I: Fn(LocaleId, usize) -> T + Send + Sync,
        F: Fn(&mut T, usize) + Send + Sync,
    {
        assert!(tasks >= 1, "need at least one task per locale");
        let num_locales = self.locales.len();
        let src = ctx::here();
        let parent_vt = vtime::now();
        let wire = self.config.network.am_wire_ns;
        let self_ptr = CorePtr(self as *const RuntimeCore);
        let mut max_end = parent_vt;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(num_locales * tasks);
            for l in 0..num_locales as LocaleId {
                for t in 0..tasks {
                    let init = &init;
                    let body = &body;
                    handles.push(scope.spawn(move || {
                        // SAFETY: the scope joins before `self` can move.
                        let _g = unsafe { ctx::enter(self_ptr.get(), l) };
                        vtime::set(if l == src {
                            parent_vt
                        } else {
                            parent_vt + wire
                        });
                        let mut state = init(l, t);
                        // Cyclic distribution: locale l owns indices
                        // l, l+L, l+2L, ...; its j-th local index is
                        // i = l + j*L, and task t handles j ≡ t (mod tasks).
                        let mut j = t;
                        loop {
                            let i = l as usize + j * num_locales;
                            if i >= n {
                                break;
                            }
                            body(&mut state, i);
                            j += tasks;
                        }
                        drop(state);
                        vtime::now() + if l == src { 0 } else { wire }
                    }));
                }
            }
            let mut panic = None;
            for h in handles {
                match h.join() {
                    Ok(end) => max_end = max_end.max(end),
                    Err(p) => panic = Some(p),
                }
            }
            if let Some(p) = panic {
                resume_unwind(p);
            }
        });
        let remote_spawns = (num_locales.saturating_sub(1)) * tasks;
        self.locales[src as usize]
            .stats
            .am_sent
            .fetch_add(remote_spawns as u64, Ordering::Relaxed);
        vtime::advance_to(max_end);
    }

    /// Install the telemetry span sink. May be called at most once per
    /// runtime (first install wins); returns whether this call installed
    /// it. Until a sink is installed, span emission costs one relaxed
    /// `OnceLock::get`.
    pub fn set_telemetry_sink(&self, sink: Arc<dyn Sink>) -> bool {
        self.telemetry_sink.set(sink).is_ok()
    }

    /// The installed telemetry sink, if any.
    pub fn telemetry_sink(&self) -> Option<&Arc<dyn Sink>> {
        self.telemetry_sink.get()
    }

    /// True when a telemetry sink is installed. Causal-trace id allocation
    /// and context propagation are gated on this, so the default
    /// (no-sink) path stays one `OnceLock::get`.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.telemetry_sink.get().is_some()
    }

    /// Allocate the causal-trace ids for a span emitted on `locale`:
    /// `(trace, span, parent)`. Under an ambient
    /// [`crate::telemetry::trace`] context the span joins that trace as a
    /// child; otherwise it roots its own trace (`trace == span`,
    /// `parent == 0`) — so every emitted span belongs to a rooted tree by
    /// construction. All-zero (and allocation-free) when no sink is
    /// installed.
    pub fn span_ids(&self, locale: LocaleId) -> (u64, u64, u64) {
        if !self.tracing() {
            return (0, 0, 0);
        }
        let own = self.locale(locale).next_span_id();
        match crate::telemetry::trace::current() {
            Some(c) => (c.trace, own, c.span),
            None => (own, own, 0),
        }
    }

    /// Build (lazily) and emit a [`Span`] to the installed sink. The
    /// closure is not even constructed into a span unless a sink is
    /// present.
    #[inline]
    pub fn emit_span(&self, f: impl FnOnce() -> Span) {
        if let Some(s) = self.telemetry_sink.get() {
            s.record(&f());
        }
    }

    /// Sum of all locales' communication counters.
    pub fn total_comm(&self) -> CommSnapshot {
        self.locales
            .iter()
            .map(|l| l.stats.snapshot())
            .fold(CommSnapshot::default(), |a, b| a + b)
    }

    /// Sum of all locales' telemetry registries: communication counters
    /// plus per-class latency histograms (see [`crate::telemetry`]).
    pub fn total_telemetry(&self) -> TelemetrySnapshot {
        self.locales
            .iter()
            .map(|l| l.stats.telemetry_snapshot())
            .fold(TelemetrySnapshot::default(), |a, b| a + b)
    }

    /// Total live tracked objects across all locales (should be zero after
    /// full reclamation).
    pub fn live_objects(&self) -> i64 {
        self.locales.iter().map(|l| l.heap.live_objects()).sum()
    }

    /// Reset all locales' counters and progress clocks. Callers must ensure
    /// quiescence (no tasks or in-flight messages).
    pub fn reset_metrics(&self) {
        for l in self.locales.iter() {
            l.reset_metrics();
        }
    }
}

impl std::fmt::Debug for RuntimeCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("num_locales", &self.locales.len())
            .field("network_atomics", &self.config.network.network_atomics)
            .field("pointer_mode", &self.config.pointer_mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_enters_locale_zero() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            assert_eq!(ctx::here(), 0);
        });
        assert_eq!(ctx::try_here(), None);
    }

    #[test]
    fn on_local_is_inline_and_free() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let before = rt.total_comm();
            let x = rt.on(0, || 41 + 1);
            assert_eq!(x, 42);
            let delta = rt.total_comm() - before;
            assert_eq!(delta.am_sent, 0, "local `on` must not communicate");
        });
    }

    #[test]
    fn on_remote_executes_there() {
        let rt = Runtime::cluster(3);
        rt.run(|| {
            let l = rt.on(2, ctx::here);
            assert_eq!(l, 2);
            let delta = rt.total_comm();
            assert_eq!(delta.am_sent, 1);
            assert_eq!(delta.am_handled, 1);
        });
    }

    #[test]
    fn on_remote_borrows_caller_stack() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let data = [1u64, 2, 3];
            let sum = rt.on(1, || data.iter().sum::<u64>());
            assert_eq!(sum, 6);
            // `data` still usable: it was only borrowed.
            assert_eq!(data.len(), 3);
        });
    }

    #[test]
    fn on_remote_charges_round_trip_vtime() {
        let rt = Runtime::cluster(2);
        let ((), span) = rt.run_measured(|| {
            rt.on(1, || ());
        });
        let net = &rt.config.network;
        assert_eq!(span, 2 * net.am_wire_ns + net.am_handler_ns);
    }

    #[test]
    fn nested_on_round_trips() {
        let rt = Runtime::cluster(3);
        rt.run(|| {
            let v = rt.on(1, || rt.on(2, || ctx::here() as u64 * 10));
            assert_eq!(v, 20);
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn remote_panic_propagates() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            rt.on(1, || panic!("boom"));
        });
    }

    #[test]
    fn progress_thread_survives_handler_panic() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.on(1, || panic!("first"));
            }));
            assert!(r.is_err());
            // The progress thread must still service new messages.
            assert_eq!(rt.on(1, || 7), 7);
        });
    }

    #[test]
    fn coforall_locales_visits_every_locale_once() {
        let rt = Runtime::cluster(4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        rt.run(|| {
            rt.coforall_locales(|l| {
                assert_eq!(ctx::here(), l);
                counts[l as usize].fetch_add(1, Ordering::Relaxed);
            });
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn coforall_tasks_runs_all_on_current_locale() {
        let rt = Runtime::cluster(2);
        let count = AtomicUsize::new(0);
        rt.run(|| {
            rt.coforall_tasks(8, |_| {
                assert_eq!(ctx::here(), 0);
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn coforall_vtime_is_max_not_sum() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        let ((), span) = rt.run_measured(|| {
            rt.coforall_tasks(4, |t| {
                vtime::charge((t as u64 + 1) * 100);
            });
        });
        assert_eq!(span, 400, "parallel tasks overlap in virtual time");
    }

    #[test]
    fn forall_dist_covers_index_space_exactly_once() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(3));
        let n = 100;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        rt.run(|| {
            rt.forall_dist_tasks(
                n,
                2,
                |_, _| (),
                |_, i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                    // Cyclic distribution: affinity locale is i % L.
                    assert_eq!(ctx::here() as usize, i % 3);
                },
            );
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} visited once");
        }
    }

    #[test]
    fn forall_dist_task_private_state_dropped() {
        struct Probe<'a>(&'a AtomicUsize);
        impl Drop for Probe<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        let drops = AtomicUsize::new(0);
        rt.run(|| {
            rt.forall_dist_tasks(10, 3, |_, _| Probe(&drops), |_, _| ());
        });
        assert_eq!(drops.load(Ordering::Relaxed), 2 * 3);
    }

    #[test]
    fn forall_dist_with_zero_indices_still_inits_tasks() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        let inits = AtomicUsize::new(0);
        rt.run(|| {
            rt.forall_dist_tasks(
                0,
                2,
                |_, _| {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |_, _| unreachable!("no indices to visit"),
            );
        });
        assert_eq!(inits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn handle_usable_from_ctx() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let h = ctx::current_runtime();
            assert_eq!(h.num_locales(), 2);
        });
    }

    #[test]
    fn run_measured_reports_zero_for_empty_body() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        let ((), span) = rt.run_measured(|| {});
        assert_eq!(span, 0);
    }

    #[test]
    fn reset_metrics_clears_counters() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            rt.on(1, || ());
        });
        assert!(rt.total_comm().am_sent > 0);
        rt.reset_metrics();
        assert!(rt.total_comm().is_zero());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn on_out_of_range_locale_panics() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            rt.on(5, || ());
        });
    }
}
