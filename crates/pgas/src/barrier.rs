//! A distributed sense-reversing barrier.
//!
//! Used by multi-phase workloads (e.g. the benchmark harness's
//! produce-then-consume phases) to synchronize tasks spread across
//! locales. The counter and generation live on a designated locale; each
//! `wait` is one remote atomic (RDMA or AM, per the usual routing) plus
//! polling on the generation word, so its cost model is faithful to a
//! flat PGAS barrier. (Chapel's own barriers are tree-based; a flat
//! barrier is enough for the scale the simulator runs at, and its
//! communication is easier to assert on in tests.)

use crate::globalptr::LocaleId;

use pgas_atomics_shim::AtomicInt;

/// Internal shim so `pgas-sim` does not depend on `pgas-atomics` (which
/// depends back on us): a minimal charged atomic, mirroring the routing
/// of `pgas_atomics::AtomicInt`.
mod pgas_atomics_shim {
    use std::sync::atomic::{AtomicU64, Ordering};

    use crate::ctx;
    use crate::engine::{self, AtomicPath};
    use crate::globalptr::LocaleId;

    pub struct AtomicInt {
        cell: AtomicU64,
        owner: LocaleId,
    }

    impl AtomicInt {
        pub fn new_on(owner: LocaleId, v: u64) -> AtomicInt {
            AtomicInt {
                cell: AtomicU64::new(v),
                owner,
            }
        }

        fn route<R: Send>(&self, op: impl FnOnce(&AtomicU64) -> R + Send) -> R {
            ctx::with_core(
                |core, _| match engine::remote_atomic_u64(core, self.owner) {
                    AtomicPath::Nic | AtomicPath::CpuLocal => op(&self.cell),
                    AtomicPath::ActiveMessage => core.on(self.owner, move || {
                        engine::handler_atomic_u64(core);
                        op(&self.cell)
                    }),
                },
            )
        }

        pub fn read(&self) -> u64 {
            self.route(|c| c.load(Ordering::SeqCst))
        }

        pub fn fetch_add(&self, v: u64) -> u64 {
            self.route(|c| c.fetch_add(v, Ordering::SeqCst))
        }

        pub fn write(&self, v: u64) {
            self.route(|c| c.store(v, Ordering::SeqCst))
        }
    }
}

/// A reusable barrier for a fixed number of participants.
pub struct DistBarrier {
    count: AtomicInt,
    generation: AtomicInt,
    participants: u64,
}

impl DistBarrier {
    /// A barrier for `participants` tasks, with its state homed on
    /// `owner`.
    pub fn new_on(owner: LocaleId, participants: usize) -> DistBarrier {
        assert!(
            participants >= 1,
            "a barrier needs at least one participant"
        );
        DistBarrier {
            count: AtomicInt::new_on(owner, 0),
            generation: AtomicInt::new_on(owner, 0),
            participants: participants as u64,
        }
    }

    /// A barrier homed on the current locale.
    pub fn new(participants: usize) -> DistBarrier {
        DistBarrier::new_on(crate::ctx::here(), participants)
    }

    /// Number of participating tasks.
    pub fn participants(&self) -> usize {
        self.participants as usize
    }

    /// Block until all participants of the current generation arrive.
    /// Reusable across generations.
    pub fn wait(&self) {
        let gen = self.generation.read();
        let arrived = self.count.fetch_add(1) + 1;
        if arrived == self.participants {
            // Last arrival: reset and release everyone.
            self.count.write(0);
            self.generation.write(gen + 1);
        } else {
            // Poll the generation. Each poll is a (charged) atomic read,
            // which is exactly what a flat PGAS barrier costs.
            while self.generation.read() == gen {
                std::thread::yield_now();
            }
        }
    }
}

impl std::fmt::Debug for DistBarrier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistBarrier")
            .field("participants", &self.participants)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_participant_never_blocks() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let b = DistBarrier::new(1);
            b.wait();
            b.wait();
        });
    }

    #[test]
    fn no_task_passes_before_all_arrive() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let b = DistBarrier::new(4);
            let before = AtomicUsize::new(0);
            let after_min = AtomicUsize::new(usize::MAX);
            rt.coforall_tasks(4, |_| {
                before.fetch_add(1, Ordering::SeqCst);
                b.wait();
                // By the time anyone passes, all 4 must have arrived.
                after_min.fetch_min(before.load(Ordering::SeqCst), Ordering::SeqCst);
            });
            assert_eq!(after_min.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let b = DistBarrier::new(3);
            let phase = AtomicUsize::new(0);
            rt.coforall_tasks(3, |_| {
                for p in 0..5 {
                    b.wait();
                    // Everyone observes the same phase between barriers.
                    assert_eq!(phase.load(Ordering::SeqCst), p);
                    b.wait();
                    if p < 4 {
                        let _ =
                            phase.compare_exchange(p, p + 1, Ordering::SeqCst, Ordering::SeqCst);
                    }
                }
            });
        });
    }

    #[test]
    fn works_across_locales() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let b = DistBarrier::new_on(0, 4);
            let arrivals = AtomicUsize::new(0);
            rt.coforall_locales(|_| {
                arrivals.fetch_add(1, Ordering::SeqCst);
                b.wait();
                assert_eq!(arrivals.load(Ordering::SeqCst), 4);
            });
        });
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let _ = DistBarrier::new(0);
        });
    }
}
