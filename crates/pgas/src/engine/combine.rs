//! Remote-operation combining — flat combining over the AM fallback path.
//!
//! When several tasks on one locale concurrently issue remote operations
//! toward the *same* destination (remote atomics with network atomics off,
//! wide-pointer DCAS, deferred frees), each would normally pay a full
//! active-message round trip, and the destination's progress service would
//! serialize the handlers one dispatch at a time. Combining turns that
//! N-message burst into one: tasks *announce* their operation on a
//! per-destination publication list (a lock-free Treiber stack of
//! stack-allocated nodes), and one task — the elected *combiner* — drains
//! the list, ships the whole batch as a single bulk active message, and
//! executes every rider in announce order inside one handler dispatch.
//!
//! Protocol (flat combining, Hendler et al., adapted to a blocking PGAS
//! `on`):
//!
//! 1. **Announce.** The caller stack-allocates an [`OpNode`] holding its
//!    closure and publication vtime and CAS-pushes it onto the destination
//!    queue's announce list.
//! 2. **Elect.** While its node is not `done`, the caller tries to CAS the
//!    queue's `combiner` flag. Losers spin/yield; the winner drains the
//!    announce list (swap to null, reverse for FIFO), *lingers* briefly
//!    (bounded yield-and-redrain rounds, so batch formation does not depend
//!    on hardware parallelism) and ships batches until the list is empty or
//!    its own operation completed, then releases the role. A node can never
//!    strand: any announced node belongs to a blocked caller, and a blocked
//!    caller keeps volunteering.
//! 3. **Ship.** The combiner advances its clock to the latest publication
//!    vtime in the batch (causality: the message cannot depart before the
//!    operations it carries exist), then sends one blocking AM per
//!    [`crate::config::RuntimeConfig::combine_max_batch`]-sized chunk.
//! 4. **Execute.** The destination handler runs the riders in announce
//!    order. Each rider charges `combine_item_ns` dispatch plus its own
//!    body cost, records its completion vtime in its node, and sets `done`
//!    (Release). The wire and the fixed `am_handler_ns` are paid once per
//!    chunk — that is the entire win.
//! 5. **Distribute.** Each waiting task observes `done` (Acquire), advances
//!    its own clock to its rider's completion time plus the reply wire, and
//!    re-raises its rider's panic, exactly as a private blocking `on` would
//!    have.
//!
//! Accounting: each shipped chunk counts one `am_sent` + `am_batches` +
//! `combines`, with the rider count added to `am_batch_items` and
//! `combined_ops` — so `combined_ops` conserves the operation total and
//! `am_sent == combines` for a purely combined workload.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use crate::am;
use crate::comm;
use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;
use crate::telemetry::{
    trace::{self, TraceCtx},
    OpClass, Span,
};
use crate::vtime;

/// One announced remote operation, stack-allocated in the publishing task's
/// [`submit`] frame. The publisher blocks until `done`, which is what keeps
/// the node alive for the combiner and the remote handler.
struct OpNode {
    /// The operation body; taken exactly once by the destination handler.
    thunk: UnsafeCell<Option<Box<dyn FnOnce() + Send + 'static>>>,
    /// The publisher's virtual clock at announce time.
    publish_vtime: u64,
    /// Causal-trace ids of this rider's [`OpClass::CombineRide`] span —
    /// `(trace, span, parent)`, allocated by the publisher at announce
    /// time (all-zero when tracing is off). The destination handler
    /// installs the matching context around the rider's thunk, and the
    /// bulk AM carrying the chunk is parented under the *last* rider's
    /// span (the AM's interval nests exactly inside that ride).
    ride: (u64, u64, u64),
    /// Virtual time at which the rider finished on the destination.
    end_vtime: AtomicU64,
    /// A panic raised by the rider, to be re-thrown at the publisher.
    panic: UnsafeCell<Option<Box<dyn std::any::Any + Send>>>,
    /// Set (Release) by the handler after `end_vtime`/`panic` are written.
    done: AtomicBool,
    /// Next node in the announce list (Treiber stack link).
    next: AtomicPtr<OpNode>,
}

impl OpNode {
    fn new(
        thunk: Box<dyn FnOnce() + Send + 'static>,
        publish_vtime: u64,
        ride: (u64, u64, u64),
    ) -> OpNode {
        OpNode {
            thunk: UnsafeCell::new(Some(thunk)),
            publish_vtime,
            ride,
            end_vtime: AtomicU64::new(0),
            panic: UnsafeCell::new(None),
            done: AtomicBool::new(false),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }
}

/// How many yield-and-redrain rounds the combiner spends gathering riders
/// before a non-empty batch departs. Each round lets every runnable peer
/// task announce (one `yield_now` cycles the run queue on a saturated
/// host); the loop exits early the moment a round adds nothing.
const LINGER_ROUNDS: u32 = 3;

/// A raw pointer to an [`OpNode`], sendable into the handler thunk. Safety
/// rests on the protocol: the publishing task keeps its node alive until
/// `done`, and only the shipping handler touches the cells before that.
#[derive(Clone, Copy)]
struct NodePtr(*const OpNode);

// SAFETY: see NodePtr — access is serialized by the combining protocol.
unsafe impl Send for NodePtr {}

/// Announce list + combiner election flag for one (source locale,
/// destination locale) pair.
pub(crate) struct CombineQueue {
    head: AtomicPtr<OpNode>,
    combiner: AtomicBool,
}

impl CombineQueue {
    fn new() -> CombineQueue {
        CombineQueue {
            head: AtomicPtr::new(std::ptr::null_mut()),
            combiner: AtomicBool::new(false),
        }
    }

    /// CAS-push `node` onto the announce list. ABA-safe without tags: a
    /// successful CAS proves the observed head is the *currently linked*
    /// node at that address (drains take the whole list atomically and
    /// nodes are never re-pushed), so the `next` we stored still points at
    /// the true remainder of the list.
    fn push(&self, node: &OpNode) {
        let ptr = node as *const OpNode as *mut OpNode;
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            node.next.store(head, Ordering::Relaxed);
            match self
                .head
                .compare_exchange_weak(head, ptr, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
    }

    /// Atomically take the whole announce list and append it to `out` in
    /// FIFO (announce) order.
    fn drain_fifo(&self, out: &mut Vec<NodePtr>) {
        let mut p = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
        let start = out.len();
        while !p.is_null() {
            out.push(NodePtr(p));
            // SAFETY: the node's publisher is blocked in `submit` until
            // `done`, which nobody has set yet.
            p = unsafe { (*p).next.load(Ordering::Relaxed) };
        }
        out[start..].reverse();
    }
}

/// Per-destination [`CombineQueue`]s for one source locale; lives in
/// [`crate::locale::Locale`].
pub(crate) struct CombineHub {
    queues: Box<[CombineQueue]>,
}

impl CombineHub {
    pub(crate) fn new(num_locales: usize) -> CombineHub {
        CombineHub {
            queues: (0..num_locales).map(|_| CombineQueue::new()).collect(),
        }
    }
}

/// Announce `f` toward `dest`, block until it has executed there, merge its
/// virtual completion time back into the caller's clock, and propagate a
/// panic. Must not be called with `dest == here()` — the engine handles the
/// inline case.
pub(crate) fn submit(
    core: &RuntimeCore,
    src: LocaleId,
    dest: LocaleId,
    f: Box<dyn FnOnce() + Send + '_>,
) {
    debug_assert_ne!(src, dest, "combining requires a remote destination");
    // SAFETY: lifetime erasure under the same contract as
    // `am::remote_call` — this function blocks until the operation has
    // executed, so borrows inside `f` cannot outlive this frame.
    let f: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(f) };
    let node = OpNode::new(f, vtime::now(), core.span_ids(src));
    let q = &core.locale(src).combine.queues[dest as usize];
    q.push(&node);

    let mut spins = 0u32;
    let mut batch: Vec<NodePtr> = Vec::new();
    while !node.done.load(Ordering::Acquire) {
        if q.combiner
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // We are the combiner: drain and ship until the announce list
            // is empty or our own operation has been carried by a batch.
            loop {
                batch.clear();
                q.drain_fifo(&mut batch);
                if batch.is_empty() {
                    break;
                }
                // Linger before shipping: peers that are runnable but not
                // currently scheduled (batch formation must not depend on
                // hardware parallelism — the host may be a single core)
                // get a chance to announce and ride this message. Bounded:
                // stop as soon as a linger round finds no new riders.
                let max_batch = core.config.combine_max_batch.max(1);
                for _ in 0..LINGER_ROUNDS {
                    if batch.len() >= max_batch {
                        break;
                    }
                    let before = batch.len();
                    std::thread::yield_now();
                    q.drain_fifo(&mut batch);
                    if batch.len() == before {
                        break;
                    }
                }
                ship(core, src, dest, &batch);
                if node.done.load(Ordering::Acquire) {
                    break;
                }
            }
            q.combiner.store(false, Ordering::Release);
        } else {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    let end = node.end_vtime.load(Ordering::Acquire);
    vtime::advance_to(end + core.config.network.am_wire_ns);
    // The rider's end-to-end combining trip: publish → executed on dest →
    // reply wire. Emitted by the publisher (the only task that knows both
    // endpoints), under the ids allocated at announce time.
    let (ride_trace, ride_span, ride_parent) = node.ride;
    if ride_span != 0 {
        core.emit_span(|| Span {
            class: OpClass::CombineRide,
            src,
            dest,
            issue_vtime: node.publish_vtime,
            arrive_vtime: node.publish_vtime,
            start_vtime: node.publish_vtime,
            end_vtime: end + core.config.network.am_wire_ns,
            tag: 0,
            trace: ride_trace,
            span: ride_span,
            parent: ride_parent,
        });
    }
    // SAFETY: `done` was set with Release after the handler wrote the
    // panic cell; the Acquire loads above synchronize, and the node is
    // private again once done.
    if let Some(payload) = unsafe { (*node.panic.get()).take() } {
        resume_unwind(payload);
    }
}

/// Ship a drained batch to `dest` as one blocking bulk AM per
/// `combine_max_batch` chunk, executing the riders in announce order inside
/// the handler.
fn ship(core: &RuntimeCore, src: LocaleId, dest: LocaleId, batch: &[NodePtr]) {
    // Causality: the combined message cannot depart before the latest
    // publication it carries (`advance_to` never rewinds).
    let depart = batch
        .iter()
        // SAFETY: publishers are blocked until their node is done.
        .map(|p| unsafe { (*p.0).publish_vtime })
        .max()
        .unwrap_or(0);
    vtime::advance_to(depart);
    let stats = &core.locale(src).stats;
    for chunk in batch.chunks(core.config.combine_max_batch.max(1)) {
        let n = chunk.len() as u64;
        stats.combines.fetch_add(1, Ordering::Relaxed);
        stats.combined_ops.fetch_add(n, Ordering::Relaxed);
        stats.am_batches.fetch_add(1, Ordering::Relaxed);
        stats.am_batch_items.fetch_add(n, Ordering::Relaxed);
        // Combine occupancy histogram: how many riders each combined
        // message actually carried (the whole point of the layer).
        stats.record(crate::telemetry::OpClass::CombineOccupancy, n);
        let riders: Vec<NodePtr> = chunk.to_vec();
        // Causal tracing: the bulk AM is parented under the *last* rider's
        // CombineRide span — the AM's end (last rider's finish + reply
        // wire) is exactly that ride's end, so the AM interval nests
        // inside it. Each rider's thunk then runs under its *own* ride
        // context, so spans a rider causes join the rider's trace, not the
        // shipping combiner's.
        // SAFETY (both reads): publishers are blocked until done.
        let last_ride = unsafe { (*chunk.last().expect("non-empty chunk").0).ride };
        let ship_ctx = (last_ride.1 != 0).then(|| {
            trace::enter(Some(TraceCtx {
                trace: last_ride.0,
                span: last_ride.1,
            }))
        });
        // The combiner may have been elected while *its own* operation was
        // in an idempotent-class scope, but the batch carries other tasks'
        // riders (CAS publishes, deferred frees) that must execute exactly
        // once. Pin the send to the non-droppable class so fault injection
        // can never lose a combined message, whatever the electing task's
        // class was.
        crate::faults::with_class(crate::faults::OpClass::NonIdempotent, || {
            am::remote_call(
                core,
                src,
                dest,
                Box::new(move || {
                    for p in &riders {
                        // SAFETY: the publishing task blocks in `submit` until
                        // `done`, keeping the node alive; only this handler
                        // touches the thunk/panic cells before `done` is set.
                        unsafe {
                            let rider = &*p.0;
                            comm::charge_combine_item(core);
                            let thunk = (*rider.thunk.get())
                                .take()
                                .expect("combined operation executed twice");
                            let rctx = (rider.ride.1 != 0).then(|| {
                                trace::enter(Some(TraceCtx {
                                    trace: rider.ride.0,
                                    span: rider.ride.1,
                                }))
                            });
                            let out = catch_unwind(AssertUnwindSafe(thunk));
                            drop(rctx);
                            if let Err(payload) = out {
                                *rider.panic.get() = Some(payload);
                            }
                            rider.end_vtime.store(vtime::now(), Ordering::Relaxed);
                            rider.done.store(true, Ordering::Release);
                        }
                    }
                }),
            );
        });
        drop(ship_ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicU64;

    fn combining_cluster() -> Runtime {
        Runtime::new(
            RuntimeConfig::cluster(2)
                .without_network_atomics()
                .with_combining(true),
        )
    }

    #[test]
    fn singleton_combined_op_counts_once() {
        let rt = combining_cluster();
        rt.run(|| {
            rt.reset_metrics();
            let v = rt.on_combining(1, || 42u32);
            assert_eq!(v, 42);
            let s = rt.total_comm();
            assert_eq!(s.am_sent, 1);
            assert_eq!(s.am_handled, 1);
            assert_eq!(s.combines, 1);
            assert_eq!(s.combined_ops, 1);
            assert_eq!(s.am_batches, 1);
            assert_eq!(s.am_batch_items, 1);
        });
    }

    #[test]
    fn concurrent_ops_conserve_totals_and_coalesce() {
        let rt = combining_cluster();
        rt.run(|| {
            let target = AtomicU64::new(0);
            let tasks = 4usize;
            let per_task = 64u64;
            rt.reset_metrics();
            rt.coforall_tasks(tasks, |_| {
                for _ in 0..per_task {
                    rt.on_combining(1, || {
                        target.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
            let n = tasks as u64 * per_task;
            assert_eq!(target.load(Ordering::Relaxed), n, "memory effect");
            let s = rt.total_comm();
            assert_eq!(s.combined_ops, n, "every op rode the combining layer");
            assert_eq!(s.am_batch_items, n);
            assert_eq!(s.am_sent, s.combines, "one AM per combined batch");
            assert_eq!(s.am_handled, s.am_sent);
            assert!(s.am_sent <= n);
        });
    }

    #[test]
    fn combining_disabled_leaves_counters_untouched() {
        let rt = Runtime::new(RuntimeConfig::cluster(2).without_network_atomics());
        rt.run(|| {
            rt.reset_metrics();
            rt.on_combining(1, || ());
            let s = rt.total_comm();
            assert_eq!(s.am_sent, 1);
            assert_eq!(s.combines, 0, "toggle off must use the plain AM path");
            assert_eq!(s.combined_ops, 0);
        });
    }

    #[test]
    fn combined_batches_survive_fault_injection_in_fifo_order() {
        use crate::faults::{with_class, FaultPlan, OpClass};
        // Aggressive drops + dups + delays. Combined messages are pinned
        // to the non-droppable class by `ship`, so even with every task in
        // an idempotent scope nothing may be lost, and each task's ops
        // must still execute in announce (issue) order.
        let rt = Runtime::new(
            RuntimeConfig::zero_latency(2)
                .without_network_atomics()
                .with_combining(true)
                .with_faults(
                    FaultPlan::seeded(77)
                        .with_drops(500)
                        .with_dups(300)
                        .with_delays(300, 2_000),
                ),
        );
        rt.run(|| {
            let tasks = 4usize;
            let per_task = 50u64;
            let order: Vec<parking_lot::Mutex<Vec<u64>>> = (0..tasks)
                .map(|_| parking_lot::Mutex::new(Vec::new()))
                .collect();
            let order = &order;
            rt.coforall_tasks(tasks, |t| {
                for i in 0..per_task {
                    with_class(OpClass::Idempotent, || {
                        rt.on_combining(1, || {
                            order[t].lock().push(i);
                        })
                    });
                }
            });
            let s = rt.total_comm();
            for (t, seen) in order.iter().enumerate() {
                let seen = seen.lock();
                assert_eq!(seen.len() as u64, per_task, "task {t}: nothing lost");
                assert!(
                    seen.windows(2).all(|w| w[0] < w[1]),
                    "task {t}: per-destination FIFO broken: {:?}",
                    &*seen
                );
            }
            assert_eq!(s.combined_ops, tasks as u64 * per_task);
            assert_eq!(
                s.injected_drops, 0,
                "combined messages are never droppable, whatever the \
                 electing task's class scope"
            );
        });
    }

    #[test]
    #[should_panic(expected = "combined boom")]
    fn rider_panic_propagates_to_its_publisher() {
        let rt = combining_cluster();
        rt.run(|| {
            rt.on_combining(1, || panic!("combined boom"));
        });
    }

    #[test]
    fn max_batch_chunks_large_drains() {
        let rt = Runtime::new(
            RuntimeConfig::cluster(2)
                .without_network_atomics()
                .with_combining(true)
                .with_combine_max_batch(1),
        );
        rt.run(|| {
            rt.reset_metrics();
            rt.coforall_tasks(4, |_| {
                for _ in 0..8 {
                    rt.on_combining(1, || ());
                }
            });
            let s = rt.total_comm();
            // Chunk size 1 degenerates every rider to its own AM.
            assert_eq!(s.combined_ops, 32);
            assert_eq!(s.combines, 32);
            assert_eq!(s.am_sent, 32);
        });
    }

    proptest! {
        #[test]
        fn interleaved_pushes_and_drains_preserve_fifo(
            segments in proptest::collection::vec(0usize..8, 1..8),
        ) {
            let q = CombineQueue::new();
            let total: usize = segments.iter().sum();
            let nodes: Vec<Box<OpNode>> = (0..total)
                .map(|_| Box::new(OpNode::new(Box::new(|| {}), 0, (0, 0, 0))))
                .collect();
            let mut idx = 0;
            let mut drained: Vec<*const OpNode> = Vec::new();
            let mut out = Vec::new();
            for &seg in &segments {
                for _ in 0..seg {
                    q.push(&nodes[idx]);
                    idx += 1;
                }
                out.clear();
                q.drain_fifo(&mut out);
                drained.extend(out.iter().map(|p| p.0));
            }
            let want: Vec<*const OpNode> =
                nodes.iter().map(|b| &**b as *const OpNode).collect();
            prop_assert_eq!(drained, want);
        }
    }
}
