//! Key-hash → owning-locale routing for the global-view structures tier.
//!
//! The follow-up paper ("Scaling Shared-Memory Data Structures as
//! Distributed Global-View Data Structures in the PGAS model") shows that
//! the flat structures of the source paper only scale once they are
//! *privatized* into per-locale shards with locale-aware routing: every
//! operation first asks *which locale owns this key* and then either takes
//! a pure-local path (no communication) or ships one message to the owner,
//! instead of pointer-chasing a chain whose links scatter across the
//! machine.
//!
//! [`ShardRouter`] is that routing decision, factored out of any one
//! structure so the map, the ordered set and application code agree on
//! ownership. It is engine-portable by construction: the mapping is a pure
//! function of `(key hash, active shard count)` — no global pointers, no
//! simulator state — so the same router drives the in-process simulator
//! and the multi-process [`crate::config::EngineKind::Proc`] backend,
//! where the hash routes symmetric-heap offsets instead of chain heads
//! (see [`owner_of`]).
//!
//! The *active* shard count can be retargeted at runtime (modeling a
//! locale-count change: nodes joining an allocation, or a structure being
//! compacted onto fewer locales). Retargeting only changes the mapping —
//! migrating the keys that changed owner is the structure's job (a bulk
//! scatter; see `ShardedHashMap::rebalance` in `pgas-structures`). Each
//! retarget bumps a generation counter so cached routing decisions can be
//! revalidated cheaply.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::ctx;
use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;

/// Finalizing mix (SplitMix64) decorrelating the shard choice from the
/// low hash bits that structures use for bucket indexing: shard = high
/// mixed bits, bucket = low raw bits, so a power-of-two bucket table does
/// not alias the shard decision.
#[inline]
pub fn mix64(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The pure routing function: which of `active` shards owns `hash`.
///
/// This is the whole protocol — a mixed hash reduced onto the active
/// shard set — exposed as a free function so engine-portable code (the
/// proc backend routes symmetric-heap offsets with it) needs no
/// [`ShardRouter`] instance.
#[inline]
pub fn owner_of(hash: u64, active: usize) -> LocaleId {
    debug_assert!(active > 0, "router needs at least one active shard");
    (mix64(hash) % active.max(1) as u64) as LocaleId
}

/// Maps key hashes onto owning locales, with a retargetable active set.
///
/// Shards are identified with locales `0..active()`; a structure built on
/// the router homes shard `s`'s memory on locale `s`, so `owner(h) ==
/// here()` means "this key's shard is local — no communication needed".
#[derive(Debug)]
pub struct ShardRouter {
    /// Locales the owning runtime has (upper bound for `active`).
    locales: usize,
    /// Number of shards currently receiving keys (`1..=locales`).
    active: AtomicUsize,
    /// Bumped on every [`Self::retarget`]; lets callers detect that a
    /// previously computed owner may be stale.
    generation: AtomicU64,
}

impl ShardRouter {
    /// A router spanning every locale of `core`'s runtime.
    pub fn new(core: &RuntimeCore) -> ShardRouter {
        Self::with_active(core, core.num_locales())
    }

    /// A router spanning every locale of the *current* runtime.
    pub fn for_current_runtime() -> ShardRouter {
        let rt = ctx::current_runtime();
        Self::with_active(&rt, rt.num_locales())
    }

    /// A router over `core`'s locales with only the first `active` shards
    /// receiving keys (clamped to `1..=num_locales`).
    pub fn with_active(core: &RuntimeCore, active: usize) -> ShardRouter {
        let locales = core.num_locales();
        ShardRouter {
            locales,
            active: AtomicUsize::new(active.clamp(1, locales)),
            generation: AtomicU64::new(0),
        }
    }

    /// The locale owning `hash` under the current active set.
    #[inline]
    pub fn owner(&self, hash: u64) -> LocaleId {
        owner_of(hash, self.active())
    }

    /// True when the current locale owns `hash` — the pure-local fast
    /// path predicate.
    #[inline]
    pub fn is_local(&self, hash: u64) -> bool {
        self.owner(hash) == ctx::here()
    }

    /// Number of shards currently receiving keys.
    #[inline]
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Total locales the router spans (the maximum active count).
    #[inline]
    pub fn num_locales(&self) -> usize {
        self.locales
    }

    /// Current mapping generation (bumped by every [`Self::retarget`]).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Change the active shard count (clamped to `1..=num_locales`),
    /// returning the previous count. The caller owns migrating keys whose
    /// owner changed; until it does, lookups routed under the new mapping
    /// will not see entries still sitting in their old shard.
    pub fn retarget(&self, active: usize) -> usize {
        let new = active.clamp(1, self.locales);
        let prev = self.active.swap(new, Ordering::AcqRel);
        if prev != new {
            self.generation.fetch_add(1, Ordering::AcqRel);
        }
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;

    #[test]
    fn owners_stay_in_active_range_and_cover_it() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let r = ShardRouter::new(&rt);
            assert_eq!(r.active(), 4);
            let mut seen = [false; 4];
            for h in 0..4096u64 {
                let o = r.owner(h) as usize;
                assert!(o < 4, "owner {o} out of range");
                seen[o] = true;
            }
            assert!(seen.iter().all(|&s| s), "4096 hashes must cover 4 shards");
        });
    }

    #[test]
    fn routing_is_deterministic_and_mix_decorrelates_low_bits() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let r = ShardRouter::new(&rt);
            for h in 0..512u64 {
                assert_eq!(r.owner(h), r.owner(h), "pure function of the hash");
                assert_eq!(r.owner(h), owner_of(h, 4), "router == free function");
            }
            // Consecutive integers (identical high bits) must still spread:
            // the mix is what keeps bucket index and shard choice apart.
            let first = r.owner(0);
            assert!(
                (1..64u64).any(|h| r.owner(h) != first),
                "mixer must spread consecutive hashes"
            );
        });
    }

    #[test]
    fn retarget_bumps_generation_and_clamps() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let r = ShardRouter::with_active(&rt, 2);
            assert_eq!(r.active(), 2);
            let g0 = r.generation();
            assert_eq!(r.retarget(4), 2);
            assert_eq!(r.active(), 4);
            assert_eq!(r.generation(), g0 + 1);
            // No-op retarget: generation unchanged.
            assert_eq!(r.retarget(4), 4);
            assert_eq!(r.generation(), g0 + 1);
            // Clamped to the locale count.
            assert_eq!(r.retarget(64), 4);
            assert_eq!(r.active(), 4);
            assert_eq!(r.retarget(0), 4);
            assert_eq!(r.active(), 1);
        });
    }

    #[test]
    fn is_local_matches_owner_on_every_locale() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let r = ShardRouter::new(&rt);
            rt.coforall_locales(|l| {
                for h in 0..256u64 {
                    assert_eq!(r.is_local(h), r.owner(h) == l);
                }
            });
        });
    }
}
