//! Global (wide) pointers with optional compression.
//!
//! Chapel represents a class reference as a 128-bit *wide pointer*: a 64-bit
//! virtual address plus 64 bits of locality information. The paper's key
//! enabling trick (§II-A) is *pointer compression*: on current hardware only
//! the low 48 bits of a virtual address are significant, so a 16-bit locale
//! id fits in the upper bits, producing a 64-bit value on which single-word
//! (and therefore RDMA-capable) atomics work. Installations with more than
//! 2^16 locales must fall back to the full-width representation and
//! double-word CAS.
//!
//! Both representations are provided: [`GlobalPtr`] (compressed) and
//! [`WideGlobalPtr`] (full width). The low bit of the address can carry a
//! *mark* (used by Harris-style linked lists); addresses of real objects are
//! at least 2-byte aligned so the bit is otherwise unused.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// Identifier of a simulated locale (compute node).
pub type LocaleId = u16;

const ADDR_BITS: u32 = 48;
const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;
const MARK_BIT: u64 = 1;

/// A compressed global pointer: 16-bit locale id in the top bits, 48-bit
/// virtual address below. `Copy`, 8 bytes, and suitable for storage in an
/// `AtomicU64` — which is precisely what enables RDMA atomics on it.
pub struct GlobalPtr<T> {
    raw: u64,
    _marker: PhantomData<*mut T>,
}

impl<T> GlobalPtr<T> {
    /// The null pointer (locale 0, address 0).
    #[inline]
    pub const fn null() -> Self {
        GlobalPtr {
            raw: 0,
            _marker: PhantomData,
        }
    }

    /// Compress `(locale, addr)` into a single word.
    ///
    /// # Panics
    /// If `addr` does not fit in 48 bits — the same constraint real pointer
    /// compression relies on (x86-64/AArch64 user-space addresses).
    #[inline]
    pub fn new(locale: LocaleId, addr: usize) -> Self {
        let addr = addr as u64;
        assert!(
            addr & !ADDR_MASK == 0,
            "address {addr:#x} exceeds 48 bits; pointer compression requires \
             canonical user-space addresses"
        );
        GlobalPtr {
            raw: ((locale as u64) << ADDR_BITS) | addr,
            _marker: PhantomData,
        }
    }

    /// Build a pointer to a local in-process object.
    #[inline]
    pub fn from_raw_parts(locale: LocaleId, ptr: *mut T) -> Self {
        Self::new(locale, ptr as usize)
    }

    /// Reconstruct from a previously-extracted raw word.
    #[inline]
    pub const fn from_bits(raw: u64) -> Self {
        GlobalPtr {
            raw,
            _marker: PhantomData,
        }
    }

    /// The raw 64-bit representation (what an `AtomicU64` stores).
    #[inline]
    pub const fn into_bits(self) -> u64 {
        self.raw
    }

    /// Owning locale encoded in the pointer. No communication is required
    /// to learn an object's affinity — it is carried in the reference.
    #[inline]
    pub fn locale(self) -> LocaleId {
        (self.raw >> ADDR_BITS) as LocaleId
    }

    /// The 48-bit virtual address with any mark bit cleared.
    #[inline]
    pub fn addr(self) -> usize {
        (self.raw & ADDR_MASK & !MARK_BIT) as usize
    }

    /// True for the all-zero pointer (ignores the mark bit).
    #[inline]
    pub fn is_null(self) -> bool {
        self.raw & ADDR_MASK & !MARK_BIT == 0
    }

    /// In-process raw pointer. Dereferencing is `unsafe` and only valid
    /// while the object is alive; the simulator shares one address space,
    /// which stands in for RDMA-registered memory.
    #[inline]
    pub fn as_ptr(self) -> *mut T {
        self.addr() as *mut T
    }

    /// Dereference the pointer.
    ///
    /// # Safety
    /// The object must be alive and not concurrently mutated in ways that
    /// violate `&T` aliasing. In an epoch-protected region this is exactly
    /// the guarantee the `EpochManager` provides.
    #[inline]
    pub unsafe fn deref<'a>(self) -> &'a T {
        &*self.as_ptr()
    }

    /// True if the Harris mark bit is set.
    #[inline]
    pub fn is_marked(self) -> bool {
        self.raw & MARK_BIT != 0
    }

    /// Copy of this pointer with the mark bit set.
    #[inline]
    pub fn with_mark(self) -> Self {
        GlobalPtr {
            raw: self.raw | MARK_BIT,
            _marker: PhantomData,
        }
    }

    /// Copy of this pointer with the mark bit cleared.
    #[inline]
    pub fn without_mark(self) -> Self {
        GlobalPtr {
            raw: self.raw & !MARK_BIT,
            _marker: PhantomData,
        }
    }

    /// Widen to the 128-bit representation.
    #[inline]
    pub fn widen(self) -> WideGlobalPtr<T> {
        WideGlobalPtr {
            locale: self.locale() as u64,
            addr: self.raw & ADDR_MASK,
            _marker: PhantomData,
        }
    }

    /// Cast to a pointer of another type (same locale and address).
    #[inline]
    pub fn cast<U>(self) -> GlobalPtr<U> {
        GlobalPtr {
            raw: self.raw,
            _marker: PhantomData,
        }
    }
}

// A GlobalPtr is just an address; sharing it between threads is safe, and
// all dereferences are unsafe operations with their own obligations.
unsafe impl<T> Send for GlobalPtr<T> {}
unsafe impl<T> Sync for GlobalPtr<T> {}

impl<T> Clone for GlobalPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for GlobalPtr<T> {}

impl<T> PartialEq for GlobalPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for GlobalPtr<T> {}

impl<T> Hash for GlobalPtr<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<T> fmt::Debug for GlobalPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalPtr")
            .field("locale", &self.locale())
            .field("addr", &format_args!("{:#x}", self.addr()))
            .field("marked", &self.is_marked())
            .finish()
    }
}

impl<T> Default for GlobalPtr<T> {
    fn default() -> Self {
        Self::null()
    }
}

/// The uncompressed 128-bit wide pointer: full 64-bit address plus 64 bits
/// of locality information. This is the representation forced on systems
/// with more than 2^16 locales; atomics on it require double-word CAS and
/// remote operations cannot use NIC atomics (§II-A).
pub struct WideGlobalPtr<T> {
    locale: u64,
    addr: u64,
    _marker: PhantomData<*mut T>,
}

impl<T> WideGlobalPtr<T> {
    /// The null wide pointer.
    #[inline]
    pub const fn null() -> Self {
        WideGlobalPtr {
            locale: 0,
            addr: 0,
            _marker: PhantomData,
        }
    }

    /// Construct from an (unrestricted) locale id and full 64-bit address.
    #[inline]
    pub fn new(locale: u64, addr: usize) -> Self {
        WideGlobalPtr {
            locale,
            addr: addr as u64,
            _marker: PhantomData,
        }
    }

    /// Locality word.
    #[inline]
    pub fn locale(&self) -> u64 {
        self.locale
    }

    /// Address word (mark bit cleared).
    #[inline]
    pub fn addr(&self) -> usize {
        (self.addr & !MARK_BIT) as usize
    }

    /// True for the all-zero pointer.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.addr & !MARK_BIT == 0
    }

    /// In-process raw pointer.
    #[inline]
    pub fn as_ptr(&self) -> *mut T {
        self.addr() as *mut T
    }

    /// Pack into a `(high, low)` pair of words for 128-bit atomic storage:
    /// high word = locality, low word = address.
    #[inline]
    pub fn into_words(self) -> (u64, u64) {
        (self.locale, self.addr)
    }

    /// Unpack from the `(high, low)` word pair.
    #[inline]
    pub fn from_words(locale: u64, addr: u64) -> Self {
        WideGlobalPtr {
            locale,
            addr,
            _marker: PhantomData,
        }
    }

    /// Compress, panicking if the address exceeds 48 bits or the locale
    /// exceeds 16 bits (i.e. compression is actually impossible).
    #[inline]
    pub fn compress(self) -> GlobalPtr<T> {
        assert!(
            self.locale < (1 << 16),
            "locale {} does not fit in 16 bits; compression unavailable",
            self.locale
        );
        GlobalPtr::new(self.locale as LocaleId, self.addr as usize)
    }
}

unsafe impl<T> Send for WideGlobalPtr<T> {}
unsafe impl<T> Sync for WideGlobalPtr<T> {}

impl<T> Clone for WideGlobalPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for WideGlobalPtr<T> {}

impl<T> PartialEq for WideGlobalPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.locale == other.locale && self.addr == other.addr
    }
}
impl<T> Eq for WideGlobalPtr<T> {}

impl<T> fmt::Debug for WideGlobalPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WideGlobalPtr")
            .field("locale", &self.locale)
            .field("addr", &format_args!("{:#x}", self.addr))
            .finish()
    }
}

impl<T> Default for WideGlobalPtr<T> {
    fn default() -> Self {
        Self::null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let p = GlobalPtr::<u32>::new(7, 0x1234_5678_9abc);
        assert_eq!(p.locale(), 7);
        assert_eq!(p.addr(), 0x1234_5678_9abc);
        assert!(!p.is_null());
        assert!(!p.is_marked());
    }

    #[test]
    fn null_is_null() {
        let p = GlobalPtr::<u64>::null();
        assert!(p.is_null());
        assert_eq!(p.locale(), 0);
        assert_eq!(p.addr(), 0);
        assert_eq!(p, GlobalPtr::default());
    }

    #[test]
    fn max_locale_max_addr() {
        let p = GlobalPtr::<u8>::new(u16::MAX, ADDR_MASK as usize & !1);
        assert_eq!(p.locale(), u16::MAX);
        assert_eq!(p.addr(), (ADDR_MASK & !1) as usize);
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn oversized_address_rejected() {
        let _ = GlobalPtr::<u8>::new(0, 1usize << 48);
    }

    #[test]
    fn mark_bit_roundtrip() {
        let base = GlobalPtr::<u64>::new(3, 0x1000);
        let marked = base.with_mark();
        assert!(marked.is_marked());
        assert_eq!(marked.addr(), 0x1000, "addr() masks the mark");
        assert_eq!(marked.locale(), 3);
        assert_eq!(marked.without_mark(), base);
        assert_ne!(marked, base, "mark participates in equality");
    }

    #[test]
    fn marked_null_still_null_by_address() {
        let p = GlobalPtr::<u8>::null().with_mark();
        assert!(p.is_null());
        assert!(p.is_marked());
    }

    #[test]
    fn bits_roundtrip() {
        let p = GlobalPtr::<i32>::new(42, 0xdead_beef0);
        let q = GlobalPtr::<i32>::from_bits(p.into_bits());
        assert_eq!(p, q);
    }

    #[test]
    fn from_local_box() {
        let b = Box::new(99u64);
        let raw = Box::into_raw(b);
        let p = GlobalPtr::from_raw_parts(0, raw);
        assert_eq!(unsafe { *p.deref() }, 99);
        unsafe { drop(Box::from_raw(p.as_ptr())) };
    }

    #[test]
    fn widen_compress_roundtrip() {
        let p = GlobalPtr::<u8>::new(9, 0xabc0);
        let w = p.widen();
        assert_eq!(w.locale(), 9);
        assert_eq!(w.addr(), 0xabc0);
        assert_eq!(w.compress(), p);
    }

    #[test]
    fn wide_words_roundtrip() {
        let w = WideGlobalPtr::<u8>::new(1 << 20, 0x1234);
        let (hi, lo) = w.into_words();
        let w2 = WideGlobalPtr::<u8>::from_words(hi, lo);
        assert_eq!(w, w2);
        assert_eq!(w2.locale(), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "16 bits")]
    fn wide_with_big_locale_cannot_compress() {
        let w = WideGlobalPtr::<u8>::new(1 << 17, 0x1000);
        let _ = w.compress();
    }

    #[test]
    fn cast_preserves_identity() {
        let p = GlobalPtr::<u64>::new(2, 0x2000);
        let q: GlobalPtr<u8> = p.cast();
        assert_eq!(q.locale(), 2);
        assert_eq!(q.addr(), 0x2000);
    }
}
