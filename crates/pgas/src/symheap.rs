//! The *symmetric heap*: a registered, offset-addressed memory region on
//! every locale.
//!
//! Real PGAS transports (SHMEM, GASNet, ibverbs) cannot ship raw pointers
//! between processes — remote memory is named by an *offset* into a region
//! that every rank registered at startup, in the same order, so the same
//! offset denotes the same logical cell everywhere. The simulator never
//! needed this (all locales share one address space), but a process
//! backend does, so [`SymHeap`] is the common currency both engines can
//! target: the sim applies operations directly to the owner locale's heap,
//! while `pgas-net` serializes `(offset, op)` descriptors onto the wire.
//!
//! Three access granularities:
//!
//! * **64-bit words** — [`SymHeap::word`] exposes an `AtomicU64`;
//!   [`SymHeap::apply64`] interprets a [`SymOp64`] descriptor against it.
//! * **Wide (128-bit) cells** — a 24-byte `[seq][lo][hi]` seqlock cell
//!   (same discipline as `pgas-atomics`' versioned wide atomics):
//!   [`SymHeap::wide_dcas`] flips the sequence odd while writing and
//!   [`SymHeap::wide_load`] spins for a stable even sequence.
//!   [`SymHeap::wide_halves`] reads the two halves *non-atomically* — the
//!   torn-window primitive versioned fast reads validate against.
//! * **Bytes** — [`SymHeap::read_bytes`]/[`SymHeap::write_bytes`] model
//!   one-sided PUT/GET payloads. They move whole words relaxed with
//!   masking at the edges, so concurrent byte traffic is racy-but-defined,
//!   exactly like real RDMA.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A 64-bit atomic operation descriptor against a symmetric-heap word.
///
/// This is the unit that crosses engine backends: the sim applies it
/// in-process, the process backend serializes it onto the wire. Every
/// variant returns the word's *previous* value (for [`SymOp64::Load`] the
/// current value; for [`SymOp64::Cas`] the caller compares the return
/// against `expected` to learn success).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymOp64 {
    /// Read the word.
    Load,
    /// Store the operand, returning the previous value.
    Store(u64),
    /// Atomic fetch-and-add, returning the previous value.
    FetchAdd(u64),
    /// Atomic exchange, returning the previous value.
    Exchange(u64),
    /// Atomic compare-and-swap; succeeded iff the returned previous value
    /// equals `expected`.
    Cas {
        /// Value the word must hold for the swap to happen.
        expected: u64,
        /// Value written on success.
        new: u64,
    },
}

/// Bytes occupied by a wide (128-bit seqlock) cell: `[seq][lo][hi]`.
pub const WIDE_CELL_BYTES: usize = 24;

/// One locale's symmetric heap (see the module docs).
///
/// Offsets are byte offsets, 8-aligned for word and wide-cell accessors.
/// The heap is zero-initialized; a zeroed wide cell is a valid (even
/// sequence, value 0) seqlock cell, so no initialization round trip is
/// needed before first use.
pub struct SymHeap {
    words: Box<[AtomicU64]>,
    cursor: AtomicUsize,
}

impl std::fmt::Debug for SymHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymHeap")
            .field("bytes", &(self.words.len() * 8))
            .field("allocated", &self.cursor.load(Ordering::Relaxed))
            .finish()
    }
}

impl SymHeap {
    /// Allocate a zeroed heap of `bytes` (rounded up to whole words).
    pub fn new(bytes: usize) -> SymHeap {
        let words = bytes.div_ceil(8);
        SymHeap {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Total capacity in bytes.
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Bump-allocate `bytes` (rounded up to a word multiple), returning the
    /// byte offset of the block. Symmetric allocation relies on every
    /// locale performing the same `alloc` calls in the same order, which is
    /// exactly the SHMEM `shmem_malloc` collective contract. Panics when
    /// the heap is exhausted.
    pub fn alloc(&self, bytes: usize) -> u64 {
        let take = bytes.div_ceil(8) * 8;
        let off = self.cursor.fetch_add(take, Ordering::Relaxed);
        assert!(
            off + take <= self.len_bytes(),
            "symmetric heap exhausted: {} + {} > {} bytes (raise \
             RuntimeConfig::sym_heap_bytes)",
            off,
            take,
            self.len_bytes()
        );
        off as u64
    }

    /// The word at byte offset `off` (must be 8-aligned and in range).
    pub fn word(&self, off: u64) -> &AtomicU64 {
        assert!(
            off.is_multiple_of(8),
            "symmetric-heap word offset {off} not 8-aligned"
        );
        &self.words[(off / 8) as usize]
    }

    /// Apply a [`SymOp64`] descriptor to the word at `off`, returning the
    /// previous value (see the enum docs for per-variant semantics).
    pub fn apply64(&self, off: u64, op: SymOp64) -> u64 {
        let w = self.word(off);
        match op {
            SymOp64::Load => w.load(Ordering::SeqCst),
            SymOp64::Store(v) => w.swap(v, Ordering::SeqCst),
            SymOp64::FetchAdd(v) => w.fetch_add(v, Ordering::SeqCst),
            SymOp64::Exchange(v) => w.swap(v, Ordering::SeqCst),
            SymOp64::Cas { expected, new } => {
                match w.compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst) {
                    Ok(prev) => prev,
                    Err(prev) => prev,
                }
            }
        }
    }

    // --- wide (128-bit seqlock) cells: [seq][lo][hi] at a 24-byte block ---

    /// The sequence word of the wide cell at `off`.
    pub fn wide_seq(&self, off: u64) -> &AtomicU64 {
        self.word(off)
    }

    /// Read the two 64-bit halves of the wide cell *without* seqlock
    /// validation — two independent relaxed loads, so a concurrent
    /// [`SymHeap::wide_dcas`] can tear the result. This is the raw `load`
    /// primitive versioned fast reads wrap with sequence validation.
    pub fn wide_halves(&self, off: u64) -> u128 {
        let lo = self.word(off + 8).load(Ordering::Acquire) as u128;
        let hi = self.word(off + 16).load(Ordering::Acquire) as u128;
        (hi << 64) | lo
    }

    /// Seqlock-stable read of the wide cell at `off`: spins until a read
    /// straddles no writer (even, unchanged sequence).
    pub fn wide_load(&self, off: u64) -> u128 {
        let seq = self.wide_seq(off);
        loop {
            let s1 = seq.load(Ordering::Acquire);
            if !s1.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            let v = self.wide_halves(off);
            if seq.load(Ordering::Acquire) == s1 {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// 128-bit compare-and-swap on the wide cell at `off`, serialized
    /// through the cell's sequence word: the winning writer flips the
    /// sequence odd, compares-and-maybe-writes the halves, and publishes an
    /// even sequence again (bumped by 2 whether or not the compare
    /// succeeded, so optimistic readers that overlapped the window always
    /// retry). Returns `(succeeded, previous value)`.
    pub fn wide_dcas(&self, off: u64, expected: u128, new: u128) -> (bool, u128) {
        let seq = self.wide_seq(off);
        loop {
            let s = seq.load(Ordering::Acquire);
            if !s.is_multiple_of(2) {
                std::hint::spin_loop();
                continue;
            }
            if seq
                .compare_exchange(s, s + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                std::hint::spin_loop();
                continue;
            }
            // Writer section: we hold the odd sequence.
            let cur = ((self.word(off + 16).load(Ordering::Relaxed) as u128) << 64)
                | self.word(off + 8).load(Ordering::Relaxed) as u128;
            let ok = cur == expected;
            if ok {
                self.word(off + 8).store(new as u64, Ordering::Relaxed);
                self.word(off + 16)
                    .store((new >> 64) as u64, Ordering::Relaxed);
            }
            seq.store(s + 2, Ordering::Release);
            return (ok, cur);
        }
    }

    // --- byte-granular one-sided access ---

    /// Copy `out.len()` bytes starting at byte offset `off` into `out`.
    /// Word-sized relaxed loads with masking at the edges: concurrent
    /// writers can interleave at word granularity, which is the real
    /// one-sided GET contract.
    pub fn read_bytes(&self, off: u64, out: &mut [u8]) {
        let off = off as usize;
        assert!(
            off + out.len() <= self.len_bytes(),
            "symmetric-heap read out of range"
        );
        for (i, byte) in out.iter_mut().enumerate() {
            let pos = off + i;
            let w = self.words[pos / 8].load(Ordering::Acquire);
            *byte = w.to_le_bytes()[pos % 8];
        }
    }

    /// Copy `data` into the heap starting at byte offset `off`. Partial
    /// words are updated with a CAS loop over the containing word so
    /// neighbouring bytes are preserved.
    pub fn write_bytes(&self, off: u64, data: &[u8]) {
        let off = off as usize;
        assert!(
            off + data.len() <= self.len_bytes(),
            "symmetric-heap write out of range"
        );
        let mut i = 0;
        while i < data.len() {
            let pos = off + i;
            let word = &self.words[pos / 8];
            let lane = pos % 8;
            let take = (8 - lane).min(data.len() - i);
            if take == 8 {
                word.store(
                    u64::from_le_bytes(data[i..i + 8].try_into().unwrap()),
                    Ordering::Release,
                );
            } else {
                let mut cur = word.load(Ordering::Acquire);
                loop {
                    let mut bytes = cur.to_le_bytes();
                    bytes[lane..lane + take].copy_from_slice(&data[i..i + take]);
                    match word.compare_exchange_weak(
                        cur,
                        u64::from_le_bytes(bytes),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
            }
            i += take;
        }
    }
}

// --- task-facing facade -------------------------------------------------
//
// Free functions callable from inside any runtime task (they resolve the
// current runtime through [`crate::ctx`]); each forwards to the active
// [`crate::engine::CommEngine`]'s symmetric-heap operation, so the same
// scenario code runs unchanged on the simulator and on a process backend.

/// Apply a 64-bit atomic `op` to `owner`'s symmetric heap at `offset`;
/// returns the previous value.
pub fn atomic(owner: crate::LocaleId, offset: u64, op: SymOp64) -> u64 {
    crate::ctx::with_core(|c, _| c.engine().sym_atomic_u64(c, owner, offset, op))
}

/// Fetch-add on `owner`'s symmetric heap word at `offset` (returns the
/// previous value).
pub fn fetch_add(owner: crate::LocaleId, offset: u64, delta: u64) -> u64 {
    atomic(owner, offset, SymOp64::FetchAdd(delta))
}

/// Load `owner`'s symmetric heap word at `offset`.
pub fn load(owner: crate::LocaleId, offset: u64) -> u64 {
    atomic(owner, offset, SymOp64::Load)
}

/// Double-width CAS on the versioned wide cell at `offset` of `owner`'s
/// symmetric heap; returns `(succeeded, value seen)`.
pub fn dcas(owner: crate::LocaleId, offset: u64, expected: u128, new: u128) -> (bool, u128) {
    crate::ctx::with_core(|c, _| c.engine().sym_dcas_u128(c, owner, offset, expected, new))
}

/// Read the wide cell at `offset` of `owner`'s symmetric heap (versioned
/// fast path when enabled, DCAS slow path otherwise).
pub fn read_wide(owner: crate::LocaleId, offset: u64) -> u128 {
    crate::ctx::with_core(|c, _| c.engine().sym_read_u128(c, owner, offset))
}

/// One-sided GET from `owner`'s symmetric heap into `out`.
pub fn get(owner: crate::LocaleId, offset: u64, out: &mut [u8]) {
    crate::ctx::with_core(|c, _| c.engine().sym_get(c, owner, offset, out))
}

/// One-sided PUT of `data` into `owner`'s symmetric heap.
pub fn put(owner: crate::LocaleId, offset: u64, data: &[u8]) {
    crate::ctx::with_core(|c, _| c.engine().sym_put(c, owner, offset, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_word_aligned_and_monotone() {
        let h = SymHeap::new(256);
        assert_eq!(h.alloc(8), 0);
        assert_eq!(h.alloc(3), 8, "3 bytes rounds up to one word");
        assert_eq!(h.alloc(24), 16);
        assert_eq!(h.len_bytes(), 256);
    }

    #[test]
    #[should_panic(expected = "symmetric heap exhausted")]
    fn alloc_past_capacity_panics() {
        let h = SymHeap::new(64);
        h.alloc(64);
        h.alloc(8);
    }

    #[test]
    fn apply64_descriptors() {
        let h = SymHeap::new(64);
        let off = h.alloc(8);
        assert_eq!(h.apply64(off, SymOp64::Load), 0);
        assert_eq!(h.apply64(off, SymOp64::Store(7)), 0);
        assert_eq!(h.apply64(off, SymOp64::FetchAdd(5)), 7);
        assert_eq!(h.apply64(off, SymOp64::Exchange(100)), 12);
        // failed CAS returns the unswapped current value
        assert_eq!(
            h.apply64(
                off,
                SymOp64::Cas {
                    expected: 1,
                    new: 2
                }
            ),
            100
        );
        // successful CAS returns the expected value
        assert_eq!(
            h.apply64(
                off,
                SymOp64::Cas {
                    expected: 100,
                    new: 2
                }
            ),
            100
        );
        assert_eq!(h.apply64(off, SymOp64::Load), 2);
    }

    #[test]
    fn wide_dcas_and_load_round_trip() {
        let h = SymHeap::new(64);
        let off = h.alloc(WIDE_CELL_BYTES);
        assert_eq!(h.wide_load(off), 0);
        let v = (7u128 << 64) | 9;
        assert_eq!(h.wide_dcas(off, 0, v), (true, 0));
        assert_eq!(h.wide_load(off), v);
        // failed compare leaves the value but still bumps the sequence
        let s0 = h.wide_seq(off).load(Ordering::Relaxed);
        assert_eq!(h.wide_dcas(off, 1, 2), (false, v));
        assert_eq!(h.wide_load(off), v);
        assert_eq!(h.wide_seq(off).load(Ordering::Relaxed), s0 + 2);
    }

    #[test]
    fn byte_access_preserves_neighbours() {
        let h = SymHeap::new(64);
        let off = h.alloc(16);
        h.write_bytes(off, &[0xAA; 16]);
        h.write_bytes(off + 3, &[0x11, 0x22, 0x33]);
        let mut out = [0u8; 16];
        h.read_bytes(off, &mut out);
        assert_eq!(out[2], 0xAA);
        assert_eq!(&out[3..6], &[0x11, 0x22, 0x33]);
        assert_eq!(out[6], 0xAA);
    }

    #[test]
    fn concurrent_wide_dcas_never_tears_stable_reads() {
        use std::sync::Arc;
        let h = Arc::new(SymHeap::new(64));
        let off = h.alloc(WIDE_CELL_BYTES);
        let writer = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let mut cur = 0u128;
                for i in 1..2000u128 {
                    // write mirrored halves so tearing is detectable
                    let v = (i << 64) | i;
                    let (ok, prev) = h.wide_dcas(off, cur, v);
                    assert!(ok, "single writer must always succeed");
                    assert_eq!(prev, cur);
                    cur = v;
                }
            })
        };
        for _ in 0..2000 {
            let v = h.wide_load(off);
            assert_eq!(v as u64, (v >> 64) as u64, "stable read tore: {v:#x}");
        }
        writer.join().unwrap();
    }
}
