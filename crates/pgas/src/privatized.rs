//! Privatization: one instance per locale, zero-communication lookup.
//!
//! Chapel's privatization machinery (used by arrays, domains, and the
//! paper's `EpochManager`) replicates an object across locales and rewrites
//! every access to go to the replica that is local to the accessing task.
//! Combined with record-wrapping / remote-value forwarding, obtaining the
//! local replica requires *no* communication — which is what lets the
//! `EpochManager` scale in distributed `forall` loops (Fig. 7 is flat
//! because of this module).
//!
//! [`Privatized<T>`] owns one `T` per locale, each constructed *on* its
//! locale so that locale-local allocations (limbo lists, token pools) have
//! the right affinity. [`Privatized::get`] indexes by the ambient locale id
//! — a pure array read, zero communication, just like the real thing.

use crossbeam_utils::CachePadded;

use crate::ctx;
use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;

/// A per-locale replicated instance table.
pub struct Privatized<T> {
    instances: Box<[CachePadded<T>]>,
}

impl<T: Send + Sync> Privatized<T> {
    /// Construct one instance per locale. `init` runs *on each locale* (so
    /// allocations it performs have that locale's affinity), sequentially
    /// in locale order.
    pub fn new(core: &RuntimeCore, init: impl Fn(LocaleId) -> T + Send + Sync) -> Privatized<T> {
        let instances = (0..core.num_locales() as LocaleId)
            .map(|l| CachePadded::new(core.on(l, || init(l))))
            .collect();
        Privatized { instances }
    }

    /// The instance for the *current* locale. Zero communication: this is
    /// the privatized-access fast path.
    #[inline]
    pub fn get(&self) -> &T {
        &self.instances[ctx::here() as usize]
    }

    /// The instance for an explicit locale (used by global scans such as
    /// `tryReclaim`, which run inside `on` blocks on that locale anyway).
    #[inline]
    pub fn get_for(&self, locale: LocaleId) -> &T {
        &self.instances[locale as usize]
    }

    /// Number of replicas (== number of locales at construction).
    #[inline]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Always false: a runtime has at least one locale.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Iterate over `(locale, instance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LocaleId, &T)> {
        self.instances
            .iter()
            .enumerate()
            .map(|(i, t)| (i as LocaleId, &**t))
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Privatized<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.instances.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn one_instance_per_locale_built_on_locale() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let p = Privatized::new(&rt, |l| {
                // init runs on locale l itself
                assert_eq!(ctx::here(), l);
                l as u64 * 10
            });
            assert_eq!(p.len(), 4);
            for (l, v) in p.iter() {
                assert_eq!(*v, l as u64 * 10);
            }
        });
    }

    #[test]
    fn get_returns_local_replica_with_zero_comm() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let p = Privatized::new(&rt, |l| AtomicU64::new(l as u64));
            rt.reset_metrics();
            rt.coforall_locales(|l| {
                // Each locale reads its own replica...
                assert_eq!(p.get().load(Ordering::Relaxed), l as u64);
                p.get().fetch_add(100, Ordering::Relaxed);
            });
            let s = rt.total_comm();
            // ...and the only traffic is the coforall fan-out itself.
            assert_eq!(s.puts + s.gets + s.rdma_atomics, 0);
            for (l, v) in p.iter() {
                assert_eq!(v.load(Ordering::Relaxed), l as u64 + 100);
            }
        });
    }

    #[test]
    fn get_for_reaches_any_replica() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(3));
        rt.run(|| {
            let p = Privatized::new(&rt, |l| l as usize);
            assert_eq!(*p.get_for(2), 2);
            assert_eq!(*p.get(), 0, "main runs on locale 0");
            assert!(!p.is_empty());
        });
    }
}
