//! Per-locale state: AM queue, statistics, heap accounting, progress-thread
//! clocks.

use crossbeam_channel::Sender;

use crate::am::AmMsg;
use crate::globalptr::LocaleId;
use crate::stats::{CommStats, HeapStats};
use crate::vtime::VClock;

/// One simulated compute node.
pub struct Locale {
    /// This locale's id (its index in the runtime's locale table).
    pub id: LocaleId,
    /// Communication counters for operations *initiated by or handled on*
    /// this locale.
    pub stats: CommStats,
    /// Allocation accounting for objects whose affinity is this locale.
    pub heap: HeapStats,
    /// Virtual clocks of this locale's progress threads (one per thread;
    /// they model the serialization of active-message handling).
    pub(crate) progress_clocks: Box<[VClock]>,
    /// Submission side of the AM queue; all progress threads share it.
    pub(crate) am_tx: Sender<AmMsg>,
}

impl Locale {
    pub(crate) fn new(id: LocaleId, progress_threads: usize, am_tx: Sender<AmMsg>) -> Self {
        Locale {
            id,
            stats: CommStats::default(),
            heap: HeapStats::default(),
            progress_clocks: (0..progress_threads).map(|_| VClock::new()).collect(),
            am_tx,
        }
    }

    /// The furthest-ahead progress-thread clock — i.e. when this locale's
    /// AM service would next be free in the busiest lane.
    pub fn progress_vtime(&self) -> u64 {
        self.progress_clocks
            .iter()
            .map(|c| c.now())
            .max()
            .unwrap_or(0)
    }

    /// Reset this locale's virtual clocks and counters. Callers must ensure
    /// no operations are in flight.
    pub fn reset_metrics(&self) {
        self.stats.reset();
        for c in self.progress_clocks.iter() {
            c.reset();
        }
    }
}

impl std::fmt::Debug for Locale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Locale")
            .field("id", &self.id)
            .field("progress_threads", &self.progress_clocks.len())
            .field("live_objects", &self.heap.live_objects())
            .finish()
    }
}
