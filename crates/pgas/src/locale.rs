//! Per-locale state: AM queue, statistics, heap accounting, and the
//! progress-service virtual clocks (server slots).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crossbeam_channel::Sender;
use parking_lot::Mutex;

use crate::am::AmMsg;
use crate::engine::combine::CombineHub;
use crate::globalptr::LocaleId;
use crate::stats::HeapStats;
use crate::telemetry::Registry;

/// The virtual clocks of a locale's AM service, one *slot* per progress
/// thread.
///
/// Active-message handling is a multi-server queue: `progress_threads`
/// identical servers draining one shared arrival stream. Real OS scheduling
/// decides which thread picks up which message, which is nondeterministic —
/// so a handling thread does **not** own a fixed clock. Instead it acquires
/// the free slot with the *smallest* clock (the server that would be idle
/// first), runs the handler on that clock, and releases the slot at the
/// handler's completion time. Virtual time therefore load-balances across
/// servers deterministically, no matter how the OS interleaves the threads.
pub(crate) struct ServerSlots {
    state: Mutex<SlotState>,
}

struct SlotState {
    /// Last release time of each slot; the authoritative clock value (kept
    /// for `max_clock` and for validating heap entries in debug builds).
    clocks: Vec<u64>,
    busy: Vec<bool>,
    /// Min-heap of the *free* slots keyed by `(clock, index)`, so `acquire`
    /// is O(log n) instead of an O(n) scan. A slot's clock only changes at
    /// `release`, which is also the only point that re-inserts it — heap
    /// entries therefore never go stale.
    free: BinaryHeap<Reverse<(u64, usize)>>,
}

impl ServerSlots {
    fn new(n: usize) -> ServerSlots {
        ServerSlots {
            state: Mutex::new(SlotState {
                clocks: vec![0; n],
                busy: vec![false; n],
                free: (0..n).map(|i| Reverse((0, i))).collect(),
            }),
        }
    }

    /// Claim the free slot with the earliest clock, returning `(slot index,
    /// clock value)`. A free slot always exists: there are exactly as many
    /// progress threads as slots and each thread holds at most one. Ties
    /// resolve to the lowest slot index (the heap key orders by clock, then
    /// index).
    pub(crate) fn acquire(&self) -> (usize, u64) {
        let mut st = self.state.lock();
        let Reverse((clock, i)) = st
            .free
            .pop()
            .expect("no free progress-service slot (more handlers than threads?)");
        debug_assert!(!st.busy[i]);
        debug_assert_eq!(clock, st.clocks[i], "free-slot heap entry went stale");
        st.busy[i] = true;
        (i, clock)
    }

    /// Release a slot, advancing its clock to `until` (the virtual time at
    /// which the server becomes free again) and returning it to the free
    /// heap.
    pub(crate) fn release(&self, slot: usize, until: u64) {
        let mut st = self.state.lock();
        debug_assert!(st.busy[slot], "releasing a slot that was not acquired");
        st.busy[slot] = false;
        if st.clocks[slot] < until {
            st.clocks[slot] = until;
        }
        let key = st.clocks[slot];
        st.free.push(Reverse((key, slot)));
    }

    fn max_clock(&self) -> u64 {
        self.state.lock().clocks.iter().copied().max().unwrap_or(0)
    }

    fn reset(&self) {
        let mut st = self.state.lock();
        for c in st.clocks.iter_mut() {
            *c = 0;
        }
        st.free.clear();
        let rebuilt: BinaryHeap<_> = st
            .busy
            .iter()
            .enumerate()
            .filter(|&(_, &b)| !b)
            .map(|(i, _)| Reverse((0, i)))
            .collect();
        st.free = rebuilt;
    }
}

/// One simulated compute node.
pub struct Locale {
    /// This locale's id (its index in the runtime's locale table).
    pub id: LocaleId,
    /// Telemetry registry for operations *initiated by or handled on* this
    /// locale: the communication counters (the registry derefs to
    /// [`crate::stats::CommStats`], so counter field access is unchanged)
    /// plus per-class latency histograms.
    pub stats: Registry,
    /// Allocation accounting for objects whose affinity is this locale.
    pub heap: HeapStats,
    /// This locale's symmetric heap: the offset-addressed registered
    /// region engine backends target without exchanging pointers (see
    /// [`crate::symheap`]).
    pub sym: crate::symheap::SymHeap,
    /// Server slots of this locale's AM service (one per progress thread;
    /// they model the serialization of active-message handling).
    pub(crate) server: ServerSlots,
    /// Per-destination publication lists for remote-operation combining
    /// (see [`crate::engine::combine`]); announce/election state for tasks
    /// *on this locale* issuing combinable remote operations.
    pub(crate) combine: CombineHub,
    /// Submission side of the AM queue; all progress threads share it.
    pub(crate) am_tx: Sender<AmMsg>,
    /// AM-handler dispatch-cost multiplier: 1 normally, larger when a
    /// fault plan (see [`crate::faults`]) names this locale as the
    /// straggler. Cached here at construction so progress threads read it
    /// without consulting the plan per message.
    pub(crate) am_slowdown: u64,
    /// Causal-trace span-id sequence (see [`Locale::next_span_id`]). Only
    /// ever bumped while a telemetry sink is installed.
    span_seq: std::sync::atomic::AtomicU64,
    /// Process-wide construction epoch of this locale (see
    /// [`Locale::next_span_id`]): one trace file commonly covers *many*
    /// runtimes (the harness builds one per data point), and per-runtime
    /// sequences alone would reuse ids across them.
    span_epoch: u64,
}

/// Process-wide count of [`Locale`] constructions, the `span_epoch`
/// source. Deterministic for a deterministic program: runtimes (and their
/// locales) are constructed in program order.
static LOCALE_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl Locale {
    pub(crate) fn new(
        id: LocaleId,
        progress_threads: usize,
        num_locales: usize,
        am_tx: Sender<AmMsg>,
        am_slowdown: u64,
        sym_heap_bytes: usize,
    ) -> Self {
        Locale {
            id,
            stats: Registry::default(),
            heap: HeapStats::default(),
            sym: crate::symheap::SymHeap::new(sym_heap_bytes),
            server: ServerSlots::new(progress_threads),
            combine: CombineHub::new(num_locales),
            am_tx,
            am_slowdown,
            span_seq: std::sync::atomic::AtomicU64::new(0),
            span_epoch: LOCALE_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Allocate a causal-trace span id on this locale. Ids pack the locale
    /// into the top 16 bits, the locale's process-wide construction epoch
    /// into the next 20, and a per-locale sequence into the low 28
    /// (`(id + 1) << 48 | epoch << 28 | seq`), so they are unique across
    /// locales *and* across every runtime the process builds, never zero
    /// (0 means "no parent"), and — for a deterministic workload —
    /// identical from run to run of the program. The sequence deliberately
    /// survives [`Locale::reset_metrics`]: a trace file spans phase
    /// resets, and reused ids would corrupt its trees.
    pub(crate) fn next_span_id(&self) -> u64 {
        let seq = self
            .span_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        ((self.id as u64 + 1) << 48) | ((self.span_epoch & 0xf_ffff) << 28) | (seq & 0x0fff_ffff)
    }

    /// The furthest-ahead progress-service clock — i.e. when this locale's
    /// AM service would next be free in the busiest lane.
    pub fn progress_vtime(&self) -> u64 {
        self.server.max_clock()
    }

    /// Reset this locale's virtual clocks, counters, and latency
    /// histograms. Callers must ensure no operations are in flight.
    pub fn reset_metrics(&self) {
        self.stats.reset(); // Registry::reset — counters *and* histograms
        self.server.reset();
    }
}

impl std::fmt::Debug for Locale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Locale")
            .field("id", &self.id)
            .field("live_objects", &self.heap.live_objects())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_prefers_earliest_free_slot() {
        let s = ServerSlots::new(2);
        let (a, t_a) = s.acquire();
        assert_eq!(t_a, 0);
        s.release(a, 1000);
        // Both free; the other slot is still at 0 and must win.
        let (b, t_b) = s.acquire();
        assert_ne!(a, b);
        assert_eq!(t_b, 0);
        s.release(b, 500);
        // Now clocks are {1000, 500}: the 500 slot wins.
        let (c, t_c) = s.acquire();
        assert_eq!(c, b);
        assert_eq!(t_c, 500);
        s.release(c, 600);
    }

    #[test]
    fn busy_slots_are_skipped() {
        let s = ServerSlots::new(2);
        let (a, _) = s.acquire();
        s.release(a, 10_000);
        // Slot `a` is far ahead but free; hold the other slot busy and the
        // next acquire must pick `a` anyway.
        let (b, _) = s.acquire();
        assert_ne!(a, b);
        let (c, t_c) = s.acquire();
        assert_eq!(c, a);
        assert_eq!(t_c, 10_000);
        s.release(b, 1);
        s.release(c, 10_001);
    }

    #[test]
    fn heap_matches_linear_reference_under_churn() {
        // Drive a pseudo-random acquire/release sequence and check the free
        // heap keeps returning the earliest-free slot (lowest index on
        // ties), exactly like the old linear scan.
        let n = 4;
        let s = ServerSlots::new(n);
        let mut clocks = vec![0u64; n];
        let mut busy = vec![false; n];
        let mut held: Vec<usize> = Vec::new();
        let mut seed = 0x9e37_79b9_u64;
        for _ in 0..200 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if held.len() < n && (held.is_empty() || seed.is_multiple_of(2)) {
                let (i, t) = s.acquire();
                let expect = (0..n)
                    .filter(|&j| !busy[j])
                    .min_by_key(|&j| (clocks[j], j))
                    .unwrap();
                assert_eq!(i, expect);
                assert_eq!(t, clocks[i]);
                busy[i] = true;
                held.push(i);
            } else {
                let i = held.swap_remove((seed % held.len() as u64) as usize);
                let until = clocks[i] + (seed >> 32) % 500;
                s.release(i, until);
                busy[i] = false;
                clocks[i] = clocks[i].max(until);
            }
        }
    }

    #[test]
    fn reset_restores_all_slots_to_zero() {
        let s = ServerSlots::new(2);
        let (a, _) = s.acquire();
        s.release(a, 777);
        s.reset();
        let (x, tx) = s.acquire();
        let (y, ty) = s.acquire();
        assert_ne!(x, y);
        assert_eq!((tx, ty), (0, 0));
        s.release(x, 1);
        s.release(y, 2);
    }

    #[test]
    fn release_never_rewinds_a_clock() {
        let s = ServerSlots::new(1);
        let (a, _) = s.acquire();
        s.release(a, 100);
        let (a, t) = s.acquire();
        assert_eq!(t, 100);
        s.release(a, 50); // stale completion must not rewind
        assert_eq!(s.max_clock(), 100);
    }
}
