//! The communication engine — the single owner of all remote-operation
//! traffic.
//!
//! Every remote operation the simulator models — RDMA/NIC atomics, 128-bit
//! DCAS routing, one-sided PUT/GET, blocking and fire-and-forget active
//! messages, and bulk (batched) active messages — enters through one
//! object: the runtime's [`CommEngine`]. The engine decides the path an
//! operation takes, charges its virtual-time cost, and bumps the
//! corresponding [`crate::stats::CommStats`] counters. Nothing else in the
//! workspace talks to the wire: the routing tables ([`crate::comm`]) and
//! the active-message transport ([`crate::am`]) are crate-private
//! implementation details of the in-process backend, [`SimEngine`].
//!
//! Three call families:
//!
//! * **Routing/charging** — [`CommEngine::remote_atomic_u64`],
//!   [`CommEngine::remote_dcas_u128`], [`CommEngine::put`],
//!   [`CommEngine::get`] and the handler-side charges. These price an
//!   operation and tell the caller which [`AtomicPath`] performs it.
//! * **Remote execution** — [`CommEngine::on`] (blocking, Chapel's `on`
//!   statement) and [`CommEngine::on_async`] (fire-and-forget with a
//!   [`Completion`] handle; the sender's clock does not advance until —
//!   unless — it waits).
//! * **Batching** — [`CommEngine::bulk_on`] ships one active message that
//!   carries many aggregated operations, counted in `am_batches` /
//!   `am_batch_items`; [`Batcher`] provides the per-task, per-destination
//!   send buffers (the Chapel Aggregation Library pattern generalizing the
//!   paper's scatter list) on top of it.
//!
//! Most code reaches the engine through [`crate::runtime::RuntimeCore`]
//! convenience methods (`on`, `on_async`, `on_combining`) or the
//! free-function façade at the bottom of this module.
//!
//! A fourth family, **combining** ([`CommEngine::on_combined`], backed by
//! the [`combine`] submodule), coalesces concurrent same-destination
//! operations from different tasks into single bulk active messages when
//! [`crate::config::RuntimeConfig::combining`] is enabled.

pub mod combine;

use std::panic::resume_unwind;

use crate::am;
use crate::ctx;
use crate::globalptr::{GlobalPtr, LocaleId};
use crate::runtime::RuntimeCore;
use crate::vtime;

pub use crate::comm::AtomicPath;

/// Default per-destination batch capacity (items) for [`Batcher`].
pub const DEFAULT_BUFFER_CAP: usize = 1024;

/// The abstract communication backend. One engine instance per runtime owns
/// every remote operation: routing decisions, virtual-time charging, and
/// [`crate::stats::CommStats`] accounting all live behind this trait, so a
/// different transport (a real SHMEM/GASNet conduit, say) could be slotted
/// in without touching the algorithm crates.
///
/// The trait is object-safe; closures cross it boxed. Use the
/// [`RuntimeCore::on`]/[`RuntimeCore::on_async`] wrappers for generic
/// returns.
pub trait CommEngine: Send + Sync {
    /// Route and charge a 64-bit atomic targeting memory owned by `owner`;
    /// returns the path the caller must take. With network atomics enabled
    /// this charges the NIC cost even for local targets (the
    /// `CHPL_NETWORK_ATOMICS` quirk).
    fn remote_atomic_u64(&self, core: &RuntimeCore, owner: LocaleId) -> AtomicPath;

    /// Route and charge a 128-bit (double-word CAS) atomic targeting memory
    /// owned by `owner`. RDMA atomics max out at 64 bits, so the remote
    /// case is always [`AtomicPath::ActiveMessage`].
    fn remote_dcas_u128(&self, core: &RuntimeCore, owner: LocaleId) -> AtomicPath;

    /// Optimistic versioned (seqlock) fast read of a 128-bit cell owned by
    /// `owner`, paired with sequence word `seq` and read through `load`
    /// (called twice per attempt — one per 64-bit half, modeling that
    /// one-sided GETs cannot fetch 128 bits atomically). Rides the cheap
    /// one-sided GET cost model instead of the DCAS/handler path and is
    /// idempotent, hence drop/retry-eligible under fault injection.
    /// Returns the validated payload, or `None` once the
    /// [`crate::config::RuntimeConfig::vread_max_tries`] budget is
    /// exhausted — the caller must then fall back to
    /// [`Self::remote_dcas_u128`].
    fn remote_vread_u128(
        &self,
        core: &RuntimeCore,
        owner: LocaleId,
        seq: &std::sync::atomic::AtomicU64,
        load: &dyn Fn() -> u128,
    ) -> Option<u128>;

    /// Charge the CPU cost of a 64-bit atomic performed *inside* an AM
    /// handler (the remote-execution fallback's actual memory operation).
    fn handler_atomic_u64(&self, core: &RuntimeCore);

    /// Charge the CPU cost of a 128-bit DCAS (locally or inside an AM
    /// handler).
    fn handler_dcas_u128(&self, core: &RuntimeCore);

    /// Charge a one-sided GET of `bytes` from `owner`'s memory. Free and
    /// uncounted when the data is local.
    fn get(&self, core: &RuntimeCore, owner: LocaleId, bytes: usize);

    /// Charge a one-sided PUT of `bytes` into `owner`'s memory. Free and
    /// uncounted when the target is local.
    fn put(&self, core: &RuntimeCore, owner: LocaleId, bytes: usize);

    /// Chapel's `on Locales[dest] do f()`: execute `f` on locale `dest`,
    /// blocking until it finishes. Runs inline (zero communication) when
    /// the caller is already on `dest`; otherwise ships an active message
    /// whose handling serializes on the target's progress service.
    fn on<'a>(&self, core: &RuntimeCore, dest: LocaleId, f: Box<dyn FnOnce() + Send + 'a>);

    /// Fire-and-forget remote execution: ship `f` to `dest` and return a
    /// [`Completion`] immediately. The sender's virtual clock does *not*
    /// advance; waiting on the handle merges the handler's completion time
    /// (plus the reply wire) back in, exactly like a blocking [`Self::on`]
    /// would have. Runs inline (already complete) when `dest` is the
    /// current locale.
    fn on_async(
        &self,
        core: &RuntimeCore,
        dest: LocaleId,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> Completion;

    /// Like [`Self::on`], but *combinable*: when the runtime's `combining`
    /// toggle is set, concurrent calls from different tasks on this locale
    /// toward the same `dest` may be coalesced into one bulk active
    /// message by an elected combiner task (see [`combine`]). Still blocks
    /// until `f` has executed on `dest`, still runs inline when the caller
    /// is already there, and falls back to a plain [`Self::on`] when
    /// combining is disabled.
    fn on_combined<'a>(&self, core: &RuntimeCore, dest: LocaleId, f: Box<dyn FnOnce() + Send + 'a>);

    /// Ship one *bulk* active message carrying `items` aggregated
    /// operations to `dest` and block until the handler has run. Counted as
    /// one `am_sent` plus one `am_batches` (with `items` added to
    /// `am_batch_items`); runs inline and uncounted when `dest` is the
    /// current locale. The handler itself is responsible for per-item
    /// charging.
    fn bulk_on<'a>(
        &self,
        core: &RuntimeCore,
        dest: LocaleId,
        items: u64,
        f: Box<dyn FnOnce() + Send + 'a>,
    );

    // -----------------------------------------------------------------
    // Symmetric-heap operations: the pointer-free op family every backend
    // can implement (see [`crate::symheap`]). The defaults express each op
    // through the routing/execution primitives above, so the simulator's
    // counters and virtual-time charges are exactly what the equivalent
    // hand-rolled atomic + AM sequence would have produced. A wire backend
    // overrides them with real transport calls.
    // -----------------------------------------------------------------

    /// Execute a 64-bit atomic descriptor against `owner`'s symmetric heap
    /// at byte offset `offset`, returning the word's previous value (see
    /// [`crate::symheap::SymOp64`]).
    fn sym_atomic_u64(
        &self,
        core: &RuntimeCore,
        owner: LocaleId,
        offset: u64,
        op: crate::symheap::SymOp64,
    ) -> u64 {
        match self.remote_atomic_u64(core, owner) {
            AtomicPath::CpuLocal | AtomicPath::Nic => core.locale(owner).sym.apply64(offset, op),
            AtomicPath::ActiveMessage => {
                let mut out = 0u64;
                {
                    let slot = &mut out;
                    self.on(
                        core,
                        owner,
                        Box::new(move || {
                            ctx::with_core(|c, _| {
                                c.engine().handler_atomic_u64(c);
                                *slot = c.locale(owner).sym.apply64(offset, op);
                            });
                        }),
                    );
                }
                out
            }
        }
    }

    /// 128-bit compare-and-swap on the wide seqlock cell at `offset` in
    /// `owner`'s symmetric heap. Returns `(succeeded, previous value)`.
    fn sym_dcas_u128(
        &self,
        core: &RuntimeCore,
        owner: LocaleId,
        offset: u64,
        expected: u128,
        new: u128,
    ) -> (bool, u128) {
        match self.remote_dcas_u128(core, owner) {
            AtomicPath::CpuLocal | AtomicPath::Nic => {
                core.locale(owner).sym.wide_dcas(offset, expected, new)
            }
            AtomicPath::ActiveMessage => {
                let mut out = (false, 0u128);
                {
                    let slot = &mut out;
                    self.on(
                        core,
                        owner,
                        Box::new(move || {
                            ctx::with_core(|c, _| {
                                c.engine().handler_dcas_u128(c);
                                *slot = c.locale(owner).sym.wide_dcas(offset, expected, new);
                            });
                        }),
                    );
                }
                out
            }
        }
    }

    /// Read the wide seqlock cell at `offset` in `owner`'s symmetric heap.
    /// With [`crate::config::RuntimeConfig::vread_fastpath`] enabled this
    /// attempts the optimistic versioned read first
    /// ([`Self::remote_vread_u128`]); otherwise — or once the retry budget
    /// is exhausted — it falls back to a value-preserving
    /// [`Self::sym_dcas_u128`] round trip (compare against an arbitrary
    /// expected value; the returned current value is the read).
    fn sym_read_u128(&self, core: &RuntimeCore, owner: LocaleId, offset: u64) -> u128 {
        if core.config.vread_fastpath {
            let heap = &core.locale(owner).sym;
            let load = || heap.wide_halves(offset);
            if let Some(v) = self.remote_vread_u128(core, owner, heap.wide_seq(offset), &load) {
                return v;
            }
        }
        self.sym_dcas_u128(core, owner, offset, 0, 0).1
    }

    /// One-sided GET of `out.len()` bytes from `owner`'s symmetric heap at
    /// `offset`. Charged like [`Self::get`] (free and uncounted locally).
    fn sym_get(&self, core: &RuntimeCore, owner: LocaleId, offset: u64, out: &mut [u8]) {
        self.get(core, owner, out.len());
        core.locale(owner).sym.read_bytes(offset, out);
    }

    /// One-sided PUT of `data` into `owner`'s symmetric heap at `offset`.
    /// Charged like [`Self::put`] (free and uncounted locally).
    fn sym_put(&self, core: &RuntimeCore, owner: LocaleId, offset: u64, data: &[u8]) {
        self.put(core, owner, data.len());
        core.locale(owner).sym.write_bytes(offset, data);
    }

    // -----------------------------------------------------------------
    // Registered-handler remote execution: the closure-free AM family a
    // process backend can actually ship (see [`crate::handlers`]).
    // -----------------------------------------------------------------

    /// Execute registered handler `h` on `dest` with `args`, blocking for
    /// its reply bytes. Counted like [`Self::on`].
    fn on_handler(
        &self,
        core: &RuntimeCore,
        dest: LocaleId,
        h: crate::handlers::HandlerId,
        args: &[u8],
    ) -> Vec<u8> {
        let mut out = None;
        {
            let slot = &mut out;
            self.on(
                core,
                dest,
                Box::new(move || {
                    ctx::with_core(|c, _| {
                        *slot = Some(crate::handlers::invoke(h, c, args));
                    });
                }),
            );
        }
        out.expect("remote handler did not run")
    }

    /// Fire-and-forget variant of [`Self::on_handler`]: ship the descriptor
    /// and return a [`Completion`] immediately; the reply bytes are
    /// discarded. Counted like [`Self::on_async`].
    fn on_handler_async(
        &self,
        core: &RuntimeCore,
        dest: LocaleId,
        h: crate::handlers::HandlerId,
        args: Vec<u8>,
    ) -> Completion {
        self.on_async(
            core,
            dest,
            Box::new(move || {
                ctx::with_core(|c, _| {
                    let _ = crate::handlers::invoke(h, c, &args);
                });
            }),
        )
    }

    // -----------------------------------------------------------------
    // Backend lifecycle.
    // -----------------------------------------------------------------

    /// The locale [`crate::Runtime::run`] enters on this backend. The
    /// simulator always enters locale 0 (it owns all locales); a process
    /// backend enters the one locale this OS process *is*.
    fn entry_locale(&self) -> LocaleId {
        0
    }

    /// Called once, right after the runtime core is constructed, with the
    /// owning `Arc`. A transport backend uses this to start its progress
    /// service with a [`std::sync::Weak`] back-reference; the simulator
    /// needs nothing.
    fn bind(&self, _core: &std::sync::Arc<RuntimeCore>) {}

    /// Called from the runtime's `Drop` before the simulator's own AM
    /// shutdown: stop progress services, close sockets, join threads. Must
    /// be idempotent.
    fn shutdown(&self) {}
}

/// The in-process backend: routes through the simulated NIC cost tables
/// ([`crate::comm`]) and the progress-thread AM transport ([`crate::am`]).
#[derive(Debug, Default)]
pub struct SimEngine;

impl CommEngine for SimEngine {
    fn remote_atomic_u64(&self, core: &RuntimeCore, owner: LocaleId) -> AtomicPath {
        crate::comm::route_atomic_u64(core, owner)
    }

    fn remote_dcas_u128(&self, core: &RuntimeCore, owner: LocaleId) -> AtomicPath {
        crate::comm::route_atomic_u128(core, owner)
    }

    fn remote_vread_u128(
        &self,
        core: &RuntimeCore,
        owner: LocaleId,
        seq: &std::sync::atomic::AtomicU64,
        load: &dyn Fn() -> u128,
    ) -> Option<u128> {
        crate::comm::vread_u128(core, owner, seq, load)
    }

    fn handler_atomic_u64(&self, core: &RuntimeCore) {
        crate::comm::charge_handler_atomic(core);
    }

    fn handler_dcas_u128(&self, core: &RuntimeCore) {
        crate::comm::charge_handler_dcas(core);
    }

    fn get(&self, core: &RuntimeCore, owner: LocaleId, bytes: usize) {
        crate::comm::charge_get(core, owner, bytes);
    }

    fn put(&self, core: &RuntimeCore, owner: LocaleId, bytes: usize) {
        crate::comm::charge_put(core, owner, bytes);
    }

    fn on<'a>(&self, core: &RuntimeCore, dest: LocaleId, f: Box<dyn FnOnce() + Send + 'a>) {
        let src = ctx::here();
        if src == dest {
            f();
        } else {
            am::remote_call(core, src, dest, f);
        }
    }

    fn on_async(
        &self,
        core: &RuntimeCore,
        dest: LocaleId,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> Completion {
        let src = ctx::here();
        if src == dest {
            f();
            return Completion::ready();
        }
        let (tx, rx) = am::remote_post(core, src, dest, f);
        Completion {
            rx: Some((tx, rx, core.config.network.am_wire_ns)),
            ready: None,
            waiter: None,
        }
    }

    fn on_combined<'a>(
        &self,
        core: &RuntimeCore,
        dest: LocaleId,
        f: Box<dyn FnOnce() + Send + 'a>,
    ) {
        let src = ctx::here();
        if src == dest {
            f();
        } else if core.config.combining {
            combine::submit(core, src, dest, f);
        } else {
            am::remote_call(core, src, dest, f);
        }
    }

    fn bulk_on<'a>(
        &self,
        core: &RuntimeCore,
        dest: LocaleId,
        items: u64,
        f: Box<dyn FnOnce() + Send + 'a>,
    ) {
        let src = ctx::here();
        if src == dest {
            f();
            return;
        }
        use std::sync::atomic::Ordering;
        let stats = &core.locale(src).stats;
        stats.am_batches.fetch_add(1, Ordering::Relaxed);
        stats.am_batch_items.fetch_add(items, Ordering::Relaxed);
        // Batch occupancy histogram: how full bulk AMs actually are.
        stats.record(crate::telemetry::OpClass::BatchOccupancy, items);
        am::remote_call(core, src, dest, f);
    }
}

/// Backend-supplied completion source for [`Completion::from_waiter`]: a
/// transport engine that cannot use the simulator's in-process reply
/// channels (a socket awaiting a reply frame, say) implements this pair of
/// poll/block primitives instead.
pub trait CompletionWaiter: Send {
    /// Non-blocking: has the remote handler finished?
    fn poll(&mut self) -> bool;

    /// Block until the remote handler has finished, propagating a remote
    /// panic by panicking here.
    fn wait(self: Box<Self>);
}

/// Handle to a fire-and-forget [`CommEngine::on_async`] call.
///
/// Dropping the handle abandons the result (the handler still runs);
/// [`Completion::wait`] blocks for the handler, merges its virtual finish
/// time (plus the reply wire latency) into the caller's clock, and
/// propagates a handler panic.
#[must_use = "dropping a Completion abandons the result; call wait() to join"]
pub struct Completion {
    /// `(pooled reply sender, reply channel, am_wire_ns)`; `None` once
    /// consumed or when the call ran inline. The sender half is only kept
    /// so a drained pair can go back to the reply-channel pool on
    /// [`Completion::wait`].
    rx: Option<(
        crossbeam_channel::Sender<am::Reply>,
        crossbeam_channel::Receiver<am::Reply>,
        u64,
    )>,
    /// A reply already taken off the channel by [`Completion::completed`].
    ready: Option<am::Reply>,
    /// Backend-supplied completion source (see [`CompletionWaiter`]);
    /// exclusive with `rx`.
    waiter: Option<Box<dyn CompletionWaiter>>,
}

impl Completion {
    fn ready() -> Completion {
        Completion {
            rx: None,
            ready: None,
            waiter: None,
        }
    }

    /// An already-complete handle, for calls a backend ran inline.
    pub fn done() -> Completion {
        Completion::ready()
    }

    /// A handle driven by a backend-supplied [`CompletionWaiter`] (used by
    /// transport engines whose replies arrive over a wire rather than the
    /// simulator's in-process channels).
    pub fn from_waiter(w: Box<dyn CompletionWaiter>) -> Completion {
        Completion {
            rx: None,
            ready: None,
            waiter: Some(w),
        }
    }

    /// True once the remote handler has finished (non-blocking poll). Does
    /// not advance the caller's clock — only [`Completion::wait`] does.
    pub fn completed(&mut self) -> bool {
        if let Some(w) = &mut self.waiter {
            return w.poll();
        }
        if self.ready.is_some() {
            return true;
        }
        match &self.rx {
            None => true,
            Some((_, rx, _)) => match rx.try_recv() {
                Ok(reply) => {
                    self.ready = Some(reply);
                    true
                }
                Err(_) => false,
            },
        }
    }

    /// Block until the handler has run, advance the caller's virtual clock
    /// to the completion time plus the reply wire latency, and propagate
    /// any handler panic.
    pub fn wait(mut self) {
        if let Some(w) = self.waiter.take() {
            return w.wait();
        }
        let Some((tx, rx, wire_ns)) = self.rx.take() else {
            return;
        };
        let (out, end) = match self.ready.take() {
            Some(reply) => reply,
            None => rx
                .recv()
                .expect("progress thread terminated while an async call was pending"),
        };
        // The single reply is consumed either way; the pair is pristine.
        am::recycle_reply_channel(tx, rx);
        vtime::advance_to(end + wire_ns);
        if let Err(payload) = out {
            resume_unwind(payload);
        }
    }
}

impl std::fmt::Debug for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Completion")
            .field("pending", &(self.rx.is_some() || self.waiter.is_some()))
            .finish()
    }
}

/// A task-private, per-destination buffering proxy for remote operations —
/// the Chapel Aggregation Library pattern, and the generalization of the
/// paper's scatter list (§II-C).
///
/// Instead of issuing one small remote operation per item, a `Batcher`
/// buffers items per destination locale and ships each buffer through the
/// engine's bulk path ([`CommEngine::bulk_on`]): N small remote ops become
/// one bulk active message, charged once for its payload on the wire and
/// per-item in the destination-side handler.
///
/// A batcher is `&mut self` (one per task, like CAL's per-task aggregation
/// buffers) so the buffering itself needs no synchronization; the
/// destination-side handler runs on the destination locale's progress
/// service and must be thread-safe. Buffers auto-flush when they reach
/// capacity and on drop (the epoch/phase boundary); call
/// [`Batcher::flush`] to force remote effects before relying on them.
///
/// Two *adaptive* controls bound latency and memory beyond the fixed
/// per-destination capacity:
///
/// * A **high watermark** ([`Batcher::with_high_watermark`]) caps the
///   *total* buffered items across all destinations — when reached, the
///   fullest buffer is flushed. This bounds memory for skewed or
///   many-destination workloads where no single buffer fills.
/// * A **flush-on-idle hook** ([`Batcher::poll_idle`]) for callers with an
///   idle loop: the first poll with no intervening [`Batcher::aggregate`]
///   flushes everything, so stragglers never strand waiting for a capacity
///   trigger.
pub struct Batcher<'h, T: Send> {
    buffers: Vec<Vec<T>>,
    /// Causal-trace context captured when each destination's buffer got its
    /// *first* item since the last flush: a bulk AM aggregates many
    /// logical operations but can only nest under one, so the batch is
    /// attributed to its first appender (coarse but causally sound — the
    /// flush cannot depart before that operation existed).
    trace_ctxs: Vec<Option<crate::telemetry::trace::TraceCtx>>,
    capacity: usize,
    high_watermark: Option<usize>,
    pending_count: usize,
    appended_since_poll: bool,
    handler: Box<dyn Fn(LocaleId, Vec<T>) + Send + Sync + 'h>,
    flushes: u64,
    items: u64,
}

impl<'h, T: Send> Batcher<'h, T> {
    /// Create a batcher whose `handler` is executed **on the destination
    /// locale** with each flushed batch.
    pub fn new(
        core: &RuntimeCore,
        capacity: usize,
        handler: impl Fn(LocaleId, Vec<T>) + Send + Sync + 'h,
    ) -> Batcher<'h, T> {
        assert!(capacity >= 1, "aggregation buffers need capacity >= 1");
        Batcher {
            buffers: (0..core.num_locales()).map(|_| Vec::new()).collect(),
            trace_ctxs: vec![None; core.num_locales()],
            capacity,
            high_watermark: None,
            pending_count: 0,
            appended_since_poll: false,
            handler: Box::new(handler),
            flushes: 0,
            items: 0,
        }
    }

    /// Cap the *total* number of items buffered across all destinations:
    /// when an [`Batcher::aggregate`] would exceed `watermark`, the fullest
    /// buffer is flushed first. Bounds memory when items spread over many
    /// destinations without any single buffer reaching capacity.
    pub fn with_high_watermark(mut self, watermark: usize) -> Self {
        assert!(watermark >= 1, "high watermark must be >= 1");
        self.high_watermark = Some(watermark);
        self
    }

    /// Buffer `item` for `dest`, flushing that destination's buffer if it
    /// reaches capacity (and the fullest buffer if the total crosses the
    /// high watermark).
    pub fn aggregate(&mut self, dest: LocaleId, item: T) {
        let buf = &mut self.buffers[dest as usize];
        if buf.is_empty() {
            self.trace_ctxs[dest as usize] = crate::telemetry::trace::current();
        }
        buf.push(item);
        self.items += 1;
        self.pending_count += 1;
        self.appended_since_poll = true;
        if buf.len() >= self.capacity {
            self.flush_one(dest);
        } else if let Some(hw) = self.high_watermark {
            if self.pending_count >= hw {
                self.flush_fullest();
            }
        }
    }

    /// Flush the destination currently holding the most buffered items
    /// (no-op when nothing is pending).
    fn flush_fullest(&mut self) {
        if let Some(dest) = (0..self.buffers.len())
            .max_by_key(|&d| self.buffers[d].len())
            .filter(|&d| !self.buffers[d].is_empty())
        {
            self.flush_one(dest as LocaleId);
        }
    }

    /// Idle hook for adaptive flushing: call this from an idle or polling
    /// loop. The first call with no [`Batcher::aggregate`] since the
    /// previous call flushes all pending items (returning `true`); a call
    /// that observed fresh traffic just arms the idle detector and returns
    /// `false`. Items therefore never strand waiting for a capacity
    /// trigger, without flushing eagerly while the producer is still hot.
    pub fn poll_idle(&mut self) -> bool {
        if self.appended_since_poll {
            self.appended_since_poll = false;
            false
        } else if self.pending_count > 0 {
            self.flush();
            true
        } else {
            false
        }
    }

    /// Flush one destination's buffer (no-op when empty): a single bulk
    /// active message carrying the whole batch, charged for its payload on
    /// the wire and per-item on the handler side.
    pub fn flush_one(&mut self, dest: LocaleId) {
        let batch = std::mem::take(&mut self.buffers[dest as usize]);
        if batch.is_empty() {
            return;
        }
        self.flushes += 1;
        self.pending_count -= batch.len();
        // Ship under the first appender's trace context (see `trace_ctxs`),
        // so the bulk AM's span nests under the operation that opened the
        // batch.
        let tctx = self.trace_ctxs[dest as usize].take();
        let _tg = tctx.map(|c| crate::telemetry::trace::enter(Some(c)));
        ctx::with_core(|core, here| {
            if dest == here {
                // Local batch: apply directly, no communication.
                (self.handler)(dest, batch);
            } else {
                let n = batch.len() as u64;
                let bytes = batch.len() * std::mem::size_of::<T>();
                core.engine().put(core, dest, bytes);
                let handler = &self.handler;
                core.engine().bulk_on(
                    core,
                    dest,
                    n,
                    Box::new(move || {
                        // Per-item processing cost on the handler side, so
                        // bulk work is not modeled as free.
                        vtime::charge((core.config.network.remote_heap_op_ns / 4 + 1) * n);
                        handler(dest, batch);
                    }),
                );
            }
        });
    }

    /// Flush every destination (call before relying on remote effects;
    /// also done automatically on drop).
    pub fn flush(&mut self) {
        for dest in 0..self.buffers.len() as LocaleId {
            self.flush_one(dest);
        }
    }

    /// Alias for [`Batcher::flush`], matching the original `Aggregator`
    /// API.
    pub fn flush_all(&mut self) {
        self.flush();
    }

    /// Items aggregated so far (including flushed ones).
    pub fn items_aggregated(&self) -> u64 {
        self.items
    }

    /// Batches flushed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Items currently buffered (not yet flushed).
    pub fn pending(&self) -> usize {
        debug_assert_eq!(
            self.pending_count,
            self.buffers.iter().map(Vec::len).sum::<usize>()
        );
        self.pending_count
    }
}

impl<T: Send> Drop for Batcher<'_, T> {
    fn drop(&mut self) {
        if ctx::try_here().is_some() {
            self.flush();
        } else {
            debug_assert_eq!(
                self.pending(),
                0,
                "batcher dropped outside a runtime context while holding \
                 unflushed items"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Free-function façade: callers that don't want the trait in scope go
// through these (they delegate to the runtime's engine instance).
// ---------------------------------------------------------------------------

/// [`CommEngine::remote_atomic_u64`] on the runtime's engine.
pub fn remote_atomic_u64(core: &RuntimeCore, owner: LocaleId) -> AtomicPath {
    core.engine().remote_atomic_u64(core, owner)
}

/// [`CommEngine::remote_dcas_u128`] on the runtime's engine.
pub fn remote_dcas_u128(core: &RuntimeCore, owner: LocaleId) -> AtomicPath {
    core.engine().remote_dcas_u128(core, owner)
}

/// [`CommEngine::remote_vread_u128`] on the runtime's engine.
pub fn remote_vread_u128(
    core: &RuntimeCore,
    owner: LocaleId,
    seq: &std::sync::atomic::AtomicU64,
    load: &dyn Fn() -> u128,
) -> Option<u128> {
    core.engine().remote_vread_u128(core, owner, seq, load)
}

/// Planted-bug hook for the versioned-read torn-read oracle: when enabled,
/// fast reads skip sequence validation (returning possibly-mixed halves).
/// Test-only; returns the previous value. See
/// [`CommEngine::remote_vread_u128`].
pub fn debug_vread_skip_validate(on: bool) -> bool {
    crate::comm::debug_vread_skip_validate(on)
}

/// [`CommEngine::handler_atomic_u64`] on the runtime's engine.
pub fn handler_atomic_u64(core: &RuntimeCore) {
    core.engine().handler_atomic_u64(core);
}

/// [`CommEngine::handler_dcas_u128`] on the runtime's engine.
pub fn handler_dcas_u128(core: &RuntimeCore) {
    core.engine().handler_dcas_u128(core);
}

/// [`CommEngine::get`] on the runtime's engine.
pub fn get(core: &RuntimeCore, owner: LocaleId, bytes: usize) {
    core.engine().get(core, owner, bytes);
}

/// [`CommEngine::put`] on the runtime's engine.
pub fn put(core: &RuntimeCore, owner: LocaleId, bytes: usize) {
    core.engine().put(core, owner, bytes);
}

/// GET a `Copy` value through a global pointer, charging RMA costs through
/// the engine.
///
/// # Safety
/// The object must be alive; see [`crate::globalptr::GlobalPtr::deref`].
pub unsafe fn get_val<T: Copy>(core: &RuntimeCore, ptr: GlobalPtr<T>) -> T {
    core.engine()
        .get(core, ptr.locale(), std::mem::size_of::<T>());
    unsafe { *ptr.as_ptr() }
}

/// PUT a `Copy` value through a global pointer, charging RMA costs through
/// the engine.
///
/// # Safety
/// The object must be alive and no other task may be reading or writing
/// it concurrently (one-sided PUTs have no synchronization, exactly like
/// the real thing).
pub unsafe fn put_val<T: Copy>(core: &RuntimeCore, ptr: GlobalPtr<T>, v: T) {
    core.engine()
        .put(core, ptr.locale(), std::mem::size_of::<T>());
    unsafe { *ptr.as_ptr() = v };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn on_async_does_not_advance_sender_clock() {
        let rt = Runtime::cluster(2);
        let ((), span) = rt.run_measured(|| {
            let c = rt.on_async(1, || {});
            // A blocking call behind it synchronizes (FIFO per locale with
            // one progress thread), proving the handler ran.
            rt.on(1, || ());
            c.wait();
        });
        // The async handler overlaps with the blocking round trip; the
        // measured span is bounded by the two sequentialized round trips.
        let net = &rt.config.network;
        let round_trip = 2 * net.am_wire_ns + net.am_handler_ns;
        assert!(span < 2 * round_trip, "async must overlap: span={span}");
        assert_eq!(rt.total_comm().am_sent, 2);
    }

    #[test]
    fn on_async_wait_matches_blocking_round_trip() {
        let rt = Runtime::cluster(2);
        let ((), span) = rt.run_measured(|| {
            rt.on_async(1, || {}).wait();
        });
        let net = &rt.config.network;
        assert_eq!(span, 2 * net.am_wire_ns + net.am_handler_ns);
    }

    #[test]
    fn on_async_local_is_inline_and_complete() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let hit = std::sync::Arc::new(AtomicU64::new(0));
            let hit2 = std::sync::Arc::clone(&hit);
            let mut c = rt.on_async(0, move || {
                hit2.fetch_add(1, Ordering::Relaxed);
            });
            assert!(c.completed());
            c.wait();
            assert_eq!(hit.load(Ordering::Relaxed), 1);
            assert_eq!(rt.total_comm().am_sent, 0);
        });
    }

    #[test]
    fn on_async_completion_polls_to_done() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let mut c = rt.on_async(1, || {});
            while !c.completed() {
                std::thread::yield_now();
            }
            c.wait();
        });
    }

    #[test]
    #[should_panic(expected = "async boom")]
    fn on_async_wait_propagates_handler_panic() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            rt.on_async(1, || panic!("async boom")).wait();
        });
    }

    #[test]
    fn bulk_on_counts_batches_and_items() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            rt.engine().bulk_on(&rt, 1, 25, Box::new(|| {}));
            let s = rt.total_comm();
            assert_eq!(s.am_sent, 1);
            assert_eq!(s.am_batches, 1);
            assert_eq!(s.am_batch_items, 25);
        });
    }

    #[test]
    fn bulk_on_local_is_free() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let hit = AtomicU64::new(0);
            rt.engine().bulk_on(
                &rt,
                0,
                9,
                Box::new(|| {
                    hit.fetch_add(1, Ordering::Relaxed);
                }),
            );
            assert_eq!(hit.load(Ordering::Relaxed), 1);
            assert!(rt.total_comm().is_zero());
        });
    }

    // --- Batcher (the generalized scatter-list / CAL aggregation) ---

    #[test]
    fn items_reach_their_destination_handler() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(3));
        rt.run(|| {
            let per_locale: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
            {
                let mut agg = Batcher::new(&rt, 4, |dest, batch: Vec<u64>| {
                    // handler runs ON the destination
                    assert_eq!(crate::ctx::here(), dest);
                    per_locale[dest as usize].fetch_add(batch.iter().sum(), Ordering::Relaxed);
                });
                for i in 0..30u64 {
                    agg.aggregate((i % 3) as LocaleId, i);
                }
                agg.flush();
            }
            let totals: Vec<u64> = per_locale
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect();
            assert_eq!(totals.iter().sum::<u64>(), (0..30).sum::<u64>());
            assert_eq!(totals[0], (0..30).step_by(3).sum::<u64>());
        });
    }

    #[test]
    fn buffering_caps_message_count() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let sink = AtomicU64::new(0);
            let n = 100u64;
            let cap = 16;
            rt.reset_metrics();
            {
                let mut agg = Batcher::new(&rt, cap, |_, batch: Vec<u64>| {
                    sink.fetch_add(batch.len() as u64, Ordering::Relaxed);
                });
                for i in 0..n {
                    agg.aggregate(1, i); // everything remote
                }
            } // drop flushes the tail
            assert_eq!(sink.load(Ordering::Relaxed), n);
            let s = rt.total_comm();
            let expected_ams = n.div_ceil(cap as u64);
            assert_eq!(s.am_sent, expected_ams, "one AM per full buffer");
            assert_eq!(s.puts, expected_ams, "payload charged per batch");
            assert_eq!(s.am_batches, expected_ams, "each flush is a bulk AM");
            assert_eq!(s.am_batch_items, n, "every item rode a batch");
        });
    }

    #[test]
    fn local_batches_do_not_communicate() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let count = AtomicU64::new(0);
            rt.reset_metrics();
            let mut agg = Batcher::new(&rt, 8, |_, b: Vec<u64>| {
                count.fetch_add(b.len() as u64, Ordering::Relaxed);
            });
            for i in 0..20 {
                agg.aggregate(0, i); // local destination
            }
            agg.flush();
            assert_eq!(count.load(Ordering::Relaxed), 20);
            assert!(rt.total_comm().is_zero());
        });
    }

    #[test]
    fn stats_track_items_and_flushes() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            let mut agg = Batcher::new(&rt, 4, |_, _: Vec<u8>| {});
            for i in 0..10 {
                agg.aggregate((i % 2) as LocaleId, i as u8);
            }
            assert_eq!(agg.items_aggregated(), 10);
            assert_eq!(agg.flushes(), 2, "two buffers hit capacity 4+4");
            assert_eq!(agg.pending(), 2);
            agg.flush();
            assert_eq!(agg.pending(), 0);
            assert_eq!(agg.flushes(), 4);
        });
    }

    #[test]
    fn high_watermark_bounds_total_pending() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let mut agg = Batcher::new(&rt, 1024, |_, _: Vec<u64>| {}).with_high_watermark(8);
            for i in 0..100u64 {
                agg.aggregate((i % 4) as LocaleId, i);
                assert!(agg.pending() <= 8, "watermark must bound buffered items");
            }
            assert_eq!(agg.items_aggregated(), 100);
            agg.flush();
            assert_eq!(agg.pending(), 0);
        });
    }

    #[test]
    fn poll_idle_flushes_stragglers() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            let sink = AtomicU64::new(0);
            let mut agg = Batcher::new(&rt, 64, |_, b: Vec<u64>| {
                sink.fetch_add(b.len() as u64, Ordering::Relaxed);
            });
            agg.aggregate(1, 7);
            // First poll observed fresh traffic: arm the detector only.
            assert!(!agg.poll_idle());
            assert_eq!(sink.load(Ordering::Relaxed), 0);
            // Second poll with no traffic in between: flush everything.
            assert!(agg.poll_idle());
            assert_eq!(sink.load(Ordering::Relaxed), 1);
            assert_eq!(agg.pending(), 0);
            // Nothing pending: no-op.
            assert!(!agg.poll_idle());
        });
    }

    #[test]
    fn poll_idle_on_an_empty_batcher_is_a_noop_forever() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            let flushed = AtomicU64::new(0);
            let mut agg = Batcher::new(&rt, 16, |_, _: Vec<u64>| {
                flushed.fetch_add(1, Ordering::Relaxed);
            });
            // No destination has ever buffered anything: polling must
            // neither arm, flush, nor count.
            for _ in 0..5 {
                assert!(!agg.poll_idle());
            }
            assert_eq!(flushed.load(Ordering::Relaxed), 0);
            assert_eq!(agg.flushes(), 0);
            assert!(rt.total_comm().is_zero(), "idle polls are free");
        });
    }

    #[test]
    fn single_buffered_item_flushes_after_exactly_one_idle_poll() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            let got: parking_lot::Mutex<Vec<(LocaleId, u64)>> = parking_lot::Mutex::new(Vec::new());
            let mut agg = Batcher::new(&rt, 64, |dest, b: Vec<u64>| {
                let mut g = got.lock();
                for v in b {
                    g.push((dest, v));
                }
            });
            agg.aggregate(1, 99);
            assert!(!agg.poll_idle(), "first poll after traffic only arms");
            assert!(agg.poll_idle(), "second idle poll flushes the straggler");
            assert_eq!(*got.lock(), vec![(1, 99)], "right payload, right dest");
            // The cycle restarts cleanly: new traffic re-arms from scratch.
            agg.aggregate(0, 5);
            assert!(!agg.poll_idle());
            assert!(agg.poll_idle());
            assert_eq!(got.lock().len(), 2);
        });
    }

    #[test]
    fn poll_idle_sweeps_watermark_leftovers() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            let sink = AtomicU64::new(0);
            let mut agg = Batcher::new(&rt, 1024, |_, b: Vec<u64>| {
                sink.fetch_add(b.len() as u64, Ordering::Relaxed);
            })
            .with_high_watermark(6);
            // 9 items over 3 destinations: the watermark drains only the
            // fullest buffer when total pending hits 6, leaving stragglers
            // that nothing but poll_idle would ever flush.
            for i in 0..9u64 {
                agg.aggregate((i % 3) as LocaleId, i);
            }
            let leftovers = agg.pending();
            assert!(
                leftovers > 0 && leftovers < 9,
                "watermark must have drained some but not all ({leftovers})"
            );
            assert!(
                !agg.poll_idle(),
                "poll 1: traffic since last poll, arm only"
            );
            assert!(agg.poll_idle(), "poll 2: idle, sweep the stragglers");
            assert_eq!(agg.pending(), 0);
            assert_eq!(sink.load(Ordering::Relaxed), 9, "no item lost or doubled");
            assert!(!agg.poll_idle(), "empty again: back to no-op polls");
        });
    }

    #[test]
    fn aggregation_beats_per_item_messages_in_vtime() {
        let n = 512u64;
        // per-item remote ops
        let rt = Runtime::cluster(2);
        let ((), per_item) = rt.run_measured(|| {
            for _ in 0..n {
                rt.on(1, || {});
            }
        });
        // aggregated
        let rt = Runtime::cluster(2);
        let ((), aggregated) = rt.run_measured(|| {
            let mut agg = Batcher::new(&rt, 128, |_, _: Vec<u64>| {});
            for i in 0..n {
                agg.aggregate(1, i);
            }
            agg.flush();
        });
        assert!(
            aggregated * 10 < per_item,
            "aggregation should win by >10x: {aggregated} vs {per_item}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let _ = Batcher::new(&rt, 0, |_, _: Vec<u8>| {});
        });
    }
}
