//! Communication aggregation — the Chapel Aggregation Library pattern.
//!
//! The paper's scatter list (§II-C) is one instance of a general idiom
//! the authors built CAL [12] around: instead of issuing one small remote
//! operation per item, buffer items per destination locale and ship each
//! buffer as a single bulk active message. This module provides that
//! idiom as a reusable, task-private [`Aggregator`].
//!
//! An aggregator is `&mut self` (one per task, like CAL's per-task
//! aggregation buffers) so the buffering itself needs no synchronization;
//! the destination-side handler runs on the destination locale's progress
//! thread and must be thread-safe.

use crate::ctx;
use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;
use crate::vtime;

/// Default per-destination buffer capacity (items).
pub const DEFAULT_BUFFER_CAP: usize = 1024;

/// A task-private, per-destination buffering proxy for remote operations.
pub struct Aggregator<'h, T: Send> {
    buffers: Vec<Vec<T>>,
    capacity: usize,
    handler: Box<dyn Fn(LocaleId, Vec<T>) + Send + Sync + 'h>,
    flushes: u64,
    items: u64,
}

impl<'h, T: Send> Aggregator<'h, T> {
    /// Create an aggregator whose `handler` is executed **on the
    /// destination locale** with each flushed batch.
    pub fn new(
        core: &RuntimeCore,
        capacity: usize,
        handler: impl Fn(LocaleId, Vec<T>) + Send + Sync + 'h,
    ) -> Aggregator<'h, T> {
        assert!(capacity >= 1, "aggregation buffers need capacity >= 1");
        Aggregator {
            buffers: (0..core.num_locales()).map(|_| Vec::new()).collect(),
            capacity,
            handler: Box::new(handler),
            flushes: 0,
            items: 0,
        }
    }

    /// Buffer `item` for `dest`, flushing that destination's buffer if it
    /// reaches capacity.
    pub fn aggregate(&mut self, dest: LocaleId, item: T) {
        let buf = &mut self.buffers[dest as usize];
        buf.push(item);
        self.items += 1;
        if buf.len() >= self.capacity {
            self.flush_one(dest);
        }
    }

    /// Flush one destination's buffer (no-op when empty): a single active
    /// message carrying the whole batch, charged for its payload.
    pub fn flush_one(&mut self, dest: LocaleId) {
        let batch = std::mem::take(&mut self.buffers[dest as usize]);
        if batch.is_empty() {
            return;
        }
        self.flushes += 1;
        ctx::with_core(|core, here| {
            let bytes = batch.len() * std::mem::size_of::<T>();
            if dest == here {
                // Local batch: apply directly, no communication.
                (self.handler)(dest, batch);
            } else {
                crate::comm::charge_put(core, dest, bytes);
                let handler = &self.handler;
                core.on(dest, move || {
                    // A touch of per-item processing cost on the handler
                    // side, so bulk work is not modeled as free.
                    vtime::charge(core.config.network.remote_heap_op_ns / 4 + 1);
                    handler(dest, batch);
                });
            }
        });
    }

    /// Flush every destination (call before relying on remote effects;
    /// also done automatically on drop).
    pub fn flush_all(&mut self) {
        for dest in 0..self.buffers.len() as LocaleId {
            self.flush_one(dest);
        }
    }

    /// Items aggregated so far (including flushed ones).
    pub fn items_aggregated(&self) -> u64 {
        self.items
    }

    /// Batches flushed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Items currently buffered (not yet flushed).
    pub fn pending(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }
}

impl<T: Send> Drop for Aggregator<'_, T> {
    fn drop(&mut self) {
        if pgas_sim_has_ctx() {
            self.flush_all();
        } else {
            debug_assert_eq!(
                self.pending(),
                0,
                "aggregator dropped outside a runtime context while holding \
                 unflushed items"
            );
        }
    }
}

fn pgas_sim_has_ctx() -> bool {
    crate::ctx::try_here().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn items_reach_their_destination_handler() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(3));
        rt.run(|| {
            let per_locale: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(0)).collect();
            {
                let mut agg = Aggregator::new(&rt, 4, |dest, batch: Vec<u64>| {
                    // handler runs ON the destination
                    assert_eq!(crate::ctx::here(), dest);
                    per_locale[dest as usize].fetch_add(batch.iter().sum(), Ordering::Relaxed);
                });
                for i in 0..30u64 {
                    agg.aggregate((i % 3) as LocaleId, i);
                }
                agg.flush_all();
            }
            let totals: Vec<u64> = per_locale
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect();
            assert_eq!(totals.iter().sum::<u64>(), (0..30).sum::<u64>());
            assert_eq!(totals[0], (0..30).step_by(3).sum::<u64>());
        });
    }

    #[test]
    fn buffering_caps_message_count() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let sink = AtomicU64::new(0);
            let n = 100u64;
            let cap = 16;
            rt.reset_metrics();
            {
                let mut agg = Aggregator::new(&rt, cap, |_, batch: Vec<u64>| {
                    sink.fetch_add(batch.len() as u64, Ordering::Relaxed);
                });
                for i in 0..n {
                    agg.aggregate(1, i); // everything remote
                }
            } // drop flushes the tail
            assert_eq!(sink.load(Ordering::Relaxed), n);
            let s = rt.total_comm();
            let expected_ams = n.div_ceil(cap as u64);
            assert_eq!(s.am_sent, expected_ams, "one AM per full buffer");
            assert_eq!(s.puts, expected_ams, "payload charged per batch");
        });
    }

    #[test]
    fn local_batches_do_not_communicate() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let count = AtomicU64::new(0);
            rt.reset_metrics();
            let mut agg = Aggregator::new(&rt, 8, |_, b: Vec<u64>| {
                count.fetch_add(b.len() as u64, Ordering::Relaxed);
            });
            for i in 0..20 {
                agg.aggregate(0, i); // local destination
            }
            agg.flush_all();
            assert_eq!(count.load(Ordering::Relaxed), 20);
            assert_eq!(rt.total_comm().am_sent, 0);
        });
    }

    #[test]
    fn stats_track_items_and_flushes() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(2));
        rt.run(|| {
            let mut agg = Aggregator::new(&rt, 4, |_, _: Vec<u8>| {});
            for i in 0..10 {
                agg.aggregate((i % 2) as LocaleId, i as u8);
            }
            assert_eq!(agg.items_aggregated(), 10);
            assert_eq!(agg.flushes(), 2, "two buffers hit capacity 4+4");
            assert_eq!(agg.pending(), 2);
            agg.flush_all();
            assert_eq!(agg.pending(), 0);
            assert_eq!(agg.flushes(), 4);
        });
    }

    #[test]
    fn aggregation_beats_per_item_messages_in_vtime() {
        let n = 512u64;
        // per-item remote ops
        let rt = Runtime::cluster(2);
        let ((), per_item) = rt.run_measured(|| {
            for _ in 0..n {
                rt.on(1, || {});
            }
        });
        // aggregated
        let rt = Runtime::cluster(2);
        let ((), aggregated) = rt.run_measured(|| {
            let mut agg = Aggregator::new(&rt, 128, |_, _: Vec<u64>| {});
            for i in 0..n {
                agg.aggregate(1, i);
            }
            agg.flush_all();
        });
        assert!(
            aggregated * 10 < per_item,
            "aggregation should win by >10x: {aggregated} vs {per_item}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let _ = Aggregator::new(&rt, 0, |_, _: Vec<u8>| {});
        });
    }
}
