//! Communication aggregation — compatibility shim.
//!
//! The Chapel Aggregation Library pattern that used to live here (the
//! generalization of the paper's scatter list, §II-C) is now part of the
//! communication engine: see [`crate::engine::Batcher`]. This module
//! re-exports it under its original `Aggregator` name so existing callers
//! keep compiling; new code should use [`crate::engine`] directly.

pub use crate::engine::{Batcher as Aggregator, DEFAULT_BUFFER_CAP};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};

    // The full behavioural suite lives in `crate::engine`; this smoke test
    // pins the re-exported names.
    #[test]
    fn aggregator_alias_still_works() {
        let _cap = DEFAULT_BUFFER_CAP;
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let sum = AtomicU64::new(0);
            let mut agg = Aggregator::new(&rt, 4, |_, batch: Vec<u64>| {
                sum.fetch_add(batch.iter().sum(), Ordering::Relaxed);
            });
            for i in 0..10u64 {
                agg.aggregate(1, i);
            }
            agg.flush_all();
            assert_eq!(sum.load(Ordering::Relaxed), 45);
        });
    }
}
