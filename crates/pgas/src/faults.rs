//! Seeded, deterministic fault injection for the simulated interconnect.
//!
//! The rest of the simulator only ever exercises the happy path: every
//! active message is delivered exactly once, every locale services its
//! queue promptly, every pinned task unpins. The paper's claims are about
//! what happens *off* that path — non-blocking progress when messages are
//! delayed, duplicated, or lost and when individual nodes straggle. This
//! module supplies the missing adversary: a [`FaultPlan`] the engine
//! consults on every remote operation, deciding *deterministically from a
//! seed* whether to inject
//!
//! - **delay** — extra wire latency added to a message's arrival time;
//! - **duplication** — a second delivery of the same message, discarded by
//!   the receiver (the simulator models at-least-once delivery plus
//!   receiver-side dedup: the duplicate occupies a server slot and pays
//!   dispatch cost but runs no user code);
//! - **drop** — the message is lost before execution. Only operations
//!   tagged [`OpClass::Idempotent`] are eligible: the sender times out,
//!   backs off per the plan's [`RetryPolicy`], and resends. Non-idempotent
//!   operations (CAS publishes, frees, combined batches carrying mixed
//!   riders) are never dropped because blind retransmission could apply
//!   them twice;
//! - **straggler locale** — one locale's AM handler dispatch is slowed by a
//!   multiplier, modelling a node that is alive but overloaded;
//! - **stalled pinned task** — scenario data for chaos harnesses: the plan
//!   names a locale on which the workload should park a pinned epoch token
//!   for the duration of the run, so reclamation is forced to cope with a
//!   non-cooperating participant.
//!
//! # Determinism
//!
//! Injection decisions are pure functions of `(seed, fault class, decision
//! index)`: each class keeps an atomic decision counter, and decision `i`
//! fires iff `splitmix64(seed ^ salt ^ i) % 1000 < per_mille`. Running the
//! same plan over a workload that issues a deterministic *number* of remote
//! operations therefore reproduces the exact same injection counts (and,
//! for a single-task workload, the same injection *placement*). Workloads
//! with contended CAS loops issue a nondeterministic number of operations,
//! so only their aggregate behaviour is reproducible; the chaos harness
//! verifies bit-exact reproduction on a contention-free cell.
//!
//! With no plan installed (`RuntimeConfig::faults == None`, the default)
//! every hook in the hot path is a single `Option` discriminant test and
//! all counters and virtual-time charges are bit-identical to a build
//! without this module.

pub mod invariants;

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::globalptr::LocaleId;

/// Classification of a remote operation for drop/retry eligibility.
///
/// The sender tags the *current task* via [`with_class`] before issuing the
/// operation; the engine reads the tag at send time. The default — chosen
/// whenever no scope is active — is conservative: [`OpClass::NonIdempotent`],
/// which is never dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Safe to re-execute: pure reads (atomic loads, ABA reads). Eligible
    /// for drop + retry under a fault plan.
    Idempotent,
    /// Not safe to blindly re-execute: RMW publishes, frees, allocations,
    /// combined batches. Never dropped; still subject to delay/duplication
    /// (the duplicate is discarded by the receiver, so it cannot re-apply).
    NonIdempotent,
}

thread_local! {
    static CURRENT_CLASS: Cell<OpClass> = const { Cell::new(OpClass::NonIdempotent) };
}

/// Run `f` with the calling task's operation class set to `class`,
/// restoring the previous class afterwards (scopes nest).
pub fn with_class<R>(class: OpClass, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT_CLASS.with(|c| c.replace(class));
    struct Restore(OpClass);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_CLASS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The operation class currently in scope on this thread.
pub fn current_class() -> OpClass {
    CURRENT_CLASS.with(|c| c.get())
}

/// Timeout-and-retry behaviour for dropped idempotent operations.
///
/// A dropped message costs the sender `timeout_ns + backoff(attempt)`
/// virtual time, where `backoff(k) = min(backoff_base_ns << k,
/// backoff_cap_ns) + jitter` and the jitter is drawn deterministically from
/// the plan's seed. After `max_attempts` consecutive drops the next send is
/// escalated to a reliable channel (modelled as un-droppable) and the
/// `gave_up` counter records that the retry budget was exhausted —
/// operations never hang and the API stays infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Virtual time the sender waits before declaring a send lost.
    pub timeout_ns: u64,
    /// Maximum number of *dropped* sends tolerated before escalating.
    pub max_attempts: u32,
    /// Base backoff added after the first timeout; doubles per attempt.
    pub backoff_base_ns: u64,
    /// Upper bound on the exponential backoff term.
    pub backoff_cap_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout_ns: 20_000,
            max_attempts: 5,
            backoff_base_ns: 1_000,
            backoff_cap_ns: 16_000,
        }
    }
}

/// A seeded description of the faults to inject during a run.
///
/// Probabilities are per-mille (0–1000) so plans stay integral and exact.
/// The default plan injects nothing; build adversarial plans with the
/// `with_*` helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every injection decision and jitter draw.
    pub seed: u64,
    /// Probability (‰) that an idempotent-class AM send is dropped.
    pub drop_per_mille: u32,
    /// Probability (‰) that an AM is delivered twice (duplicate discarded
    /// by the receiver after paying dispatch cost).
    pub dup_per_mille: u32,
    /// Probability (‰) that a remote operation's arrival is delayed.
    pub delay_per_mille: u32,
    /// Maximum injected delay; the actual delay for a firing decision is
    /// drawn uniformly from `0..=max_delay_ns`.
    pub max_delay_ns: u64,
    /// Slow one locale's AM handler dispatch by a multiplier (straggler).
    pub straggler: Option<(LocaleId, u64)>,
    /// Scenario hint for chaos harnesses: park a pinned epoch token on this
    /// locale for the duration of the workload. The engine itself does not
    /// act on this field.
    pub stalled_task: Option<LocaleId>,
    /// Timeout/backoff behaviour for dropped sends.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// A plan that injects nothing, seeded for later `with_*` refinement.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Drop idempotent-class AMs with probability `per_mille`/1000.
    pub fn with_drops(mut self, per_mille: u32) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Duplicate AM deliveries with probability `per_mille`/1000.
    pub fn with_dups(mut self, per_mille: u32) -> Self {
        self.dup_per_mille = per_mille;
        self
    }

    /// Delay remote-operation arrivals with probability `per_mille`/1000,
    /// by up to `max_delay_ns` of virtual time.
    pub fn with_delays(mut self, per_mille: u32, max_delay_ns: u64) -> Self {
        self.delay_per_mille = per_mille;
        self.max_delay_ns = max_delay_ns;
        self
    }

    /// Multiply locale `locale`'s AM handler dispatch cost by `factor`.
    pub fn with_straggler(mut self, locale: LocaleId, factor: u64) -> Self {
        self.straggler = Some((locale, factor));
        self
    }

    /// Ask chaos harnesses to park a pinned epoch token on `locale`.
    pub fn with_stalled_task(mut self, locale: LocaleId) -> Self {
        self.stalled_task = Some(locale);
        self
    }

    /// Override the retry policy for dropped sends.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The AM-handler dispatch-cost multiplier this plan assigns to
    /// `locale`: 1 unless the plan names it as the straggler.
    pub fn slowdown_for(&self, locale: LocaleId) -> u64 {
        match self.straggler {
            Some((l, factor)) if l == locale => factor,
            _ => 1,
        }
    }

    /// Panic on out-of-range fields (probabilities above 1000‰, a zero
    /// retry budget while drops are enabled, a zero straggler multiplier).
    pub(crate) fn validate(&self, num_locales: usize) {
        assert!(self.drop_per_mille <= 1000, "drop_per_mille > 1000");
        assert!(self.dup_per_mille <= 1000, "dup_per_mille > 1000");
        assert!(self.delay_per_mille <= 1000, "delay_per_mille > 1000");
        if self.drop_per_mille > 0 {
            assert!(
                self.retry.max_attempts >= 1,
                "drops enabled with a zero retry budget"
            );
        }
        if let Some((locale, factor)) = self.straggler {
            assert!(
                (locale as usize) < num_locales,
                "straggler locale {locale} out of range"
            );
            assert!(factor >= 1, "straggler multiplier must be >= 1");
        }
        if let Some(locale) = self.stalled_task {
            assert!(
                (locale as usize) < num_locales,
                "stalled-task locale {locale} out of range"
            );
        }
    }
}

/// `splitmix64` — the standard 64-bit finalizer; a pure, high-quality hash
/// of its input used for every injection decision.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const DROP_SALT: u64 = 0x6472_6f70_0000_0001; // "drop"
const DUP_SALT: u64 = 0x6475_7000_0000_0002; // "dup"
const DELAY_SALT: u64 = 0x646c_7900_0000_0003; // "dly"
const JITTER_SALT: u64 = 0x6a74_7200_0000_0004; // "jtr"

/// Live injection state for one runtime: the plan plus per-class decision
/// counters. Counters are monotone and shared by all tasks, so the *set*
/// of firing decision indices is a pure function of the seed; which task
/// draws which index depends on scheduling, but the totals do not (given a
/// deterministic operation count).
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    drop_seq: AtomicU64,
    dup_seq: AtomicU64,
    delay_seq: AtomicU64,
    jitter_seq: AtomicU64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            drop_seq: AtomicU64::new(0),
            dup_seq: AtomicU64::new(0),
            delay_seq: AtomicU64::new(0),
            jitter_seq: AtomicU64::new(0),
        }
    }

    /// The plan this state was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// One injection decision: consume the next index of `seq` and hash it
    /// with the plan seed. Fires with probability `per_mille`/1000,
    /// yielding `(decision index, derived hash)` — the index identifies
    /// the decision for repro fingerprints and telemetry span tags; the
    /// hash parameterizes the injection (e.g. delay magnitude).
    #[inline]
    fn decide(&self, salt: u64, seq: &AtomicU64, per_mille: u32) -> Option<(u64, u64)> {
        if per_mille == 0 {
            return None;
        }
        let i = seq.fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.plan.seed ^ salt ^ i);
        if h % 1000 < per_mille as u64 {
            Some((i, splitmix64(h)))
        } else {
            None
        }
    }

    /// Should the next idempotent-class send be dropped? (Production
    /// callers use [`Self::inject_drop_indexed`] so they can tag retry
    /// spans with the decision index; this shorthand serves the tests.)
    #[cfg(test)]
    #[inline]
    pub(crate) fn inject_drop(&self) -> bool {
        self.inject_drop_indexed().is_some()
    }

    /// Like [`Self::inject_drop`], but returns the firing drop-decision
    /// index (the global drop-sequence number consumed), used to tag the
    /// matching retry telemetry span.
    #[inline]
    pub(crate) fn inject_drop_indexed(&self) -> Option<u64> {
        self.decide(DROP_SALT, &self.drop_seq, self.plan.drop_per_mille)
            .map(|(i, _)| i)
    }

    /// Should the next delivery be duplicated?
    #[inline]
    pub(crate) fn inject_dup(&self) -> bool {
        self.decide(DUP_SALT, &self.dup_seq, self.plan.dup_per_mille)
            .is_some()
    }

    /// Extra arrival delay (ns) to inject on the next remote operation, if
    /// the delay decision fires.
    #[inline]
    pub(crate) fn inject_delay(&self) -> Option<u64> {
        self.decide(DELAY_SALT, &self.delay_seq, self.plan.delay_per_mille)
            .map(|(_, h)| h % (self.plan.max_delay_ns + 1))
    }

    /// Virtual time a sender spends on dropped attempt number `attempt`
    /// (0-based): the detection timeout plus capped exponential backoff
    /// plus seeded jitter.
    pub(crate) fn retry_penalty_ns(&self, attempt: u32) -> u64 {
        let r = &self.plan.retry;
        let shift = attempt.min(16);
        let backoff = r
            .backoff_base_ns
            .saturating_shl(shift)
            .min(r.backoff_cap_ns);
        let jitter = if r.backoff_base_ns == 0 {
            0
        } else {
            let i = self.jitter_seq.fetch_add(1, Ordering::Relaxed);
            splitmix64(self.plan.seed ^ JITTER_SALT ^ i) % r.backoff_base_ns
        };
        r.timeout_ns + backoff + jitter
    }

    /// The retry budget for dropped sends.
    #[inline]
    pub(crate) fn max_attempts(&self) -> u32 {
        self.plan.retry.max_attempts
    }
}

/// `u64::checked_shl` that saturates instead of wrapping (shift counts are
/// already clamped by the caller, but a huge base must not overflow).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift)
            .filter(|&v| v >> shift == self)
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let fs = FaultState::new(FaultPlan::seeded(42));
        for _ in 0..1000 {
            assert!(!fs.inject_drop());
            assert!(!fs.inject_dup());
            assert!(fs.inject_delay().is_none());
        }
        assert_eq!(fs.plan().slowdown_for(0), 1);
    }

    #[test]
    fn decisions_reproduce_for_a_fixed_seed() {
        let plan = FaultPlan::seeded(7).with_drops(250).with_delays(300, 5000);
        let run = || {
            let fs = FaultState::new(plan.clone());
            let drops = (0..500).filter(|_| fs.inject_drop()).count();
            let delays: Vec<u64> = (0..500).filter_map(|_| fs.inject_delay()).collect();
            (drops, delays)
        };
        let (d1, l1) = run();
        let (d2, l2) = run();
        assert_eq!(d1, d2);
        assert_eq!(l1, l2);
        assert!(d1 > 0, "250‰ over 500 draws should fire");
        assert!(!l1.is_empty());
    }

    #[test]
    fn different_seeds_give_different_placements() {
        let a = FaultState::new(FaultPlan::seeded(1).with_drops(500));
        let b = FaultState::new(FaultPlan::seeded(2).with_drops(500));
        let pa: Vec<bool> = (0..256).map(|_| a.inject_drop()).collect();
        let pb: Vec<bool> = (0..256).map(|_| b.inject_drop()).collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn injection_rate_tracks_per_mille() {
        let fs = FaultState::new(FaultPlan::seeded(99).with_dups(100));
        let n = 10_000;
        let fired = (0..n).filter(|_| fs.inject_dup()).count();
        // 10% ± generous slack for a hash sequence.
        assert!((700..=1300).contains(&fired), "fired {fired}/10000");
    }

    #[test]
    fn delays_respect_the_bound() {
        let fs = FaultState::new(FaultPlan::seeded(3).with_delays(1000, 777));
        for _ in 0..200 {
            let d = fs.inject_delay().expect("1000‰ always fires");
            assert!(d <= 777);
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let plan = FaultPlan::seeded(5).with_retry(RetryPolicy {
            timeout_ns: 1_000,
            max_attempts: 8,
            backoff_base_ns: 100,
            backoff_cap_ns: 1_600,
        });
        let fs = FaultState::new(plan);
        // penalty = timeout + min(base << k, cap) + jitter(< base)
        let p0 = fs.retry_penalty_ns(0);
        assert!((1_100..1_200).contains(&p0), "p0 = {p0}");
        let p10 = fs.retry_penalty_ns(10);
        assert!((2_600..2_700).contains(&p10), "capped p10 = {p10}");
    }

    #[test]
    fn class_scopes_nest_and_restore() {
        assert_eq!(current_class(), OpClass::NonIdempotent);
        with_class(OpClass::Idempotent, || {
            assert_eq!(current_class(), OpClass::Idempotent);
            with_class(OpClass::NonIdempotent, || {
                assert_eq!(current_class(), OpClass::NonIdempotent);
            });
            assert_eq!(current_class(), OpClass::Idempotent);
        });
        assert_eq!(current_class(), OpClass::NonIdempotent);
    }

    #[test]
    fn straggler_multiplier_applies_to_one_locale() {
        let plan = FaultPlan::seeded(0).with_straggler(2, 8);
        assert_eq!(plan.slowdown_for(0), 1);
        assert_eq!(plan.slowdown_for(2), 8);
        assert_eq!(plan.slowdown_for(3), 1);
    }

    #[test]
    #[should_panic(expected = "drop_per_mille")]
    fn out_of_range_probability_rejected() {
        FaultPlan::seeded(0).with_drops(1001).validate(4);
    }

    #[test]
    #[should_panic(expected = "straggler locale")]
    fn straggler_locale_must_exist() {
        FaultPlan::seeded(0).with_straggler(9, 4).validate(4);
    }

    // ---- end-to-end injection through the AM path -------------------

    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn chaos_rt(plan: FaultPlan) -> Runtime {
        Runtime::new(
            RuntimeConfig::zero_latency(2)
                .without_network_atomics()
                .with_faults(plan),
        )
    }

    #[test]
    fn idempotent_sends_are_dropped_and_retried_never_lost() {
        let rt = chaos_rt(FaultPlan::seeded(11).with_drops(400));
        rt.run(|| {
            let hits = AtomicU64::new(0);
            for _ in 0..200 {
                with_class(OpClass::Idempotent, || {
                    rt.on(1, || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    })
                });
            }
            let s = rt.total_comm();
            // Every operation executed exactly once despite the drops...
            assert_eq!(hits.load(Ordering::Relaxed), 200);
            assert_eq!(s.am_handled, 200);
            // ...and drops really fired, each costing one extra wire send.
            assert!(s.injected_drops > 0, "400‰ over 200 ops must fire");
            assert_eq!(s.retries, s.injected_drops);
            assert_eq!(s.am_sent, 200 + s.injected_drops);
            assert_eq!(s.injected_dups, 0);
        });
    }

    #[test]
    fn nonidempotent_sends_are_never_dropped() {
        let rt = chaos_rt(FaultPlan::seeded(11).with_drops(1000));
        rt.run(|| {
            for _ in 0..50 {
                // Default class: NonIdempotent.
                rt.on(1, || {});
            }
            let s = rt.total_comm();
            assert_eq!(s.injected_drops, 0);
            assert_eq!(s.retries, 0);
            assert_eq!(s.am_sent, 50);
        });
    }

    #[test]
    fn exhausted_retry_budget_escalates_and_counts_gave_up() {
        // 1000‰ drops: every draw fires, so each op burns the whole retry
        // budget and then goes through on the reliable channel.
        let plan = FaultPlan::seeded(1)
            .with_drops(1000)
            .with_retry(RetryPolicy {
                timeout_ns: 10,
                max_attempts: 3,
                backoff_base_ns: 1,
                backoff_cap_ns: 8,
            });
        let rt = chaos_rt(plan);
        rt.run(|| {
            let hits = AtomicU64::new(0);
            for _ in 0..20 {
                with_class(OpClass::Idempotent, || {
                    rt.on(1, || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    })
                });
            }
            let s = rt.total_comm();
            assert_eq!(hits.load(Ordering::Relaxed), 20, "nothing hangs or is lost");
            assert_eq!(s.injected_drops, 60, "3 drops per op");
            assert_eq!(s.retries, 60);
            assert_eq!(s.gave_up, 20, "every op exhausted its budget");
            assert_eq!(s.am_sent, 80);
        });
    }

    #[test]
    fn duplicates_are_discarded_by_the_receiver() {
        let rt = chaos_rt(FaultPlan::seeded(4).with_dups(1000));
        rt.run(|| {
            let hits = AtomicU64::new(0);
            for _ in 0..40 {
                rt.on(1, || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            // The duplicate deliveries are handled asynchronously by the
            // progress thread — the sender's reply races the duplicate's
            // bookkeeping — so wait for the queue to drain before reading.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while rt.total_comm().am_handled < 80 && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            let s = rt.total_comm();
            // The user body ran exactly once per op; the duplicate only
            // occupied the service (am_handled counts both deliveries).
            assert_eq!(hits.load(Ordering::Relaxed), 40);
            assert_eq!(s.injected_dups, 40);
            assert_eq!(s.am_handled, 80);
            assert_eq!(s.am_sent, 40, "duplication is the network's doing");
        });
    }

    #[test]
    fn injected_delays_advance_virtual_time() {
        // Zero-cost network: any elapsed virtual time comes from injection.
        let rt = chaos_rt(FaultPlan::seeded(9).with_delays(1000, 5_000));
        let ((), span) = rt.run_measured(|| {
            for _ in 0..10 {
                rt.on(1, || {});
            }
        });
        let s = rt.total_comm();
        assert_eq!(s.injected_delays, 10);
        assert!(span > 0, "delays must show up in virtual time");
    }

    #[test]
    fn straggler_locale_slows_handler_dispatch() {
        let base = RuntimeConfig::cluster(2).without_network_atomics();
        let plain = Runtime::new(base.clone());
        let ((), fast) = plain.run_measured(|| {
            for _ in 0..10 {
                plain.on(1, || {});
            }
        });
        let slowed = Runtime::new(base.with_faults(FaultPlan::seeded(0).with_straggler(1, 8)));
        let ((), slow) = slowed.run_measured(|| {
            for _ in 0..10 {
                slowed.on(1, || {});
            }
        });
        assert!(
            slow > fast,
            "8x handler dispatch on the straggler must cost vtime \
             (fast = {fast}, slow = {slow})"
        );
    }

    #[test]
    fn empty_plan_changes_no_counters() {
        let workload = |rt: &Runtime| {
            for i in 0..30 {
                rt.on(1, move || {
                    std::hint::black_box(i);
                });
            }
            rt.total_comm()
        };
        let plain = Runtime::new(RuntimeConfig::zero_latency(2));
        let a = plain.run(|| workload(&plain));
        let faulty =
            Runtime::new(RuntimeConfig::zero_latency(2).with_faults(FaultPlan::seeded(123)));
        let b = faulty.run(|| workload(&faulty));
        assert_eq!(a, b, "a no-op plan must be bit-identical to no plan");
    }
}
