//! Runtime and network configuration.
//!
//! The simulator models a Cray-XC-class machine: each *locale* (compute
//! node) has worker tasks and one or more *progress threads* that service
//! active messages, and the network interface controller (NIC) can perform
//! 64-bit remote atomic operations without involving the target CPU.
//!
//! The `network_atomics` flag mirrors Chapel's `CHPL_NETWORK_ATOMICS`: when
//! enabled, *every* atomic operation — even one whose target is local — is
//! routed through the NIC, because NIC-side atomics are not coherent with
//! CPU-side atomics (per §III of the paper, an order-of-magnitude penalty
//! for local operations).

/// How wide pointers are represented by [`crate::globalptr`] consumers.
///
/// `Compressed` packs a 48-bit virtual address and a 16-bit locale id into a
/// single `u64`, enabling single-word (RDMA-capable) atomics. `Wide` keeps
/// the full 128-bit `{address, locale}` pair, which is what an installation
/// with more than 2^16 locales would be forced to use; atomics on wide
/// pointers require a double-word compare-and-swap and (remotely) an active
/// message instead of a NIC-side atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerMode {
    /// 48-bit address + 16-bit locale id in one `u64` (default).
    Compressed,
    /// Full 128-bit wide pointer; forces the DCAS/active-message path.
    Wide,
}

/// Latency/cost model for the simulated interconnect, in nanoseconds of
/// *virtual time* (see [`crate::vtime`]).
///
/// Defaults are Aries-class numbers: RDMA atomics around a microsecond,
/// active messages a few microseconds including handler dispatch, CPU
/// atomics tens of nanoseconds.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Simulated `CHPL_NETWORK_ATOMICS`. When `true`, all 64-bit atomic
    /// operations (local or remote) are performed "by the NIC" and charged
    /// [`Self::nic_atomic_ns`]. When `false`, local atomics are CPU atomics
    /// and remote atomics fall back to active messages.
    pub network_atomics: bool,
    /// Cost of a CPU-side atomic operation (load/store/CAS/exchange).
    pub cpu_atomic_ns: u64,
    /// Cost of a CPU-side 128-bit double-word CAS (`CMPXCHG16B`).
    pub cpu_dcas_ns: u64,
    /// Cost of a NIC-mediated (RDMA) 64-bit atomic, one-sided.
    pub nic_atomic_ns: u64,
    /// One-way wire latency of an active message.
    pub am_wire_ns: u64,
    /// Fixed dispatch overhead charged on the target progress thread for
    /// each active message, before the handler body runs.
    pub am_handler_ns: u64,
    /// Base latency of a one-sided PUT or GET.
    pub rma_ns: u64,
    /// Per-byte payload cost (inverse bandwidth), in femtoseconds per byte
    /// expressed as ns per KiB to stay integral: total = bytes * per_kib /
    /// 1024.
    pub rma_ns_per_kib: u64,
    /// Cost of one heap allocation or deallocation performed inside an
    /// active-message handler (remote alloc/free).
    pub remote_heap_op_ns: u64,
    /// Per-item dispatch cost inside a *combined* active-message handler
    /// (see [`crate::engine::combine`]): each operation that rode a
    /// combined batch pays this on top of its own body cost, while the
    /// wire and `am_handler_ns` are paid once per batch.
    pub combine_item_ns: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            network_atomics: true,
            cpu_atomic_ns: 20,
            cpu_dcas_ns: 35,
            nic_atomic_ns: 950,
            am_wire_ns: 700,
            am_handler_ns: 1100,
            rma_ns: 850,
            rma_ns_per_kib: 60,
            remote_heap_op_ns: 120,
            combine_item_ns: 150,
        }
    }
}

impl NetworkConfig {
    /// A model where every operation costs zero virtual time. Useful in
    /// unit tests that only care about semantics and communication counts.
    pub fn zero_cost() -> Self {
        NetworkConfig {
            network_atomics: true,
            cpu_atomic_ns: 0,
            cpu_dcas_ns: 0,
            nic_atomic_ns: 0,
            am_wire_ns: 0,
            am_handler_ns: 0,
            rma_ns: 0,
            rma_ns_per_kib: 0,
            remote_heap_op_ns: 0,
            combine_item_ns: 0,
        }
    }
}

/// Which communication backend a [`crate::Runtime`] routes remote traffic
/// through (see [`crate::engine::CommEngine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The in-process simulator backend ([`crate::engine::SimEngine`]):
    /// every locale lives in this process, costs come from the virtual-time
    /// model. The default.
    #[default]
    Sim,
    /// A real multi-process transport: each locale is an OS process and
    /// remote operations cross a wire. The engine object itself lives in a
    /// separate crate (`pgas-net`); construct the runtime with
    /// [`crate::Runtime::with_engine`].
    Proc,
}

/// Top-level configuration for a [`crate::Runtime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Number of simulated locales (compute nodes). Must be ≥ 1 and, in
    /// [`PointerMode::Compressed`], ≤ 2^16.
    pub num_locales: usize,
    /// Progress threads per locale servicing active messages.
    pub progress_threads: usize,
    /// Default number of worker tasks per locale used by
    /// [`crate::Runtime::forall_dist`] when the caller does not override it.
    pub tasks_per_locale: usize,
    /// Interconnect model.
    pub network: NetworkConfig,
    /// Pointer representation (see [`PointerMode`]).
    pub pointer_mode: PointerMode,
    /// Enable remote-operation *combining* (flat combining over the AM
    /// fallback path): concurrent same-destination remote atomics and
    /// deferred frees issued by tasks on one locale are coalesced into a
    /// single bulk active message by an elected combiner task (see
    /// [`crate::engine::combine`]). Off by default so per-op communication
    /// counts stay exact unless explicitly opted in.
    pub combining: bool,
    /// Maximum operations a single combined active message may carry;
    /// larger drains are shipped as consecutive chunks in announce order.
    pub combine_max_batch: usize,
    /// Seeded fault-injection plan (see [`crate::faults`]). `None` — the
    /// default — disables every injection hook; counters and virtual-time
    /// charges are then bit-identical to a faults-free build.
    pub faults: Option<crate::faults::FaultPlan>,
    /// Enable the versioned (seqlock) fast-read path for 128-bit atomic
    /// cells: `read`/`read_aba` become optimistic two-load-and-validate
    /// sequences riding the one-sided GET cost model, with the full DCAS
    /// round trip demoted to a bounded-retry fallback. Off by default so
    /// per-op communication counts stay bit-identical to the pre-seqlock
    /// build unless explicitly opted in.
    pub vread_fastpath: bool,
    /// Maximum optimistic attempts a versioned read makes before falling
    /// back to the DCAS slow path. Must be ≥ 1 when `vread_fastpath` is on.
    pub vread_max_tries: u32,
    /// Which communication backend the runtime uses (see [`EngineKind`]).
    /// [`EngineKind::Sim`] — the default — is built in;
    /// [`EngineKind::Proc`] requires constructing the runtime with
    /// [`crate::Runtime::with_engine`] and a transport engine instance.
    pub engine: EngineKind,
    /// Size in bytes of each locale's *symmetric heap* (see
    /// [`crate::symheap::SymHeap`]): a registered, offset-addressed memory
    /// region every engine backend can target without exchanging pointers.
    /// The same offset names the same logical cell on every locale.
    pub sym_heap_bytes: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_locales: 1,
            progress_threads: 1,
            tasks_per_locale: 4,
            network: NetworkConfig::default(),
            pointer_mode: PointerMode::Compressed,
            combining: false,
            combine_max_batch: 64,
            faults: None,
            vread_fastpath: false,
            vread_max_tries: 4,
            engine: EngineKind::Sim,
            sym_heap_bytes: 1 << 20,
        }
    }
}

impl RuntimeConfig {
    /// Single locale, pure shared-memory semantics (no network atomics, so
    /// local atomics are CPU atomics).
    pub fn shared_memory() -> Self {
        RuntimeConfig {
            num_locales: 1,
            network: NetworkConfig {
                network_atomics: false,
                ..NetworkConfig::default()
            },
            ..RuntimeConfig::default()
        }
    }

    /// An `n`-locale cluster with the default (Aries-like) network model
    /// and RDMA network atomics enabled.
    pub fn cluster(n: usize) -> Self {
        RuntimeConfig {
            num_locales: n,
            ..RuntimeConfig::default()
        }
    }

    /// An `n`-locale cluster whose operations cost zero virtual time;
    /// intended for semantic tests that assert on communication *counts*.
    pub fn zero_latency(n: usize) -> Self {
        RuntimeConfig {
            num_locales: n,
            network: NetworkConfig::zero_cost(),
            ..RuntimeConfig::default()
        }
    }

    /// Disable simulated RDMA network atomics (`CHPL_NETWORK_ATOMICS=off`):
    /// local atomics become CPU atomics, remote atomics become active
    /// messages.
    pub fn without_network_atomics(mut self) -> Self {
        self.network.network_atomics = false;
        self
    }

    /// Force the 128-bit wide-pointer representation (the > 2^16-locale
    /// fallback described in §II-A).
    pub fn with_wide_pointers(mut self) -> Self {
        self.pointer_mode = PointerMode::Wide;
        self
    }

    /// Override the number of worker tasks each locale contributes to
    /// `forall` loops.
    pub fn with_tasks_per_locale(mut self, t: usize) -> Self {
        self.tasks_per_locale = t;
        self
    }

    /// Override the number of progress threads per locale.
    pub fn with_progress_threads(mut self, p: usize) -> Self {
        self.progress_threads = p.max(1);
        self
    }

    /// Enable or disable remote-operation combining (see
    /// [`Self::combining`]).
    pub fn with_combining(mut self, on: bool) -> Self {
        self.combining = on;
        self
    }

    /// Override the maximum size of a combined active message (see
    /// [`Self::combine_max_batch`]).
    pub fn with_combine_max_batch(mut self, max: usize) -> Self {
        self.combine_max_batch = max;
        self
    }

    /// Install a seeded fault-injection plan (see [`crate::faults`]).
    pub fn with_faults(mut self, plan: crate::faults::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enable or disable the versioned (seqlock) fast-read path for wide
    /// atomic cells (see [`Self::vread_fastpath`]).
    pub fn with_vread_fastpath(mut self, on: bool) -> Self {
        self.vread_fastpath = on;
        self
    }

    /// Override the optimistic retry bound of the versioned fast-read path
    /// (see [`Self::vread_max_tries`]).
    pub fn with_vread_max_tries(mut self, tries: u32) -> Self {
        self.vread_max_tries = tries;
        self
    }

    /// Select the communication backend (see [`EngineKind`]).
    pub fn with_engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// Override the per-locale symmetric-heap size in bytes (see
    /// [`Self::sym_heap_bytes`]).
    pub fn with_sym_heap_bytes(mut self, bytes: usize) -> Self {
        self.sym_heap_bytes = bytes;
        self
    }

    /// Validate invariants, panicking with a descriptive message on
    /// misconfiguration.
    pub(crate) fn validate(&self) {
        assert!(self.num_locales >= 1, "need at least one locale");
        if self.pointer_mode == PointerMode::Compressed {
            assert!(
                self.num_locales <= 1 << 16,
                "compressed pointers support at most 2^16 locales; \
                 use PointerMode::Wide"
            );
        }
        assert!(
            self.progress_threads >= 1,
            "need at least one progress thread"
        );
        assert!(
            self.tasks_per_locale >= 1,
            "need at least one task per locale"
        );
        assert!(
            self.combine_max_batch >= 1,
            "combined messages must carry at least one operation"
        );
        if self.vread_fastpath {
            assert!(
                self.vread_max_tries >= 1,
                "versioned reads need at least one optimistic attempt"
            );
        }
        assert!(
            self.sym_heap_bytes >= 64 && self.sym_heap_bytes.is_multiple_of(8),
            "symmetric heap must be at least 64 bytes and word-aligned"
        );
        if let Some(plan) = &self.faults {
            plan.validate(self.num_locales);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = RuntimeConfig::default();
        c.validate();
        assert_eq!(c.num_locales, 1);
        assert!(c.network.network_atomics);
        assert_eq!(c.pointer_mode, PointerMode::Compressed);
    }

    #[test]
    fn cluster_preset() {
        let c = RuntimeConfig::cluster(8);
        c.validate();
        assert_eq!(c.num_locales, 8);
    }

    #[test]
    fn without_network_atomics_flips_flag() {
        let c = RuntimeConfig::cluster(4).without_network_atomics();
        assert!(!c.network.network_atomics);
    }

    #[test]
    fn zero_cost_model_is_all_zero() {
        let n = NetworkConfig::zero_cost();
        assert_eq!(n.cpu_atomic_ns, 0);
        assert_eq!(n.nic_atomic_ns, 0);
        assert_eq!(n.am_wire_ns, 0);
    }

    #[test]
    #[should_panic(expected = "at least one locale")]
    fn zero_locales_rejected() {
        RuntimeConfig {
            num_locales: 0,
            ..RuntimeConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "2^16")]
    fn too_many_compressed_locales_rejected() {
        RuntimeConfig {
            num_locales: (1 << 16) + 1,
            ..RuntimeConfig::default()
        }
        .validate();
    }

    #[test]
    fn vread_fastpath_defaults_off() {
        let c = RuntimeConfig::default();
        assert!(!c.vread_fastpath);
        let c = RuntimeConfig::cluster(4).with_vread_fastpath(true);
        assert!(c.vread_fastpath);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one optimistic attempt")]
    fn vread_zero_tries_rejected() {
        RuntimeConfig::cluster(2)
            .with_vread_fastpath(true)
            .with_vread_max_tries(0)
            .validate();
    }

    #[test]
    fn engine_defaults_to_sim() {
        let c = RuntimeConfig::default();
        assert_eq!(c.engine, EngineKind::Sim);
        assert_eq!(c.sym_heap_bytes, 1 << 20);
        let c = RuntimeConfig::cluster(4)
            .with_engine(EngineKind::Proc)
            .with_sym_heap_bytes(4096);
        assert_eq!(c.engine, EngineKind::Proc);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "symmetric heap")]
    fn tiny_sym_heap_rejected() {
        RuntimeConfig::default().with_sym_heap_bytes(8).validate();
    }

    #[test]
    fn wide_mode_lifts_locale_cap() {
        let c = RuntimeConfig {
            num_locales: (1 << 16) + 1,
            pointer_mode: PointerMode::Wide,
            // do not actually start this many locales in tests!
            ..RuntimeConfig::default()
        };
        c.validate();
    }
}
