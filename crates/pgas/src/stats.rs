//! Per-locale communication and heap statistics.
//!
//! Every simulated communication primitive increments a counter here, so
//! tests can assert *exact* communication behaviour (e.g. "privatized access
//! performs zero communication", "the scatter list issues one bulk free per
//! locale") independently of the latency model.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

macro_rules! counters {
    ($($(#[$m:meta])* $name:ident),+ $(,)?) => {
        /// Live, concurrently-updated communication counters for one locale.
        #[derive(Debug, Default)]
        pub struct CommStats {
            $($(#[$m])* pub $name: CachePadded<AtomicU64>,)+
        }

        /// A plain-old-data snapshot of [`CommStats`], subtractable to
        /// measure deltas across a benchmark phase.
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct CommSnapshot {
            $($(#[$m])* pub $name: u64,)+
        }

        impl CommStats {
            /// Capture the current counter values.
            pub fn snapshot(&self) -> CommSnapshot {
                CommSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Zero all counters. Callers must ensure quiescence.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        impl std::ops::Sub for CommSnapshot {
            type Output = CommSnapshot;
            fn sub(self, rhs: CommSnapshot) -> CommSnapshot {
                CommSnapshot {
                    $($name: self.$name.wrapping_sub(rhs.$name),)+
                }
            }
        }

        impl std::ops::Add for CommSnapshot {
            type Output = CommSnapshot;
            fn add(self, rhs: CommSnapshot) -> CommSnapshot {
                CommSnapshot {
                    $($name: self.$name.wrapping_add(rhs.$name),)+
                }
            }
        }

        impl fmt::Display for CommSnapshot {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                $(writeln!(f, "{:>24}: {}", stringify!($name), self.$name)?;)+
                Ok(())
            }
        }
    };
}

counters! {
    /// 64-bit atomics executed on the (simulated) NIC — RDMA atomics.
    rdma_atomics,
    /// Atomics executed by the local CPU (network atomics disabled, local
    /// target).
    cpu_atomics,
    /// 128-bit double-word CAS operations executed by the local CPU.
    cpu_dcas,
    /// Active messages *sent* from this locale.
    am_sent,
    /// Active messages *handled* by this locale's progress threads.
    am_handled,
    /// Batched active messages sent from this locale — bulk AMs that carry
    /// many aggregated operations (scatter-list frees, [`crate::engine::Batcher`]
    /// flushes). Each batch is also counted once in `am_sent`.
    am_batches,
    /// Individual operations carried inside batched active messages.
    am_batch_items,
    /// Combined active messages shipped by the combining layer
    /// ([`crate::engine::combine`]): each carries the pending operations of
    /// several tasks toward one destination and is also counted once in
    /// `am_sent`, `am_batches`.
    combines,
    /// Individual operations that rode combined active messages.
    combined_ops,
    /// One-sided PUT operations issued from this locale.
    puts,
    /// One-sided GET operations issued from this locale.
    gets,
    /// Bytes moved by PUTs.
    bytes_put,
    /// Bytes moved by GETs.
    bytes_got,
    /// Objects allocated on this locale at a remote task's request.
    remote_allocs,
    /// Objects freed individually via a remote free request.
    remote_frees,
    /// Bulk-free active messages handled by this locale (scatter-list
    /// path); each covers many objects.
    bulk_frees,
    /// Objects released through bulk frees.
    bulk_freed_objects,
    /// Remote operations re-sent after a fault-injected drop or timeout
    /// (see [`crate::faults`]). Always zero without a fault plan.
    retries,
    /// Remote operations whose retry budget was exhausted and that were
    /// escalated to a reliable (un-droppable) send. Always zero without a
    /// fault plan.
    gave_up,
    /// Sends dropped by fault injection before reaching the destination.
    injected_drops,
    /// Remote operations whose arrival was delayed by fault injection.
    injected_delays,
    /// Deliveries duplicated by fault injection (the duplicate is
    /// discarded by the receiver after paying dispatch cost).
    injected_dups,
}

impl CommSnapshot {
    /// Total communication *events* that crossed the network (excludes
    /// CPU-local atomics).
    pub fn network_events(&self) -> u64 {
        self.rdma_atomics + self.am_sent + self.puts + self.gets
    }

    /// True when no counter is set — i.e. a phase performed zero
    /// communication and zero tracked local atomics.
    pub fn is_zero(&self) -> bool {
        *self == CommSnapshot::default()
    }
}

/// Heap accounting for one locale. `live` can be asserted to reach zero at
/// the end of a test to prove reclamation completeness.
#[derive(Debug, Default)]
pub struct HeapStats {
    /// Objects currently allocated on this locale.
    pub live: CachePadded<AtomicI64>,
    /// Total objects ever allocated on this locale.
    pub total_allocs: CachePadded<AtomicU64>,
    /// Total objects ever freed on this locale.
    pub total_frees: CachePadded<AtomicU64>,
}

impl HeapStats {
    pub(crate) fn on_alloc(&self) {
        self.live.fetch_add(1, Ordering::Relaxed);
        self.total_allocs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_free(&self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
        self.total_frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of currently-live tracked objects.
    pub fn live_objects(&self) -> i64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Lifetime allocation count.
    pub fn allocations(&self) -> u64 {
        self.total_allocs.load(Ordering::Relaxed)
    }

    /// Lifetime free count.
    pub fn frees(&self) -> u64 {
        self.total_frees.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sub_gives_delta() {
        let s = CommStats::default();
        s.am_sent.fetch_add(3, Ordering::Relaxed);
        let a = s.snapshot();
        s.am_sent.fetch_add(4, Ordering::Relaxed);
        s.puts.fetch_add(1, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b - a;
        assert_eq!(d.am_sent, 4);
        assert_eq!(d.puts, 1);
        assert_eq!(d.gets, 0);
    }

    #[test]
    fn network_events_excludes_cpu_atomics() {
        let mut s = CommSnapshot {
            cpu_atomics: 100,
            cpu_dcas: 50,
            ..CommSnapshot::default()
        };
        assert_eq!(s.network_events(), 0);
        s.rdma_atomics = 2;
        s.am_sent = 3;
        s.puts = 4;
        s.gets = 5;
        assert_eq!(s.network_events(), 14);
    }

    #[test]
    fn is_zero_detects_clean_phase() {
        let s = CommStats::default();
        assert!(s.snapshot().is_zero());
        s.gets.fetch_add(1, Ordering::Relaxed);
        assert!(!s.snapshot().is_zero());
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = CommStats::default();
        s.rdma_atomics.fetch_add(9, Ordering::Relaxed);
        s.reset();
        assert!(s.snapshot().is_zero());
    }

    #[test]
    fn heap_stats_track_live() {
        let h = HeapStats::default();
        h.on_alloc();
        h.on_alloc();
        h.on_free();
        assert_eq!(h.live_objects(), 1);
        assert_eq!(h.allocations(), 2);
        assert_eq!(h.frees(), 1);
    }

    #[test]
    fn display_lists_every_counter() {
        let s = CommStats::default().snapshot();
        let text = format!("{s}");
        assert!(text.contains("rdma_atomics"));
        assert!(text.contains("bulk_freed_objects"));
    }
}
