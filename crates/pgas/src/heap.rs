//! Locale-owned heap objects.
//!
//! Chapel's `unmanaged` class instances — the only kind the paper's
//! `AtomicObject` supports — are manually-managed heap objects with an
//! affinity to the locale that allocated them. This module provides that:
//! [`alloc_on`] produces a [`GlobalPtr`] to an object placed on a given
//! locale (allocating through an active message when the target is remote,
//! as Chapel's `on loc { new unmanaged C() }` would), and [`free`] releases
//! it, again routing remotely when needed.
//!
//! Deallocating a *batch* of remote objects one by one costs one active
//! message each; [`free_erased_batch`] is the bulk path the paper's scatter
//! list uses — one active message per destination locale, regardless of how
//! many objects it carries.
//!
//! Every allocation is tracked in the owner's [`crate::stats::HeapStats`],
//! so tests can prove reclamation completeness (`live_objects() == 0`).

use std::sync::atomic::Ordering;

use crate::ctx;
use crate::globalptr::{GlobalPtr, LocaleId};
use crate::runtime::RuntimeCore;
use crate::vtime;

/// A type-erased deferred-deletable object: address, owning locale, and a
/// dropper that reconstitutes and drops the concrete `Box<T>`.
///
/// This is what limbo lists and scatter lists carry.
#[derive(Debug)]
pub struct Erased {
    addr: usize,
    owner: LocaleId,
    dropper: unsafe fn(usize),
}

// SAFETY: an Erased is a plain (address, locale, fn) triple; the dropper is
// only invoked once, by whoever owns the reclamation phase, on objects that
// were `Send` when erased (enforced by `erase`'s bound).
unsafe impl Send for Erased {}
unsafe impl Sync for Erased {}

unsafe fn drop_box<T>(addr: usize) {
    drop(unsafe { Box::from_raw(addr as *mut T) });
}

impl Erased {
    /// Erase a pointer for deferred deletion.
    pub fn new<T: Send>(ptr: GlobalPtr<T>) -> Erased {
        debug_assert!(!ptr.is_null(), "cannot defer-delete a null pointer");
        Erased {
            addr: ptr.addr(),
            owner: ptr.locale(),
            dropper: drop_box::<T>,
        }
    }

    /// Locale the object lives on (drives scatter-list binning).
    #[inline]
    pub fn owner(&self) -> LocaleId {
        self.owner
    }

    /// The erased address (for diagnostics).
    #[inline]
    pub fn addr(&self) -> usize {
        self.addr
    }

    /// Drop the underlying object and account the free on its owner.
    ///
    /// # Safety
    /// Must be called exactly once, with no other live references to the
    /// object — the guarantee epoch-based reclamation establishes.
    pub unsafe fn run_drop(self, core: &RuntimeCore) {
        core.locale(self.owner).heap.on_free();
        unsafe { (self.dropper)(self.addr) };
    }
}

/// Allocate `value` with affinity to locale `owner`, returning a global
/// pointer. If `owner` is remote, the allocation happens inside an active
/// message on the owner (the Chapel `on loc do new unmanaged C(...)`
/// pattern) and is counted as a `remote_alloc` there.
pub fn alloc_on<T: Send>(core: &RuntimeCore, owner: LocaleId, value: T) -> GlobalPtr<T> {
    assert!(
        std::mem::size_of::<T>() > 0,
        "zero-sized types have no stable address identity and cannot be \
         tracked as locale-owned objects"
    );
    let here = ctx::here();
    if owner == here {
        let addr = Box::into_raw(Box::new(value));
        core.locale(owner).heap.on_alloc();
        GlobalPtr::from_raw_parts(owner, addr)
    } else {
        core.on(owner, move || {
            let addr = Box::into_raw(Box::new(value));
            let loc = core.locale(owner);
            loc.heap.on_alloc();
            loc.stats.remote_allocs.fetch_add(1, Ordering::Relaxed);
            vtime::charge(core.config.network.remote_heap_op_ns);
            GlobalPtr::from_raw_parts(owner, addr)
        })
    }
}

/// Allocate on the current locale.
pub fn alloc_local<T: Send>(core: &RuntimeCore, value: T) -> GlobalPtr<T> {
    alloc_on(core, ctx::here(), value)
}

/// Free a single object. Remote frees route an active message to the owner
/// and are counted as `remote_frees` — the expensive per-object path that
/// the scatter list exists to avoid.
///
/// # Safety
/// `ptr` must come from [`alloc_on`]/[`alloc_local`], be freed exactly
/// once, and have no live references.
pub unsafe fn free<T: Send>(core: &RuntimeCore, ptr: GlobalPtr<T>) {
    let here = ctx::here();
    let owner = ptr.locale();
    if owner == here {
        core.locale(owner).heap.on_free();
        drop(unsafe { Box::from_raw(ptr.as_ptr()) });
    } else {
        let addr = ptr.addr();
        core.on(owner, move || {
            let loc = core.locale(owner);
            loc.heap.on_free();
            loc.stats.remote_frees.fetch_add(1, Ordering::Relaxed);
            vtime::charge(core.config.network.remote_heap_op_ns);
            drop(unsafe { Box::from_raw(addr as *mut T) });
        });
    }
}

/// Free one erased object, routing an active message when it is remote —
/// the naive per-object path the scatter list replaces (kept for the
/// ablation benchmark). The remote message is *combinable*: with
/// [`crate::config::RuntimeConfig::combining`] enabled, concurrent deferred
/// frees toward one owner share a single bulk active message.
///
/// # Safety
/// As for [`Erased::run_drop`].
pub unsafe fn free_erased(core: &RuntimeCore, e: Erased) {
    let here = ctx::here();
    let owner = e.owner();
    if owner == here {
        unsafe { e.run_drop(core) };
    } else {
        core.on_combining(owner, move || {
            let loc = core.locale(owner);
            loc.stats.remote_frees.fetch_add(1, Ordering::Relaxed);
            vtime::charge(core.config.network.remote_heap_op_ns);
            unsafe { e.run_drop(core) };
        });
    }
}

/// Free a batch of erased objects that already reside on the *current*
/// locale, with bulk accounting — the handler-side half of a scatter flush
/// (what a [`crate::engine::Batcher`] over [`Erased`] items calls in its
/// destination handler). `arrived_remotely` says whether the batch crossed
/// the wire to get here; remote arrivals count one `bulk_frees`.
///
/// # Safety
/// Every entry must satisfy the conditions of [`Erased::run_drop`] and
/// actually live on the current locale.
pub unsafe fn free_erased_local_batch(
    core: &RuntimeCore,
    batch: Vec<Erased>,
    arrived_remotely: bool,
) {
    if batch.is_empty() {
        return;
    }
    let here = ctx::here();
    debug_assert!(batch.iter().all(|e| e.owner() == here));
    let loc = core.locale(here);
    let n = batch.len() as u64;
    if arrived_remotely {
        loc.stats.bulk_frees.fetch_add(1, Ordering::Relaxed);
    }
    loc.stats.bulk_freed_objects.fetch_add(n, Ordering::Relaxed);
    vtime::charge(core.config.network.remote_heap_op_ns * n);
    for e in batch {
        // SAFETY: forwarded from the caller's contract.
        unsafe { e.run_drop(core) };
    }
}

/// Free a batch of erased objects that all live on `owner` with a *single*
/// active message (the scatter-list bulk-transfer-and-delete of Listing 4).
/// An empty batch is a no-op. When `owner` is the current locale the batch
/// is freed inline with no communication.
///
/// # Safety
/// Every entry must satisfy the conditions of [`Erased::run_drop`] and
/// actually live on `owner`.
pub unsafe fn free_erased_batch(core: &RuntimeCore, owner: LocaleId, batch: Vec<Erased>) {
    if batch.is_empty() {
        return;
    }
    debug_assert!(batch.iter().all(|e| e.owner() == owner));
    let here = ctx::here();
    let items = batch.len() as u64;
    if owner == here {
        // SAFETY: forwarded from the caller's contract.
        unsafe { free_erased_local_batch(core, batch, false) };
    } else {
        core.engine().bulk_on(
            core,
            owner,
            items,
            Box::new(move || {
                // SAFETY: forwarded from the caller's contract; we now run
                // on `owner`.
                unsafe { free_erased_local_batch(core, batch, true) };
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;

    #[test]
    fn local_alloc_free_roundtrip() {
        let rt = Runtime::cluster(1);
        rt.run(|| {
            let p = alloc_local(&rt, 77u32);
            assert_eq!(p.locale(), 0);
            assert_eq!(unsafe { *p.deref() }, 77);
            assert_eq!(rt.locale(0).heap.live_objects(), 1);
            unsafe { free(&rt, p) };
            assert_eq!(rt.locale(0).heap.live_objects(), 0);
        });
        assert!(rt.total_comm().is_zero());
    }

    #[test]
    fn remote_alloc_routes_am_and_tracks_owner() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let p = alloc_on(&rt, 1, String::from("hello"));
            assert_eq!(p.locale(), 1);
            assert_eq!(unsafe { p.deref() }.as_str(), "hello");
            assert_eq!(rt.locale(1).heap.live_objects(), 1);
            assert_eq!(rt.locale(0).heap.live_objects(), 0);
            let s = rt.total_comm();
            assert_eq!(s.am_sent, 1);
            assert_eq!(s.remote_allocs, 1);
            unsafe { free(&rt, p) };
            assert_eq!(rt.live_objects(), 0);
            assert_eq!(rt.total_comm().remote_frees, 1);
        });
    }

    #[test]
    fn erased_drop_runs_destructor() {
        use std::sync::atomic::AtomicBool;
        static DROPPED: AtomicBool = AtomicBool::new(false);
        struct Probe(#[allow(dead_code)] u8);
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPPED.store(true, Ordering::SeqCst);
            }
        }
        let rt = Runtime::cluster(1);
        rt.run(|| {
            let p = alloc_local(&rt, Probe(0));
            let e = Erased::new(p);
            assert_eq!(e.owner(), 0);
            unsafe { e.run_drop(&rt) };
        });
        assert!(DROPPED.load(Ordering::SeqCst));
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn bulk_free_is_one_am_per_locale() {
        let rt = Runtime::cluster(3);
        rt.run(|| {
            let mut batch = Vec::new();
            for i in 0..10 {
                let p = alloc_on(&rt, 2, i as u64);
                batch.push(Erased::new(p));
            }
            rt.reset_metrics(); // ignore allocation traffic
            unsafe { free_erased_batch(&rt, 2, batch) };
            let s = rt.total_comm();
            assert_eq!(s.am_sent, 1, "one AM for ten objects");
            assert_eq!(s.bulk_frees, 1);
            assert_eq!(s.bulk_freed_objects, 10);
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn bulk_free_local_needs_no_am() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let batch: Vec<_> = (0..5).map(|i| Erased::new(alloc_local(&rt, i))).collect();
            rt.reset_metrics();
            unsafe { free_erased_batch(&rt, 0, batch) };
            let s = rt.total_comm();
            assert_eq!(s.am_sent, 0);
            assert_eq!(s.bulk_frees, 0, "local batch: no AM counted");
            assert_eq!(s.bulk_freed_objects, 5);
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn empty_bulk_free_is_noop() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            unsafe { free_erased_batch(&rt, 1, Vec::new()) };
            assert!(rt.total_comm().is_zero());
        });
    }

    #[test]
    fn alloc_from_worker_tasks_lands_on_their_locale() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(4));
        rt.run(|| {
            rt.coforall_locales(|l| {
                let p = alloc_local(&rt, l);
                assert_eq!(p.locale(), l);
                unsafe { free(&rt, p) };
            });
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
