//! Active messages.
//!
//! Chapel's `on` statement — and, when RDMA atomics are unavailable, every
//! remote atomic — executes as an *active message*: a closure shipped to the
//! target locale and run by one of its progress threads. The progress
//! thread is a real serialization point; a locale bombarded with AMs
//! services them one at a time (per progress thread), which is why the
//! paper's AM fallback path scales worse than NIC atomics.
//!
//! The virtual-time protocol: a message sent at task time `t` arrives at
//! `t + am_wire_ns`; the handling thread starts it no earlier than both its
//! own clock and the arrival time, charges `am_handler_ns` dispatch plus
//! whatever the body itself charges, and the reply lands back at the sender
//! at `end + am_wire_ns`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crossbeam_channel::{bounded, Receiver, Sender};

use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;
use crate::vtime;

/// A message bound for a locale's progress threads.
pub(crate) enum AmMsg {
    /// Execute the closure. `send_vtime` is the virtual arrival time at the
    /// target NIC (sender clock + wire latency).
    Call {
        thunk: Box<dyn FnOnce() + Send + 'static>,
        send_vtime: u64,
    },
    /// Terminate one progress thread (sent once per thread at shutdown).
    Shutdown,
}

/// The body of a progress thread for locale `locale`.
///
/// Holds its own `Arc` to the runtime so the context pointer stays valid
/// for the lifetime of the loop.
pub(crate) fn progress_loop(
    core: Arc<RuntimeCore>,
    locale: LocaleId,
    thread_idx: usize,
    rx: Receiver<AmMsg>,
) {
    // SAFETY: `core` is kept alive by the Arc above until this function —
    // and therefore the guard — ends.
    let _guard = unsafe { crate::ctx::enter(Arc::as_ptr(&core), locale) };
    let clock = &core.locale(locale).progress_clocks[thread_idx];
    while let Ok(msg) = rx.recv() {
        match msg {
            AmMsg::Shutdown => break,
            AmMsg::Call { thunk, send_vtime } => {
                let start = clock.now().max(send_vtime);
                vtime::set(start + core.config.network.am_handler_ns);
                // A panicking handler must not take the progress thread
                // down with it; the panic is forwarded to the sender via
                // the reply channel inside the thunk.
                let _ = catch_unwind(AssertUnwindSafe(thunk));
                clock.advance_to(vtime::now());
                core.locale(locale)
                    .stats
                    .am_handled
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
}

/// Result of a remote call: the closure's output (or its panic payload) and
/// the virtual time at which the handler finished.
type Reply<R> = (std::thread::Result<R>, u64);

/// Execute `f` on locale `dest`, blocking until it completes, and merge its
/// virtual time back into the caller. Must not be called when
/// `dest == here()` — the caller handles the inline case.
pub(crate) fn remote_call<R, F>(core: &RuntimeCore, src: LocaleId, dest: LocaleId, f: F) -> R
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    debug_assert_ne!(src, dest, "remote_call requires a remote destination");
    let cfg = &core.config.network;
    core.locale(src)
        .stats
        .am_sent
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let send_vtime = vtime::now() + cfg.am_wire_ns;

    let (tx, rx): (Sender<Reply<R>>, Receiver<Reply<R>>) = bounded(1);
    let thunk: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
        let out = catch_unwind(AssertUnwindSafe(f));
        let end = vtime::now();
        // The receiver may have vanished only if the sending task panicked,
        // in which case nobody cares about the reply.
        let _ = tx.send((out, end));
    });
    // SAFETY: lifetime erasure. The thunk may borrow the caller's stack,
    // but this function blocks on `rx.recv()` until the thunk has finished
    // executing (or is provably never going to run because the channel
    // disconnected), so no borrow outlives this frame.
    let thunk: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(thunk) };

    core.send_am(dest, AmMsg::Call { thunk, send_vtime });

    let (out, end) = rx
        .recv()
        .expect("progress thread terminated while a remote call was pending");
    vtime::advance_to(end + cfg.am_wire_ns);
    match out {
        Ok(v) => v,
        Err(payload) => resume_unwind(payload),
    }
}
