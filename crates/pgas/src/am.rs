//! Active messages.
//!
//! Chapel's `on` statement — and, when RDMA atomics are unavailable, every
//! remote atomic — executes as an *active message*: a closure shipped to the
//! target locale and run by one of its progress threads. The progress
//! threads are a real serialization point; a locale bombarded with AMs
//! services them `progress_threads` at a time, which is why the paper's AM
//! fallback path scales worse than NIC atomics.
//!
//! The virtual-time protocol: a message sent at task time `t` arrives at
//! `t + am_wire_ns`. The service acquires the earliest-free server slot
//! (see [`crate::locale`]), starts the handler no earlier than both that
//! slot's clock and the arrival time, and charges `am_handler_ns` dispatch
//! plus whatever the body itself charges. The reply lands back at the
//! sender at `end + am_wire_ns`; the server slot stays occupied until
//! `end + am_wire_ns` too — injecting the reply ties up the service lane,
//! so a saturated progress thread's throughput is bounded by
//! `am_handler_ns + body + am_wire_ns` per message, not just the handler
//! cost. (The sender-observed round trip of an *uncontended* message is
//! unchanged: `2·am_wire_ns + am_handler_ns + body`.)
//!
//! This module is internal plumbing: all traffic enters through
//! [`crate::engine::CommEngine`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crossbeam_channel::{bounded, Receiver, Sender};

use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;
use crate::telemetry::{
    trace::{self, TraceCtx},
    OpClass, Span,
};
use crate::vtime;

/// A message bound for a locale's progress threads.
pub(crate) enum AmMsg {
    /// Execute the closure. `send_vtime` is the virtual arrival time at the
    /// target NIC (sender clock + wire latency); `src` is the issuing
    /// locale (carried for the telemetry span); `ctx` is the sender's
    /// causal-trace context, installed around the handler so spans emitted
    /// on the destination nest under the operation that caused them.
    Call {
        thunk: Box<dyn FnOnce() + Send + 'static>,
        send_vtime: u64,
        src: LocaleId,
        ctx: Option<TraceCtx>,
    },
    /// Terminate one progress thread (sent once per thread at shutdown).
    Shutdown,
}

/// What a handler reports back: its panic status and the virtual time at
/// which it finished.
pub(crate) type Reply = (std::thread::Result<()>, u64);

thread_local! {
    /// Reusable one-shot reply channels. A remote call consumes exactly one
    /// message per pair, so a drained pair is as good as new — recycling
    /// avoids a channel allocation on every blocking remote operation (the
    /// hottest allocation in the AM fallback path).
    static REPLY_POOL: std::cell::RefCell<Vec<(Sender<Reply>, Receiver<Reply>)>> =
        std::cell::RefCell::new(Vec::new());
}

/// A task rarely has more than a couple of calls in flight; keep the pool
/// tiny so abandoned bursts don't pin memory.
const REPLY_POOL_CAP: usize = 4;

/// Take a reply channel from the calling thread's pool, or allocate one.
fn pooled_reply_channel() -> (Sender<Reply>, Receiver<Reply>) {
    REPLY_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| bounded(1))
}

/// Return a reply channel to the pool once its single message has been
/// consumed. Pairs that might still carry (or later receive) a message —
/// e.g. from an abandoned `Completion` — must simply be dropped instead.
pub(crate) fn recycle_reply_channel(tx: Sender<Reply>, rx: Receiver<Reply>) {
    // Only a provably-drained pair is reusable; the channel has no
    // emptiness query, so probe with `try_recv`.
    if rx.try_recv().is_ok() {
        return;
    }
    REPLY_POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() < REPLY_POOL_CAP {
            p.push((tx, rx));
        }
    });
}

/// The body of a progress thread for locale `locale`.
///
/// Holds its own `Arc` to the runtime so the context pointer stays valid
/// for the lifetime of the loop.
pub(crate) fn progress_loop(core: Arc<RuntimeCore>, locale: LocaleId, rx: Receiver<AmMsg>) {
    // SAFETY: `core` is kept alive by the Arc above until this function —
    // and therefore the guard — ends.
    let _guard = unsafe { crate::ctx::enter(Arc::as_ptr(&core), locale) };
    let net = &core.config.network;
    let slots = &core.locale(locale).server;
    // A fault plan may name this locale as the straggler: its handler
    // dispatch is slowed by a constant multiplier for the whole run (the
    // multiplier is cached on the locale at construction).
    let handler_ns = net
        .am_handler_ns
        .saturating_mul(core.locale(locale).am_slowdown);
    while let Ok(msg) = rx.recv() {
        match msg {
            AmMsg::Shutdown => break,
            AmMsg::Call {
                thunk,
                send_vtime,
                src,
                ctx,
            } => {
                // Min-clock service discipline: run on whichever server slot
                // frees up first, regardless of which OS thread we are.
                let (slot, free_at) = slots.acquire();
                let start = free_at.max(send_vtime);
                vtime::set(start + handler_ns);
                let lstats = &core.locale(locale).stats;
                // Count before the body runs: the thunk's last act is the
                // reply send, and the unblocked sender may read the stats
                // immediately — the counter must already be there. The
                // queue-wait sample is also known now (`start - arrival`).
                lstats
                    .am_handled
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                lstats.record(OpClass::AmQueue, start - send_vtime);
                // Causal tracing: the round-trip span gets its own id on
                // this locale, parented under the sender's context (or
                // self-rooted when the sender had none), and the matching
                // context wraps the handler so spans emitted inside nest
                // under this AM.
                let (trace_id, am_span, parent) = if core.tracing() {
                    let own = core.locale(locale).next_span_id();
                    match ctx {
                        Some(c) => (c.trace, own, c.span),
                        None => (own, own, 0),
                    }
                } else {
                    (0, 0, 0)
                };
                let tguard = (am_span != 0).then(|| {
                    trace::enter(Some(TraceCtx {
                        trace: trace_id,
                        span: am_span,
                    }))
                });
                // A panicking handler must not take the progress thread
                // down with it; the panic is forwarded to the sender via
                // the reply channel inside the thunk.
                let _ = catch_unwind(AssertUnwindSafe(thunk));
                drop(tguard);
                let end = vtime::now();
                lstats.record(OpClass::AmService, end - start);
                // One span per remote operation, stamped from the vtime
                // points this loop already computes: issue (arrival minus
                // the wire), arrival, queued start, and the reply landing
                // back at the sender. The tag is the server-slot index
                // (one Perfetto track per progress-thread slot).
                core.emit_span(|| Span {
                    class: OpClass::AmRoundTrip,
                    src,
                    dest: locale,
                    issue_vtime: send_vtime.saturating_sub(net.am_wire_ns),
                    arrive_vtime: send_vtime,
                    start_vtime: start,
                    end_vtime: end + net.am_wire_ns,
                    tag: slot as u64,
                    trace: trace_id,
                    span: am_span,
                    parent,
                });
                // The slot is busy until the reply has been injected back
                // onto the wire.
                slots.release(slot, end + net.am_wire_ns);
            }
        }
    }
}

/// Execute `f` on locale `dest`, blocking until it completes, and merge its
/// virtual time back into the caller. Must not be called when
/// `dest == here()` — the caller handles the inline case.
pub(crate) fn remote_call(
    core: &RuntimeCore,
    src: LocaleId,
    dest: LocaleId,
    f: Box<dyn FnOnce() + Send + '_>,
) {
    debug_assert_ne!(src, dest, "remote_call requires a remote destination");
    let cfg = &core.config.network;
    let stats = &core.locale(src).stats;
    let t_issue = vtime::now();
    // The sender's causal context rides the message so the destination's
    // round-trip span (and everything it causes) joins this trace.
    let tctx = trace::current();

    // Fault injection, part 1: drop + retry. Only idempotent-class sends
    // are droppable; a dropped message is lost *before* execution, so the
    // sender pays the wire cost plus the detection timeout and backoff,
    // then re-sends. After `max_attempts` consecutive drops the send is
    // escalated to a reliable channel (the loop below cannot drop it), so
    // the operation never hangs.
    if let Some(fs) = core.faults() {
        if crate::faults::current_class() == crate::faults::OpClass::Idempotent {
            let mut attempt = 0;
            while attempt < fs.max_attempts() {
                let Some(decision) = fs.inject_drop_indexed() else {
                    break;
                };
                stats
                    .am_sent
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats
                    .injected_drops
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let before = vtime::now();
                let penalty = fs.retry_penalty_ns(attempt);
                vtime::charge(cfg.am_wire_ns + penalty);
                stats
                    .retries
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                stats.record(OpClass::Retry, penalty);
                // A retry span per dropped attempt, tagged with the global
                // fault decision index that dropped it.
                let (trace_id, span_id, parent) = core.span_ids(src);
                core.emit_span(|| Span {
                    class: OpClass::Retry,
                    src,
                    dest,
                    issue_vtime: before,
                    arrive_vtime: before + cfg.am_wire_ns,
                    start_vtime: before + cfg.am_wire_ns,
                    end_vtime: before + cfg.am_wire_ns + penalty,
                    tag: decision,
                    trace: trace_id,
                    span: span_id,
                    parent,
                });
                attempt += 1;
            }
            if attempt >= fs.max_attempts() {
                stats
                    .gave_up
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }

    stats
        .am_sent
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut send_vtime = vtime::now() + cfg.am_wire_ns;
    let mut duplicate = false;
    // Fault injection, part 2: arrival delay and duplicate delivery for
    // the send that actually goes through.
    if let Some(fs) = core.faults() {
        if let Some(extra) = fs.inject_delay() {
            stats
                .injected_delays
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            send_vtime += extra;
        }
        duplicate = fs.inject_dup();
    }

    let (tx, rx) = pooled_reply_channel();
    let reply_tx = tx.clone();
    let thunk: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
        let out = catch_unwind(AssertUnwindSafe(f));
        let end = vtime::now();
        // The receiver may have vanished only if the sending task panicked,
        // in which case nobody cares about the reply.
        let _ = reply_tx.send((out, end));
    });
    // SAFETY: lifetime erasure. The thunk may borrow the caller's stack,
    // but this function blocks on `rx.recv()` until the thunk has finished
    // executing (or is provably never going to run because the channel
    // disconnected), so no borrow outlives this frame.
    let thunk: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(thunk) };

    core.send_am(
        dest,
        AmMsg::Call {
            thunk,
            send_vtime,
            src,
            ctx: tctx,
        },
    );
    if duplicate {
        // At-least-once delivery: the network delivered a second copy.
        // The receiver's dedup discards it, modelled as a no-op handler
        // that still occupies a server slot and pays dispatch cost.
        stats
            .injected_dups
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        core.send_am(
            dest,
            AmMsg::Call {
                thunk: Box::new(|| {}),
                send_vtime,
                src,
                ctx: tctx,
            },
        );
    }

    let (out, end) = rx
        .recv()
        .expect("progress thread terminated while a remote call was pending");
    // The one message is consumed; the pair is pristine again.
    recycle_reply_channel(tx, rx);
    vtime::advance_to(end + cfg.am_wire_ns);
    // The sender-observed round trip, retries and queueing included.
    stats.record(OpClass::AmRoundTrip, vtime::now().saturating_sub(t_issue));
    if let Err(payload) = out {
        resume_unwind(payload);
    }
}

/// Ship `f` to locale `dest` without waiting: the sender's clock does not
/// advance, and the returned channel pair yields the handler's completion
/// status once it has run (the sender half is returned so the consumer can
/// hand the drained pair back to [`recycle_reply_channel`]). Must not be
/// called when `dest == here()`.
pub(crate) fn remote_post(
    core: &RuntimeCore,
    src: LocaleId,
    dest: LocaleId,
    f: Box<dyn FnOnce() + Send + 'static>,
) -> (Sender<Reply>, Receiver<Reply>) {
    debug_assert_ne!(src, dest, "remote_post requires a remote destination");
    let cfg = &core.config.network;
    let stats = &core.locale(src).stats;
    let tctx = trace::current();
    stats
        .am_sent
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut send_vtime = vtime::now() + cfg.am_wire_ns;
    let mut duplicate = false;
    // Fire-and-forget sends have no retry loop (the sender is not blocked
    // and cannot observe a timeout), so drops are not injected here — only
    // delay and duplication, both of which preserve delivery.
    if let Some(fs) = core.faults() {
        if let Some(extra) = fs.inject_delay() {
            stats
                .injected_delays
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            send_vtime += extra;
        }
        duplicate = fs.inject_dup();
    }

    let (tx, rx) = pooled_reply_channel();
    let reply_tx = tx.clone();
    let thunk: Box<dyn FnOnce() + Send + 'static> = Box::new(move || {
        let out = catch_unwind(AssertUnwindSafe(f));
        let end = vtime::now();
        // Nobody may be waiting (fire-and-forget): a dropped Completion
        // disconnects the channel, which is fine.
        let _ = reply_tx.send((out, end));
    });
    core.send_am(
        dest,
        AmMsg::Call {
            thunk,
            send_vtime,
            src,
            ctx: tctx,
        },
    );
    if duplicate {
        stats
            .injected_dups
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        core.send_am(
            dest,
            AmMsg::Call {
                thunk: Box::new(|| {}),
                send_vtime,
                src,
                ctx: tctx,
            },
        );
    }
    (tx, rx)
}
