//! Ambient locale context.
//!
//! Chapel code always executes "somewhere": the `here` locale. The
//! simulator reproduces that with a thread-local context naming the runtime
//! and the locale the current task belongs to. Worker tasks created by
//! `coforall`/`forall`, progress threads, and the thread inside
//! [`crate::Runtime::run`] all carry a context; calling a communication
//! primitive without one is a programming error and panics.
//!
//! # Safety of the raw pointer
//! The context stores a raw `*const RuntimeCore` rather than an `Arc` so
//! that scoped worker threads can borrow the runtime. The pointer is valid
//! for the lifetime of the context guard because every holder either (a)
//! borrows the runtime across a scope that joins before returning (workers,
//! `run`), or (b) owns an `Arc` for the duration of the thread (progress
//! threads).

use std::cell::Cell;

use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;

thread_local! {
    static CTX: Cell<Option<(*const RuntimeCore, LocaleId)>> = const { Cell::new(None) };
}

/// Restores the previous context when dropped, so nested `run`/handler
/// execution unwinds correctly.
pub(crate) struct CtxGuard {
    prev: Option<(*const RuntimeCore, LocaleId)>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Install `(core, locale)` as the current context.
///
/// # Safety
/// `core` must remain valid until the returned guard is dropped.
pub(crate) unsafe fn enter(core: *const RuntimeCore, locale: LocaleId) -> CtxGuard {
    let prev = CTX.with(|c| c.replace(Some((core, locale))));
    CtxGuard { prev }
}

/// The locale the current task is executing on (Chapel's `here.id`).
///
/// # Panics
/// If the current thread is not executing inside a runtime task.
#[inline]
pub fn here() -> LocaleId {
    try_here().expect(
        "no PGAS context on this thread; wrap the code in Runtime::run, a \
         coforall/forall body, or an `on` statement",
    )
}

/// Like [`here`], but returns `None` off-runtime instead of panicking.
#[inline]
pub fn try_here() -> Option<LocaleId> {
    CTX.with(|c| c.get().map(|(_, l)| l))
}

/// Run `f` with a reference to the current runtime core and the current
/// locale id. This is how embedded objects (atomics, tokens) reach the
/// runtime without storing a handle per instance.
///
/// # Panics
/// If the current thread has no PGAS context.
#[inline]
pub fn with_core<R>(f: impl FnOnce(&RuntimeCore, LocaleId) -> R) -> R {
    let (core, locale) = CTX.with(|c| c.get()).expect(
        "no PGAS context on this thread; wrap the code in Runtime::run, a \
         coforall/forall body, or an `on` statement",
    );
    // SAFETY: documented invariant — whoever installed the context keeps
    // the core alive until the guard drops, and we are inside that window.
    f(unsafe { &*core }, locale)
}

/// Like [`with_core`], but returns `None` off-runtime instead of
/// panicking — for best-effort instrumentation (telemetry root spans) that
/// must be inert outside a task context.
#[inline]
pub fn try_with_core<R>(f: impl FnOnce(&RuntimeCore, LocaleId) -> R) -> Option<R> {
    let (core, locale) = CTX.with(|c| c.get())?;
    // SAFETY: same invariant as `with_core` — the context installer keeps
    // the core alive until the guard drops, and we are inside that window.
    Some(f(unsafe { &*core }, locale))
}

/// A cloneable handle to the current runtime, usable to construct objects
/// that must outlive the current task.
///
/// # Panics
/// If the current thread has no PGAS context.
pub fn current_runtime() -> crate::runtime::RuntimeHandle {
    with_core(|core, _| core.handle())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ctx_by_default() {
        assert_eq!(try_here(), None);
    }

    #[test]
    #[should_panic(expected = "no PGAS context")]
    fn here_panics_without_ctx() {
        let _ = here();
    }

    #[test]
    fn guard_restores_previous() {
        // A dangling-but-never-dereferenced pointer is fine for this test:
        // we only exercise the save/restore logic via try_here().
        let fake = 0x1000 as *const RuntimeCore;
        {
            let _g1 = unsafe { enter(fake, 3) };
            assert_eq!(try_here(), Some(3));
            {
                let _g2 = unsafe { enter(fake, 7) };
                assert_eq!(try_here(), Some(7));
            }
            assert_eq!(try_here(), Some(3));
        }
        assert_eq!(try_here(), None);
    }
}
