//! Structured telemetry: a typed metric registry, per-operation spans, and
//! pluggable sinks.
//!
//! The paper's evaluation is about *where time goes* — RDMA vs
//! remote-execution paths, queueing at saturated progress threads, EBR
//! overhead — so flat event counts ([`crate::stats::CommStats`]) are not
//! enough. This module adds the latency half:
//!
//! * [`OpClass`] — the operation classes the simulator distinguishes
//!   (NIC atomic, AM round trip, handler queue wait, combine occupancy, …).
//! * [`Histogram`] — a fixed-bucket log2 histogram (64 buckets, lock-free,
//!   no dependencies; the vendor set is frozen). Percentiles come from a
//!   cumulative bucket walk; the maximum is tracked exactly so tail
//!   latencies are not bucket-rounded.
//! * [`Registry`] — one per locale, pairing the existing [`CommStats`]
//!   counters (unchanged names, so exact-count tests keep passing) with a
//!   per-class histogram set. [`Registry`] derefs to [`CommStats`], so all
//!   existing `locale.stats.am_sent…` call sites compile and count
//!   bit-identically.
//! * [`Span`] — one record per remote operation, stamped from the virtual
//!   time points that already exist (issue → wire → queue → handle →
//!   reply), plus the causal-trace triple `trace`/`span`/`parent`.
//! * [`trace`] — the causal context ([`trace::TraceCtx`]) carried in a
//!   thread-local and propagated across AM boundaries, so every span knows
//!   which logical operation caused it.
//! * [`OpSpan`] — an RAII root span opened by public structure/atomic
//!   operations, tagged with op kind, key hash, and CAS-retry count.
//! * [`Sink`] — where spans go: [`NullSink`] (zero-cost default — no sink
//!   installed means one relaxed atomic load per op and nothing else),
//!   [`RingSink`] (in-memory ring buffer for tests), [`JsonLinesSink`]
//!   (hand-rolled JSON-lines writer for the harness).
//!
//! ## Overhead budget
//!
//! Histogram recording is always on and costs four relaxed atomic RMWs per
//! sample; it charges **no virtual time** and touches **no counters**, so
//! perf-guard quantities (A1 scatter AM counts, A7 combining wins) are
//! bit-for-bit unaffected. Span emission is gated on an installed sink —
//! the default is a single `OnceLock::get` returning `None`.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::globalptr::LocaleId;
use crate::stats::{CommSnapshot, CommStats};

/// Operation classes tracked by the telemetry registry. Each class gets its
/// own latency (or occupancy) histogram per locale, and spans are keyed by
/// it.
///
/// This is distinct from [`crate::faults::OpClass`] (idempotent vs not,
/// which governs *drop eligibility*); this enum classifies *what kind of
/// remote operation* a sample describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpClass {
    /// 64-bit atomic executed on the simulated NIC (RDMA atomic). Sample =
    /// full virtual-time span charged to the issuing task, including any
    /// fault-injected delays and retry penalties.
    RdmaAtomic,
    /// Atomic executed by the local CPU. Sample = `cpu_atomic_ns`.
    CpuAtomic,
    /// 128-bit double-word CAS executed by the local CPU.
    CpuDcas,
    /// Sender-observed active-message round trip: issue → wire → queue →
    /// handler → reply, including retries of dropped sends.
    AmRoundTrip,
    /// Time an AM spent queued at a saturated progress thread: handler
    /// start minus arrival (zero when a server slot was free on arrival).
    AmQueue,
    /// Handler service time: dispatch cost (× straggler slowdown) plus the
    /// user body, measured on the destination locale.
    AmService,
    /// Occupancy of batched active messages ([`crate::engine::Batcher`] /
    /// `bulk_on`): sample = operations carried per bulk AM.
    BatchOccupancy,
    /// Occupancy of combined active messages
    /// ([`crate::engine::combine`]): sample = operations per shipped chunk.
    CombineOccupancy,
    /// One-sided PUT: sample = virtual-time cost (latency + bandwidth
    /// term). Local puts are free and not sampled.
    Put,
    /// One-sided GET: sample = virtual-time cost. Local gets are free and
    /// not sampled.
    Get,
    /// Fault-injected retry: sample = the backoff penalty (timeout +
    /// exponential backoff + jitter) charged for one dropped attempt. The
    /// matching span's `tag` is the fault decision index.
    Retry,
    /// Epoch reclamation pin-to-reclaim latency: virtual time from the
    /// first `defer_delete` into a limbo list until that list is drained.
    Reclaim,
    /// Depth of a limbo list at the moment it was drained (object count).
    LimboDepth,
    /// Root span of a public `DistStack` operation. Sample = whole-op
    /// virtual duration; the span `tag` packs op kind, CAS-retry count and
    /// key hash (see [`pack_op_tag`]).
    StackOp,
    /// Root span of a public `DistQueue` operation (tag as [`OpClass::StackOp`]).
    QueueOp,
    /// Root span of a public `DistList` operation (tag as [`OpClass::StackOp`]).
    ListOp,
    /// Root span of a public `DistHashMap` operation (tag as [`OpClass::StackOp`]).
    MapOp,
    /// Root span of a public `DistSkipList` operation (tag as [`OpClass::StackOp`]).
    SkipListOp,
    /// Root span of a public `RcuArray` operation (tag as [`OpClass::StackOp`]).
    RcuArrayOp,
    /// Root span of a public `AtomicObject`/`AtomicAbaObject` operation
    /// (read/write/exchange/CAS/DCAS; tag as [`OpClass::StackOp`]).
    AtomicObjectOp,
    /// One rider's end-to-end trip through the flat-combining layer:
    /// publish → executed on the destination → reply wire. Emitted by the
    /// publishing task (see [`crate::engine::combine`]); the bulk AM that
    /// carried the chunk nests under the *last* rider's span.
    CombineRide,
    /// Versioned (seqlock) fast read of a 128-bit cell: optimistic
    /// two-load-and-validate riding the one-sided GET cost model instead of
    /// the DCAS/handler path. Sample = full virtual-time span including
    /// torn-window re-reads; fallbacks to the DCAS slow path are *not*
    /// sampled here (they record under the handler classes as before).
    VersionedRead,
    /// Root span of a public `ShardedHashMap` operation — the privatized
    /// per-locale-sharded map of the global-view tier (tag as
    /// [`OpClass::StackOp`]). Local-shard and remote-shard ops share the
    /// class; the latency split shows up in the percentiles (local ops are
    /// CPU-priced, remote ops carry an AM round trip).
    ShardedMapOp,
    /// Root span of a public `WorkStealingDeque` operation (tag as
    /// [`OpClass::StackOp`]); steals carry `opkind::STEAL`.
    DequeOp,
    /// Root span of a public `GlobalOrderedSet` operation — the sharded
    /// skiplist wrapper of the global-view tier (tag as
    /// [`OpClass::StackOp`]); cross-shard scans carry `opkind::RANGE`.
    OrderedSetOp,
}

impl OpClass {
    /// Number of classes (length of [`OpClass::ALL`]).
    pub const COUNT: usize = 25;

    /// Every class, in declaration order (the histogram index order).
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::RdmaAtomic,
        OpClass::CpuAtomic,
        OpClass::CpuDcas,
        OpClass::AmRoundTrip,
        OpClass::AmQueue,
        OpClass::AmService,
        OpClass::BatchOccupancy,
        OpClass::CombineOccupancy,
        OpClass::Put,
        OpClass::Get,
        OpClass::Retry,
        OpClass::Reclaim,
        OpClass::LimboDepth,
        OpClass::StackOp,
        OpClass::QueueOp,
        OpClass::ListOp,
        OpClass::MapOp,
        OpClass::SkipListOp,
        OpClass::RcuArrayOp,
        OpClass::AtomicObjectOp,
        OpClass::CombineRide,
        OpClass::VersionedRead,
        OpClass::ShardedMapOp,
        OpClass::DequeOp,
        OpClass::OrderedSetOp,
    ];

    /// Stable snake_case name used as the JSON key for this class.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::RdmaAtomic => "rdma_atomic",
            OpClass::CpuAtomic => "cpu_atomic",
            OpClass::CpuDcas => "cpu_dcas",
            OpClass::AmRoundTrip => "am_round_trip",
            OpClass::AmQueue => "am_queue",
            OpClass::AmService => "am_service",
            OpClass::BatchOccupancy => "batch_occupancy",
            OpClass::CombineOccupancy => "combine_occupancy",
            OpClass::Put => "put",
            OpClass::Get => "get",
            OpClass::Retry => "retry",
            OpClass::Reclaim => "reclaim",
            OpClass::LimboDepth => "limbo_depth",
            OpClass::StackOp => "stack_op",
            OpClass::QueueOp => "queue_op",
            OpClass::ListOp => "list_op",
            OpClass::MapOp => "map_op",
            OpClass::SkipListOp => "skiplist_op",
            OpClass::RcuArrayOp => "rcu_array_op",
            OpClass::AtomicObjectOp => "atomic_object_op",
            OpClass::CombineRide => "combine_ride",
            OpClass::VersionedRead => "versioned_read",
            OpClass::ShardedMapOp => "sharded_map_op",
            OpClass::DequeOp => "deque_op",
            OpClass::OrderedSetOp => "ordered_set_op",
        }
    }

    /// Parse a class from its stable [`OpClass::name`].
    pub fn from_name(name: &str) -> Option<OpClass> {
        OpClass::ALL.iter().copied().find(|c| c.name() == name)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Causal trace context: the ambient `(trace id, parent span id)` pair a
/// task carries in a thread-local and that the AM layer propagates across
/// locale boundaries, so every emitted [`Span`] can name the logical
/// operation that caused it.
///
/// Span ids are allocated from a per-locale counter salted with the
/// locale's process-wide construction epoch
/// (`(locale+1) << 48 | epoch << 28 | seq`), so ids are unique across
/// locales and across every runtime the process builds, never zero, and —
/// for a deterministic workload — identical from run to run of the
/// program. Id `0` means "no parent" (the span roots its own trace).
pub mod trace {
    use std::cell::Cell;

    /// The ambient causal context: which trace the current task is working
    /// for, and which span is the current parent.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct TraceCtx {
        /// Trace id — the span id of the trace's root span.
        pub trace: u64,
        /// The span id new child spans should name as their parent.
        pub span: u64,
    }

    thread_local! {
        static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
    }

    /// The current task's trace context, if any.
    #[inline]
    pub fn current() -> Option<TraceCtx> {
        CURRENT.with(|c| c.get())
    }

    /// Install `ctx` as the ambient trace context (or clear it with
    /// `None`); the previous value is restored when the guard drops.
    pub fn enter(ctx: Option<TraceCtx>) -> TraceGuard {
        let prev = CURRENT.with(|c| c.replace(ctx));
        TraceGuard { prev }
    }

    /// Restores the previous trace context on drop (see [`enter`]).
    pub struct TraceGuard {
        prev: Option<TraceCtx>,
    }

    impl Drop for TraceGuard {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.prev));
        }
    }
}

/// Op-kind constants packed into a root span's `tag` (see [`pack_op_tag`]).
/// Stable small integers, shared by the structures and the trace analyzer.
#[allow(missing_docs)] // names are self-describing; `name()` maps them back
pub mod opkind {
    pub const PUSH: u64 = 1;
    pub const POP: u64 = 2;
    pub const ENQUEUE: u64 = 3;
    pub const DEQUEUE: u64 = 4;
    pub const INSERT: u64 = 5;
    pub const REMOVE: u64 = 6;
    pub const CONTAINS: u64 = 7;
    pub const GET: u64 = 8;
    pub const READ: u64 = 9;
    pub const WRITE: u64 = 10;
    pub const GROW: u64 = 11;
    pub const EXCHANGE: u64 = 12;
    pub const CAS: u64 = 13;
    pub const RANGE: u64 = 14;
    pub const LEN: u64 = 15;
    pub const BULK_INSERT: u64 = 16;
    pub const BULK_GET: u64 = 17;
    pub const STEAL: u64 = 18;
    pub const REBALANCE: u64 = 19;

    /// Human-readable name for a packed op kind (for the analyzer).
    pub fn name(kind: u64) -> &'static str {
        match kind {
            PUSH => "push",
            POP => "pop",
            ENQUEUE => "enqueue",
            DEQUEUE => "dequeue",
            INSERT => "insert",
            REMOVE => "remove",
            CONTAINS => "contains",
            GET => "get",
            READ => "read",
            WRITE => "write",
            GROW => "grow",
            EXCHANGE => "exchange",
            CAS => "cas",
            RANGE => "range",
            LEN => "len",
            BULK_INSERT => "bulk_insert",
            BULK_GET => "bulk_get",
            STEAL => "steal",
            REBALANCE => "rebalance",
            _ => "op",
        }
    }
}

/// Pack a root span's tag: bits 0–7 the [`opkind`] constant, bits 8–23 the
/// CAS-retry count (saturated), bits 24–63 the low 40 bits of the key hash.
#[inline]
pub fn pack_op_tag(kind: u64, retries: u64, key_hash: u64) -> u64 {
    (kind & 0xff) | (retries.min(0xffff) << 8) | ((key_hash & 0xff_ffff_ffff) << 24)
}

/// Unpack a root span tag into `(kind, retries, key_hash_low40)` — the
/// inverse of [`pack_op_tag`], used by the trace analyzer.
#[inline]
pub fn unpack_op_tag(tag: u64) -> (u64, u64, u64) {
    (tag & 0xff, (tag >> 8) & 0xffff, tag >> 24)
}

/// Deterministically hash a key for a root span's tag. Uses the std
/// `DefaultHasher` with its fixed default keys, so the same key hashes the
/// same in every run (traces stay bit-reproducible).
pub fn key_hash64<K: std::hash::Hash + ?Sized>(key: &K) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// RAII root span for a public structure/atomic operation.
///
/// `start` stamps the issue vtime and — when a telemetry sink is installed —
/// allocates a span id on the current locale, installs the matching
/// [`trace::TraceCtx`] so every remote-op span emitted inside the operation
/// nests under it, and on drop emits the root [`Span`] (src == dest ==
/// issuing locale; `issue == arrive == start`) with its tag packing op
/// kind, CAS-retry count, and key hash.
///
/// The per-class duration histogram is recorded unconditionally (histogram
/// recording is always on, charges no vtime, touches no counters), so the
/// zero-drift guarantee of the default [`NullSink`] path holds.
///
/// Off-runtime (no ambient PGAS context) the guard is inert.
pub struct OpSpan {
    class: OpClass,
    kind: u64,
    key_hash: u64,
    retries: std::cell::Cell<u64>,
    begin: u64,
    ids: Option<(u64, u64, u64)>, // (trace, span, parent)
    _guard: Option<trace::TraceGuard>,
    active: bool,
}

impl OpSpan {
    /// Open a root span for one `class` operation of kind `kind` (an
    /// [`opkind`] constant) on key hash `key_hash` (0 when keyless).
    pub fn start(class: OpClass, kind: u64, key_hash: u64) -> OpSpan {
        let mut begin = 0;
        let mut ids = None;
        let mut guard = None;
        let active = crate::ctx::try_with_core(|core, locale| {
            begin = crate::vtime::now();
            if core.tracing() {
                let triple = core.span_ids(locale);
                let (trace_id, own, _) = triple;
                guard = Some(trace::enter(Some(trace::TraceCtx {
                    trace: trace_id,
                    span: own,
                })));
                ids = Some(triple);
            }
        })
        .is_some();
        OpSpan {
            class,
            kind,
            key_hash,
            retries: std::cell::Cell::new(0),
            begin,
            ids,
            _guard: guard,
            active,
        }
    }

    /// Count one CAS-retry (or other optimistic-loop repeat) for the tag.
    #[inline]
    pub fn retry(&self) {
        self.retries.set(self.retries.get() + 1);
    }
}

impl Drop for OpSpan {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let _ = crate::ctx::try_with_core(|core, locale| {
            let end = crate::vtime::now();
            core.locale(locale)
                .stats
                .record(self.class, end.saturating_sub(self.begin));
            if let Some((trace_id, own, parent)) = self.ids {
                let tag = pack_op_tag(self.kind, self.retries.get(), self.key_hash);
                core.emit_span(|| Span {
                    class: self.class,
                    src: locale,
                    dest: locale,
                    issue_vtime: self.begin,
                    arrive_vtime: self.begin,
                    start_vtime: self.begin,
                    end_vtime: end,
                    tag,
                    trace: trace_id,
                    span: own,
                    parent,
                });
            }
        });
    }
}

/// Number of log2 buckets. Bucket 0 holds the value 0; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket absorbs everything
/// above `2^62`.
const BUCKETS: usize = 64;

#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Upper bound (inclusive) of bucket `i`, used as the percentile estimate.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrently-updated fixed-bucket log2 histogram.
///
/// Recording is lock-free: one relaxed `fetch_add` on the bucket, count and
/// sum, plus a relaxed `fetch_max` so the true maximum survives bucket
/// rounding. No dependencies, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Capture a plain-old-data snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero the histogram. Callers must ensure quiescence.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A plain-old-data snapshot of a [`Histogram`], mergeable with `+`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded sample (not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at or below which `p` percent of samples fall, estimated
    /// as the inclusive upper bound of the log2 bucket containing that
    /// rank, clamped by the exact maximum (so `percentile(100.0) == max`).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

impl std::ops::Add for HistSnapshot {
    type Output = HistSnapshot;
    fn add(self, rhs: HistSnapshot) -> HistSnapshot {
        let mut buckets = self.buckets;
        for (b, r) in buckets.iter_mut().zip(rhs.buckets.iter()) {
            *b += r;
        }
        HistSnapshot {
            buckets,
            count: self.count + rhs.count,
            sum: self.sum + rhs.sum,
            max: self.max.max(rhs.max),
        }
    }
}

/// One [`Histogram`] per [`OpClass`].
#[derive(Debug)]
pub struct ClassHistograms {
    hists: [Histogram; OpClass::COUNT],
}

impl Default for ClassHistograms {
    fn default() -> Self {
        ClassHistograms {
            hists: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

impl ClassHistograms {
    /// Record one sample for `class`.
    #[inline]
    pub fn record(&self, class: OpClass, value: u64) {
        self.hists[class as usize].record(value);
    }

    /// The live histogram for `class`.
    pub fn class(&self, class: OpClass) -> &Histogram {
        &self.hists[class as usize]
    }

    /// Zero every histogram.
    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
    }

    /// Snapshot every histogram, in [`OpClass::ALL`] order.
    pub fn snapshot(&self) -> [HistSnapshot; OpClass::COUNT] {
        std::array::from_fn(|i| self.hists[i].snapshot())
    }
}

/// The per-locale metric registry: the existing [`CommStats`] counters
/// (the counter half — same names, same semantics) plus per-class latency
/// histograms (the new half).
///
/// `Registry` derefs to [`CommStats`], so `locale.stats.am_sent…` call
/// sites keep compiling and counting exactly as before.
#[derive(Debug, Default)]
pub struct Registry {
    counters: CommStats,
    latency: ClassHistograms,
}

impl Deref for Registry {
    type Target = CommStats;
    fn deref(&self) -> &CommStats {
        &self.counters
    }
}

impl Registry {
    /// The counter half.
    pub fn counters(&self) -> &CommStats {
        &self.counters
    }

    /// The histogram half.
    pub fn latency(&self) -> &ClassHistograms {
        &self.latency
    }

    /// Record one latency/occupancy sample. Charges no virtual time and
    /// touches no counters.
    #[inline]
    pub fn record(&self, class: OpClass, value: u64) {
        self.latency.record(class, value);
    }

    /// Zero both halves. Callers must ensure quiescence.
    pub fn reset(&self) {
        self.counters.reset();
        self.latency.reset();
    }

    /// Capture both halves as one [`TelemetrySnapshot`].
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            comm: self.counters.snapshot(),
            latency: self.latency.snapshot(),
        }
    }
}

/// A plain-old-data snapshot of a [`Registry`]: the communication counters
/// plus one histogram snapshot per op class. Mergeable with `+` to fold
/// per-locale registries into cluster totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// The counter half (see [`CommSnapshot`]).
    pub comm: CommSnapshot,
    latency: [HistSnapshot; OpClass::COUNT],
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            comm: CommSnapshot::default(),
            latency: [HistSnapshot::default(); OpClass::COUNT],
        }
    }
}

impl TelemetrySnapshot {
    /// The histogram snapshot for `class`.
    pub fn class(&self, class: OpClass) -> &HistSnapshot {
        &self.latency[class as usize]
    }

    /// Iterate `(class, histogram)` pairs for classes that recorded at
    /// least one sample.
    pub fn nonempty(&self) -> impl Iterator<Item = (OpClass, &HistSnapshot)> {
        OpClass::ALL
            .iter()
            .map(move |&c| (c, self.class(c)))
            .filter(|(_, h)| !h.is_empty())
    }

    /// Render the non-empty classes as a hand-rolled JSON object:
    /// `{"am_round_trip": {"count": …, "p50": …, "p99": …, "p999": …,
    /// "max": …, "mean": …}, …}`. Serde-free by design.
    pub fn latency_json(&self) -> String {
        let mut out = String::from("{");
        for (c, h) in self.nonempty() {
            if out.len() > 1 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(c.name());
            out.push_str("\": {\"count\": ");
            out.push_str(&h.count().to_string());
            out.push_str(", \"p50\": ");
            out.push_str(&h.percentile(50.0).to_string());
            out.push_str(", \"p99\": ");
            out.push_str(&h.percentile(99.0).to_string());
            out.push_str(", \"p999\": ");
            out.push_str(&h.percentile(99.9).to_string());
            out.push_str(", \"max\": ");
            out.push_str(&h.max().to_string());
            out.push_str(", \"mean\": ");
            out.push_str(&h.mean().to_string());
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl std::ops::Add for TelemetrySnapshot {
    type Output = TelemetrySnapshot;
    fn add(self, rhs: TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            comm: self.comm + rhs.comm,
            latency: std::array::from_fn(|i| self.latency[i] + rhs.latency[i]),
        }
    }
}

/// One record per remote operation, stamped from the virtual-time points
/// that already exist in the simulator: issue at the sender, arrival after
/// the wire (plus any injected delay), handler start after queueing behind
/// busy server slots, handler end, and the reply landing back at the
/// sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What kind of operation this span describes.
    pub class: OpClass,
    /// Locale that issued the operation.
    pub src: LocaleId,
    /// Locale that serviced it.
    pub dest: LocaleId,
    /// Sender virtual time when the operation was issued.
    pub issue_vtime: u64,
    /// Destination virtual time when the message arrived (issue + wire +
    /// injected delay).
    pub arrive_vtime: u64,
    /// Virtual time the handler actually started — `max(arrival, slot
    /// free)`; `start - arrive` is the queueing delay.
    pub start_vtime: u64,
    /// Virtual time the handler (or the operation) completed.
    pub end_vtime: u64,
    /// Class-specific tag: the fault decision index for
    /// [`OpClass::Retry`], the server-slot index for
    /// [`OpClass::AmRoundTrip`], the packed op kind/retries/key hash for
    /// root spans (see [`pack_op_tag`]), zero otherwise.
    pub tag: u64,
    /// Trace id: the span id of this span's root. Zero when tracing is off
    /// (no sink installed when the span was stamped).
    pub trace: u64,
    /// This span's id — unique per run, allocated from a per-locale
    /// counter. Zero when tracing is off.
    pub span: u64,
    /// Parent span id; zero for a root span.
    pub parent: u64,
}

impl Span {
    /// Render as one hand-rolled JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"class\": \"{}\", \"src\": {}, \"dest\": {}, \"issue\": {}, \
             \"arrive\": {}, \"start\": {}, \"end\": {}, \"tag\": {}, \
             \"trace\": {}, \"span\": {}, \"parent\": {}}}",
            self.class.name(),
            self.src,
            self.dest,
            self.issue_vtime,
            self.arrive_vtime,
            self.start_vtime,
            self.end_vtime,
            self.tag,
            self.trace,
            self.span,
            self.parent
        )
    }
}

/// Where spans go. Implementations must be cheap and thread-safe: sinks
/// are called from progress threads and task threads concurrently.
pub trait Sink: Send + Sync + 'static {
    /// Record one span.
    fn record(&self, span: &Span);
    /// Flush any buffered output (no-op by default).
    fn flush(&self) {}
}

/// The zero-cost default: discards everything. Installing it is equivalent
/// to installing no sink at all (the uninstalled fast path is a single
/// `OnceLock::get`), but makes the "telemetry adds zero counter drift"
/// guarantee testable end to end.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _span: &Span) {}
}

/// An in-memory ring buffer of the most recent `capacity` spans, for
/// tests.
///
/// **Full-buffer semantics: oldest-dropped.** Recording into a full ring
/// evicts the oldest buffered span and always accepts the new one — a
/// trace's most recent history is what post-mortem debugging wants, and a
/// sink that silently *rejects* new spans would bias every tail-latency
/// question toward the warm-up phase. Asserted by
/// `ring_sink_full_buffer_drops_oldest_never_rejects`.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Span>>,
}

impl RingSink {
    /// A ring that keeps the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Drain and return every buffered span, oldest first.
    pub fn take(&self) -> Vec<Span> {
        self.buf
            .lock()
            .map(|mut b| b.drain(..).collect())
            .unwrap_or_default()
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.buf.lock().map(|b| b.len()).unwrap_or(0)
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&self, span: &Span) {
        if let Ok(mut b) = self.buf.lock() {
            if b.len() == self.capacity {
                b.pop_front();
            }
            b.push_back(*span);
        }
    }
}

/// Writes one hand-rolled JSON object per span, newline-delimited, to a
/// file — the harness trace format.
///
/// Spans are buffered in memory and written at flush (or drop) time
/// **sorted by `(issue vtime, span id)`**: raw emission order races
/// between progress threads and the senders their replies unblock, so
/// arrival order is scheduling-dependent even for fully deterministic
/// workloads. The sort keys are pure vtime/counter values, so a
/// deterministic run produces a bit-identical trace file (the bench
/// crate's determinism test asserts this). Flush once, at the end of the
/// run: each flush sorts only the spans buffered since the previous one.
#[derive(Debug)]
pub struct JsonLinesSink {
    out: Mutex<JsonLinesInner>,
}

#[derive(Debug)]
struct JsonLinesInner {
    file: File,
    /// `(issue vtime, span id, rendered line)` — the canonical sort key
    /// plus the line it orders.
    pending: Vec<(u64, u64, String)>,
}

impl JsonLinesSink {
    /// Create (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonLinesSink {
            out: Mutex::new(JsonLinesInner {
                file,
                pending: Vec::new(),
            }),
        })
    }

    /// Flush buffered spans, *returning* the I/O error instead of
    /// swallowing it like the infallible [`Sink::flush`] does. Callers that
    /// care whether the trace actually hit the disk (the harness at exit)
    /// should use this. Buffered spans stay queued if the write fails.
    pub fn try_flush(&self) -> std::io::Result<()> {
        let mut inner = self
            .out
            .lock()
            .map_err(|_| std::io::Error::other("trace writer poisoned"))?;
        let JsonLinesInner { file, pending } = &mut *inner;
        if pending.is_empty() {
            return file.flush();
        }
        pending.sort_unstable();
        let mut out = String::with_capacity(pending.iter().map(|p| p.2.len() + 1).sum());
        for (_, _, line) in pending.iter() {
            out.push_str(line);
            out.push('\n');
        }
        file.write_all(out.as_bytes())?;
        pending.clear();
        file.flush()
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, span: &Span) {
        if let Ok(mut inner) = self.out.lock() {
            inner
                .pending
                .push((span.issue_vtime, span.span, span.to_json()));
        }
    }

    fn flush(&self) {
        let _ = self.try_flush();
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Bucket i's upper bound really is the largest value mapping to i.
        for i in 1..62 {
            assert_eq!(bucket_of(bucket_upper(i)), i);
            assert_eq!(bucket_of(bucket_upper(i) + 1), i + 1);
        }
    }

    #[test]
    fn percentiles_and_exact_max() {
        let h = Histogram::default();
        for v in [100u64, 200, 300, 400, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 11_000);
        assert_eq!(s.max(), 10_000);
        // p50 (the median, 300) falls in the bucket [256, 511].
        assert_eq!(s.percentile(50.0), 511);
        // The tail percentiles are clamped by the exact max, not the
        // bucket bound (16383).
        assert_eq!(s.percentile(99.0), 10_000);
        assert_eq!(s.percentile(100.0), 10_000);
        // Percentiles are monotone in p.
        assert!(s.percentile(10.0) <= s.percentile(90.0));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn snapshot_merge_adds_counts_and_maxes() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(10);
        b.record(1000);
        b.record(1);
        let m = a.snapshot() + b.snapshot();
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 1011);
        assert_eq!(m.max(), 1000);
    }

    #[test]
    fn registry_derefs_to_counters_and_resets_both() {
        let r = Registry::default();
        r.am_sent.fetch_add(2, Ordering::Relaxed); // via Deref
        r.record(OpClass::AmRoundTrip, 2500);
        let t = r.telemetry_snapshot();
        assert_eq!(t.comm.am_sent, 2);
        assert_eq!(t.class(OpClass::AmRoundTrip).count(), 1);
        r.reset();
        let t = r.telemetry_snapshot();
        assert!(t.comm.is_zero());
        assert!(t.class(OpClass::AmRoundTrip).is_empty());
    }

    #[test]
    fn telemetry_snapshot_merge_and_json() {
        let r1 = Registry::default();
        let r2 = Registry::default();
        r1.record(OpClass::Put, 910);
        r2.record(OpClass::Put, 1810);
        let t = r1.telemetry_snapshot() + r2.telemetry_snapshot();
        assert_eq!(t.class(OpClass::Put).count(), 2);
        assert_eq!(t.class(OpClass::Put).max(), 1810);
        let j = t.latency_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"put\": {\"count\": 2"));
        assert!(j.contains("\"max\": 1810"));
        // Empty classes are omitted.
        assert!(!j.contains("rdma_atomic"));
    }

    fn mk_span(tag: u64) -> Span {
        Span {
            class: OpClass::AmService,
            src: 0,
            dest: 1,
            issue_vtime: 0,
            arrive_vtime: 700,
            start_vtime: 700,
            end_vtime: 1800,
            tag,
            trace: 0,
            span: 0,
            parent: 0,
        }
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let ring = RingSink::new(2);
        for t in 0..5 {
            ring.record(&mk_span(t));
        }
        assert_eq!(ring.len(), 2);
        let spans = ring.take();
        assert!(ring.is_empty());
        assert_eq!(spans.iter().map(|s| s.tag).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn ring_sink_full_buffer_drops_oldest_never_rejects() {
        // The documented full-buffer contract: a full ring evicts the
        // *oldest* span and always accepts the new one. Every record call
        // must land, and after N > capacity records the buffer holds the
        // last `capacity` spans in order.
        let cap = 3;
        let ring = RingSink::new(cap);
        for t in 0..10u64 {
            ring.record(&mk_span(t));
            assert!(
                ring.len() <= cap,
                "ring must never exceed its capacity ({cap})"
            );
            // The newest span was accepted, not rejected.
            assert_eq!(ring.len(), (t as usize + 1).min(cap));
        }
        let tags: Vec<u64> = ring.take().iter().map(|s| s.tag).collect();
        assert_eq!(tags, [7, 8, 9], "oldest spans dropped, newest kept");
    }

    #[test]
    fn json_lines_sink_try_flush_reports_io_errors() {
        // Happy path: a writable file flushes cleanly.
        let path = std::env::temp_dir().join(format!(
            "pgas_trace_flush_test_{}.jsonl",
            std::process::id()
        ));
        let sink = JsonLinesSink::create(&path).unwrap();
        sink.record(&mk_span(1));
        assert!(sink.try_flush().is_ok());
        drop(sink);
        let _ = std::fs::remove_file(&path);

        // Error path: /dev/full accepts the open but fails the flush with
        // ENOSPC, which try_flush must surface (the Sink::flush impl
        // swallows it by contract).
        #[cfg(target_os = "linux")]
        {
            let sink = JsonLinesSink::create("/dev/full").unwrap();
            // More than the BufWriter could absorb silently on flush.
            sink.record(&mk_span(2));
            let err = sink
                .try_flush()
                .expect_err("/dev/full flush must report ENOSPC");
            assert_eq!(err.raw_os_error(), Some(28), "expected ENOSPC: {err}");
        }
    }

    #[test]
    fn span_json_shape() {
        let s = Span {
            class: OpClass::Retry,
            src: 3,
            dest: 0,
            issue_vtime: 10,
            arrive_vtime: 20,
            start_vtime: 30,
            end_vtime: 40,
            tag: 7,
            trace: 99,
            span: 100,
            parent: 99,
        };
        let j = s.to_json();
        assert_eq!(
            j,
            "{\"class\": \"retry\", \"src\": 3, \"dest\": 0, \"issue\": 10, \
             \"arrive\": 20, \"start\": 30, \"end\": 40, \"tag\": 7, \
             \"trace\": 99, \"span\": 100, \"parent\": 99}"
        );
    }

    #[test]
    fn op_tag_packs_and_unpacks() {
        let tag = pack_op_tag(opkind::ENQUEUE, 5, 0xdead_beef_cafe);
        let (kind, retries, hash) = unpack_op_tag(tag);
        assert_eq!(kind, opkind::ENQUEUE);
        assert_eq!(retries, 5);
        assert_eq!(hash, 0xdead_beef_cafe & 0xff_ffff_ffff);
        // Retries saturate rather than bleed into the hash bits.
        let (_, r, h) = unpack_op_tag(pack_op_tag(opkind::POP, u64::MAX, 0));
        assert_eq!(r, 0xffff);
        assert_eq!(h, 0);
    }

    #[test]
    fn key_hash_is_deterministic() {
        assert_eq!(key_hash64(&42u64), key_hash64(&42u64));
        assert_ne!(key_hash64(&42u64), key_hash64(&43u64));
    }

    #[test]
    fn trace_ctx_enter_nests_and_restores() {
        use super::trace::{current, enter, TraceCtx};
        assert_eq!(current(), None);
        {
            let _g1 = enter(Some(TraceCtx { trace: 1, span: 1 }));
            assert_eq!(current(), Some(TraceCtx { trace: 1, span: 1 }));
            {
                let _g2 = enter(Some(TraceCtx { trace: 1, span: 2 }));
                assert_eq!(current().unwrap().span, 2);
            }
            assert_eq!(current().unwrap().span, 1);
            {
                let _g3 = enter(None);
                assert_eq!(current(), None);
            }
            assert_eq!(current().unwrap().span, 1);
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn percentile_single_sample_edges() {
        // Bucket-boundary edge values: a single-sample histogram must
        // report that exact sample at every percentile (the bucket upper
        // bound is clamped by the exact max).
        for v in [0u64, 1, 2, 3, u64::MAX] {
            let h = Histogram::default();
            h.record(v);
            let s = h.snapshot();
            for p in [0.0, 0.1, 50.0, 99.0, 99.9, 100.0] {
                assert_eq!(s.percentile(p), v, "single sample {v} at p{p}");
            }
        }
    }

    mod percentile_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn monotone_in_p(
                samples in proptest::collection::vec(0u64..=u64::MAX, 1..64),
                // Permille points, mapped to f64 percentiles below (the
                // vendored proptest has no float range strategy).
                mut ps_permille in proptest::collection::vec(0u64..=1000, 2..8),
            ) {
                let h = Histogram::default();
                for &v in &samples {
                    h.record(v);
                }
                let s = h.snapshot();
                ps_permille.sort_unstable();
                let ps: Vec<f64> = ps_permille.iter().map(|&m| m as f64 / 10.0).collect();
                for w in ps.windows(2) {
                    prop_assert!(
                        s.percentile(w[0]) <= s.percentile(w[1]),
                        "p{} -> {} must be <= p{} -> {}",
                        w[0], s.percentile(w[0]), w[1], s.percentile(w[1]),
                    );
                }
            }

            #[test]
            fn agrees_with_sorted_vec_reference(
                samples in proptest::collection::vec(0u64..100_000, 1..40),
                p_permille in 0u64..=1000,
            ) {
                let p = p_permille as f64 / 10.0;
                let h = Histogram::default();
                for &v in &samples {
                    h.record(v);
                }
                let s = h.snapshot();
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
                let exact = sorted[rank - 1];
                // The estimate is exactly the inclusive upper bound of the
                // log2 bucket holding the rank-th sample, clamped by the
                // true maximum — never below the exact answer.
                let est = s.percentile(p);
                prop_assert!(est >= exact);
                prop_assert_eq!(est, bucket_upper(bucket_of(exact)).min(s.max()));
            }
        }
    }

    #[test]
    fn all_names_unique_and_indexed() {
        let mut names: Vec<_> = OpClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpClass::COUNT);
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }
}
