//! Structured telemetry: a typed metric registry, per-operation spans, and
//! pluggable sinks.
//!
//! The paper's evaluation is about *where time goes* — RDMA vs
//! remote-execution paths, queueing at saturated progress threads, EBR
//! overhead — so flat event counts ([`crate::stats::CommStats`]) are not
//! enough. This module adds the latency half:
//!
//! * [`OpClass`] — the operation classes the simulator distinguishes
//!   (NIC atomic, AM round trip, handler queue wait, combine occupancy, …).
//! * [`Histogram`] — a fixed-bucket log2 histogram (64 buckets, lock-free,
//!   no dependencies; the vendor set is frozen). Percentiles come from a
//!   cumulative bucket walk; the maximum is tracked exactly so tail
//!   latencies are not bucket-rounded.
//! * [`Registry`] — one per locale, pairing the existing [`CommStats`]
//!   counters (unchanged names, so exact-count tests keep passing) with a
//!   per-class histogram set. [`Registry`] derefs to [`CommStats`], so all
//!   existing `locale.stats.am_sent…` call sites compile and count
//!   bit-identically.
//! * [`Span`] — one record per remote operation, stamped from the virtual
//!   time points that already exist (issue → wire → queue → handle →
//!   reply).
//! * [`Sink`] — where spans go: [`NullSink`] (zero-cost default — no sink
//!   installed means one relaxed atomic load per op and nothing else),
//!   [`RingSink`] (in-memory ring buffer for tests), [`JsonLinesSink`]
//!   (hand-rolled JSON-lines writer for the harness).
//!
//! ## Overhead budget
//!
//! Histogram recording is always on and costs four relaxed atomic RMWs per
//! sample; it charges **no virtual time** and touches **no counters**, so
//! perf-guard quantities (A1 scatter AM counts, A7 combining wins) are
//! bit-for-bit unaffected. Span emission is gated on an installed sink —
//! the default is a single `OnceLock::get` returning `None`.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::globalptr::LocaleId;
use crate::stats::{CommSnapshot, CommStats};

/// Operation classes tracked by the telemetry registry. Each class gets its
/// own latency (or occupancy) histogram per locale, and spans are keyed by
/// it.
///
/// This is distinct from [`crate::faults::OpClass`] (idempotent vs not,
/// which governs *drop eligibility*); this enum classifies *what kind of
/// remote operation* a sample describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpClass {
    /// 64-bit atomic executed on the simulated NIC (RDMA atomic). Sample =
    /// full virtual-time span charged to the issuing task, including any
    /// fault-injected delays and retry penalties.
    RdmaAtomic,
    /// Atomic executed by the local CPU. Sample = `cpu_atomic_ns`.
    CpuAtomic,
    /// 128-bit double-word CAS executed by the local CPU.
    CpuDcas,
    /// Sender-observed active-message round trip: issue → wire → queue →
    /// handler → reply, including retries of dropped sends.
    AmRoundTrip,
    /// Time an AM spent queued at a saturated progress thread: handler
    /// start minus arrival (zero when a server slot was free on arrival).
    AmQueue,
    /// Handler service time: dispatch cost (× straggler slowdown) plus the
    /// user body, measured on the destination locale.
    AmService,
    /// Occupancy of batched active messages ([`crate::engine::Batcher`] /
    /// `bulk_on`): sample = operations carried per bulk AM.
    BatchOccupancy,
    /// Occupancy of combined active messages
    /// ([`crate::engine::combine`]): sample = operations per shipped chunk.
    CombineOccupancy,
    /// One-sided PUT: sample = virtual-time cost (latency + bandwidth
    /// term). Local puts are free and not sampled.
    Put,
    /// One-sided GET: sample = virtual-time cost. Local gets are free and
    /// not sampled.
    Get,
    /// Fault-injected retry: sample = the backoff penalty (timeout +
    /// exponential backoff + jitter) charged for one dropped attempt. The
    /// matching span's `tag` is the fault decision index.
    Retry,
    /// Epoch reclamation pin-to-reclaim latency: virtual time from the
    /// first `defer_delete` into a limbo list until that list is drained.
    Reclaim,
    /// Depth of a limbo list at the moment it was drained (object count).
    LimboDepth,
}

impl OpClass {
    /// Number of classes (length of [`OpClass::ALL`]).
    pub const COUNT: usize = 13;

    /// Every class, in declaration order (the histogram index order).
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::RdmaAtomic,
        OpClass::CpuAtomic,
        OpClass::CpuDcas,
        OpClass::AmRoundTrip,
        OpClass::AmQueue,
        OpClass::AmService,
        OpClass::BatchOccupancy,
        OpClass::CombineOccupancy,
        OpClass::Put,
        OpClass::Get,
        OpClass::Retry,
        OpClass::Reclaim,
        OpClass::LimboDepth,
    ];

    /// Stable snake_case name used as the JSON key for this class.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::RdmaAtomic => "rdma_atomic",
            OpClass::CpuAtomic => "cpu_atomic",
            OpClass::CpuDcas => "cpu_dcas",
            OpClass::AmRoundTrip => "am_round_trip",
            OpClass::AmQueue => "am_queue",
            OpClass::AmService => "am_service",
            OpClass::BatchOccupancy => "batch_occupancy",
            OpClass::CombineOccupancy => "combine_occupancy",
            OpClass::Put => "put",
            OpClass::Get => "get",
            OpClass::Retry => "retry",
            OpClass::Reclaim => "reclaim",
            OpClass::LimboDepth => "limbo_depth",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of log2 buckets. Bucket 0 holds the value 0; bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket absorbs everything
/// above `2^62`.
const BUCKETS: usize = 64;

#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Upper bound (inclusive) of bucket `i`, used as the percentile estimate.
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A concurrently-updated fixed-bucket log2 histogram.
///
/// Recording is lock-free: one relaxed `fetch_add` on the bucket, count and
/// sum, plus a relaxed `fetch_max` so the true maximum survives bucket
/// rounding. No dependencies, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Capture a plain-old-data snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero the histogram. Callers must ensure quiescence.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A plain-old-data snapshot of a [`Histogram`], mergeable with `+`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded sample (not bucket-rounded).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at or below which `p` percent of samples fall, estimated
    /// as the inclusive upper bound of the log2 bucket containing that
    /// rank, clamped by the exact maximum (so `percentile(100.0) == max`).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

impl std::ops::Add for HistSnapshot {
    type Output = HistSnapshot;
    fn add(self, rhs: HistSnapshot) -> HistSnapshot {
        let mut buckets = self.buckets;
        for (b, r) in buckets.iter_mut().zip(rhs.buckets.iter()) {
            *b += r;
        }
        HistSnapshot {
            buckets,
            count: self.count + rhs.count,
            sum: self.sum + rhs.sum,
            max: self.max.max(rhs.max),
        }
    }
}

/// One [`Histogram`] per [`OpClass`].
#[derive(Debug)]
pub struct ClassHistograms {
    hists: [Histogram; OpClass::COUNT],
}

impl Default for ClassHistograms {
    fn default() -> Self {
        ClassHistograms {
            hists: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

impl ClassHistograms {
    /// Record one sample for `class`.
    #[inline]
    pub fn record(&self, class: OpClass, value: u64) {
        self.hists[class as usize].record(value);
    }

    /// The live histogram for `class`.
    pub fn class(&self, class: OpClass) -> &Histogram {
        &self.hists[class as usize]
    }

    /// Zero every histogram.
    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
    }

    /// Snapshot every histogram, in [`OpClass::ALL`] order.
    pub fn snapshot(&self) -> [HistSnapshot; OpClass::COUNT] {
        std::array::from_fn(|i| self.hists[i].snapshot())
    }
}

/// The per-locale metric registry: the existing [`CommStats`] counters
/// (the counter half — same names, same semantics) plus per-class latency
/// histograms (the new half).
///
/// `Registry` derefs to [`CommStats`], so `locale.stats.am_sent…` call
/// sites keep compiling and counting exactly as before.
#[derive(Debug, Default)]
pub struct Registry {
    counters: CommStats,
    latency: ClassHistograms,
}

impl Deref for Registry {
    type Target = CommStats;
    fn deref(&self) -> &CommStats {
        &self.counters
    }
}

impl Registry {
    /// The counter half.
    pub fn counters(&self) -> &CommStats {
        &self.counters
    }

    /// The histogram half.
    pub fn latency(&self) -> &ClassHistograms {
        &self.latency
    }

    /// Record one latency/occupancy sample. Charges no virtual time and
    /// touches no counters.
    #[inline]
    pub fn record(&self, class: OpClass, value: u64) {
        self.latency.record(class, value);
    }

    /// Zero both halves. Callers must ensure quiescence.
    pub fn reset(&self) {
        self.counters.reset();
        self.latency.reset();
    }

    /// Capture both halves as one [`TelemetrySnapshot`].
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            comm: self.counters.snapshot(),
            latency: self.latency.snapshot(),
        }
    }
}

/// A plain-old-data snapshot of a [`Registry`]: the communication counters
/// plus one histogram snapshot per op class. Mergeable with `+` to fold
/// per-locale registries into cluster totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// The counter half (see [`CommSnapshot`]).
    pub comm: CommSnapshot,
    latency: [HistSnapshot; OpClass::COUNT],
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            comm: CommSnapshot::default(),
            latency: [HistSnapshot::default(); OpClass::COUNT],
        }
    }
}

impl TelemetrySnapshot {
    /// The histogram snapshot for `class`.
    pub fn class(&self, class: OpClass) -> &HistSnapshot {
        &self.latency[class as usize]
    }

    /// Iterate `(class, histogram)` pairs for classes that recorded at
    /// least one sample.
    pub fn nonempty(&self) -> impl Iterator<Item = (OpClass, &HistSnapshot)> {
        OpClass::ALL
            .iter()
            .map(move |&c| (c, self.class(c)))
            .filter(|(_, h)| !h.is_empty())
    }

    /// Render the non-empty classes as a hand-rolled JSON object:
    /// `{"am_round_trip": {"count": …, "p50": …, "p99": …, "max": …,
    /// "mean": …}, …}`. Serde-free by design.
    pub fn latency_json(&self) -> String {
        let mut out = String::from("{");
        for (c, h) in self.nonempty() {
            if out.len() > 1 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(c.name());
            out.push_str("\": {\"count\": ");
            out.push_str(&h.count().to_string());
            out.push_str(", \"p50\": ");
            out.push_str(&h.percentile(50.0).to_string());
            out.push_str(", \"p99\": ");
            out.push_str(&h.percentile(99.0).to_string());
            out.push_str(", \"max\": ");
            out.push_str(&h.max().to_string());
            out.push_str(", \"mean\": ");
            out.push_str(&h.mean().to_string());
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl std::ops::Add for TelemetrySnapshot {
    type Output = TelemetrySnapshot;
    fn add(self, rhs: TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            comm: self.comm + rhs.comm,
            latency: std::array::from_fn(|i| self.latency[i] + rhs.latency[i]),
        }
    }
}

/// One record per remote operation, stamped from the virtual-time points
/// that already exist in the simulator: issue at the sender, arrival after
/// the wire (plus any injected delay), handler start after queueing behind
/// busy server slots, handler end, and the reply landing back at the
/// sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What kind of operation this span describes.
    pub class: OpClass,
    /// Locale that issued the operation.
    pub src: LocaleId,
    /// Locale that serviced it.
    pub dest: LocaleId,
    /// Sender virtual time when the operation was issued.
    pub issue_vtime: u64,
    /// Destination virtual time when the message arrived (issue + wire +
    /// injected delay).
    pub arrive_vtime: u64,
    /// Virtual time the handler actually started — `max(arrival, slot
    /// free)`; `start - arrive` is the queueing delay.
    pub start_vtime: u64,
    /// Virtual time the handler (or the operation) completed.
    pub end_vtime: u64,
    /// Class-specific tag: the fault decision index for
    /// [`OpClass::Retry`], the occupancy for batch/combine spans, zero
    /// otherwise.
    pub tag: u64,
}

impl Span {
    /// Render as one hand-rolled JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"class\": \"{}\", \"src\": {}, \"dest\": {}, \"issue\": {}, \
             \"arrive\": {}, \"start\": {}, \"end\": {}, \"tag\": {}}}",
            self.class.name(),
            self.src,
            self.dest,
            self.issue_vtime,
            self.arrive_vtime,
            self.start_vtime,
            self.end_vtime,
            self.tag
        )
    }
}

/// Where spans go. Implementations must be cheap and thread-safe: sinks
/// are called from progress threads and task threads concurrently.
pub trait Sink: Send + Sync + 'static {
    /// Record one span.
    fn record(&self, span: &Span);
    /// Flush any buffered output (no-op by default).
    fn flush(&self) {}
}

/// The zero-cost default: discards everything. Installing it is equivalent
/// to installing no sink at all (the uninstalled fast path is a single
/// `OnceLock::get`), but makes the "telemetry adds zero counter drift"
/// guarantee testable end to end.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _span: &Span) {}
}

/// An in-memory ring buffer of the most recent `capacity` spans, for
/// tests.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<Span>>,
}

impl RingSink {
    /// A ring that keeps the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Drain and return every buffered span, oldest first.
    pub fn take(&self) -> Vec<Span> {
        self.buf
            .lock()
            .map(|mut b| b.drain(..).collect())
            .unwrap_or_default()
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.buf.lock().map(|b| b.len()).unwrap_or(0)
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&self, span: &Span) {
        if let Ok(mut b) = self.buf.lock() {
            if b.len() == self.capacity {
                b.pop_front();
            }
            b.push_back(*span);
        }
    }
}

/// Writes one hand-rolled JSON object per span, newline-delimited, to a
/// file — the harness trace format. Buffered; flushed on [`Sink::flush`]
/// and on drop.
#[derive(Debug)]
pub struct JsonLinesSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonLinesSink {
    /// Create (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonLinesSink {
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, span: &Span) {
        if let Ok(mut w) = self.out.lock() {
            let _ = writeln!(w, "{}", span.to_json());
        }
    }

    fn flush(&self) {
        if let Ok(mut w) = self.out.lock() {
            let _ = w.flush();
        }
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // Bucket i's upper bound really is the largest value mapping to i.
        for i in 1..62 {
            assert_eq!(bucket_of(bucket_upper(i)), i);
            assert_eq!(bucket_of(bucket_upper(i) + 1), i + 1);
        }
    }

    #[test]
    fn percentiles_and_exact_max() {
        let h = Histogram::default();
        for v in [100u64, 200, 300, 400, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 11_000);
        assert_eq!(s.max(), 10_000);
        // p50 (the median, 300) falls in the bucket [256, 511].
        assert_eq!(s.percentile(50.0), 511);
        // The tail percentiles are clamped by the exact max, not the
        // bucket bound (16383).
        assert_eq!(s.percentile(99.0), 10_000);
        assert_eq!(s.percentile(100.0), 10_000);
        // Percentiles are monotone in p.
        assert!(s.percentile(10.0) <= s.percentile(90.0));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn snapshot_merge_adds_counts_and_maxes() {
        let a = Histogram::default();
        let b = Histogram::default();
        a.record(10);
        b.record(1000);
        b.record(1);
        let m = a.snapshot() + b.snapshot();
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 1011);
        assert_eq!(m.max(), 1000);
    }

    #[test]
    fn registry_derefs_to_counters_and_resets_both() {
        let r = Registry::default();
        r.am_sent.fetch_add(2, Ordering::Relaxed); // via Deref
        r.record(OpClass::AmRoundTrip, 2500);
        let t = r.telemetry_snapshot();
        assert_eq!(t.comm.am_sent, 2);
        assert_eq!(t.class(OpClass::AmRoundTrip).count(), 1);
        r.reset();
        let t = r.telemetry_snapshot();
        assert!(t.comm.is_zero());
        assert!(t.class(OpClass::AmRoundTrip).is_empty());
    }

    #[test]
    fn telemetry_snapshot_merge_and_json() {
        let r1 = Registry::default();
        let r2 = Registry::default();
        r1.record(OpClass::Put, 910);
        r2.record(OpClass::Put, 1810);
        let t = r1.telemetry_snapshot() + r2.telemetry_snapshot();
        assert_eq!(t.class(OpClass::Put).count(), 2);
        assert_eq!(t.class(OpClass::Put).max(), 1810);
        let j = t.latency_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"put\": {\"count\": 2"));
        assert!(j.contains("\"max\": 1810"));
        // Empty classes are omitted.
        assert!(!j.contains("rdma_atomic"));
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let ring = RingSink::new(2);
        let mk = |tag| Span {
            class: OpClass::AmService,
            src: 0,
            dest: 1,
            issue_vtime: 0,
            arrive_vtime: 700,
            start_vtime: 700,
            end_vtime: 1800,
            tag,
        };
        for t in 0..5 {
            ring.record(&mk(t));
        }
        assert_eq!(ring.len(), 2);
        let spans = ring.take();
        assert!(ring.is_empty());
        assert_eq!(spans.iter().map(|s| s.tag).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn span_json_shape() {
        let s = Span {
            class: OpClass::Retry,
            src: 3,
            dest: 0,
            issue_vtime: 10,
            arrive_vtime: 20,
            start_vtime: 30,
            end_vtime: 40,
            tag: 7,
        };
        let j = s.to_json();
        assert_eq!(
            j,
            "{\"class\": \"retry\", \"src\": 3, \"dest\": 0, \"issue\": 10, \
             \"arrive\": 20, \"start\": 30, \"end\": 40, \"tag\": 7}"
        );
    }

    #[test]
    fn all_names_unique_and_indexed() {
        let mut names: Vec<_> = OpClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpClass::COUNT);
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }
}
