//! Safety- and progress-invariant checking for chaos workloads.
//!
//! The [`InvariantChecker`] is an *observer*: chaos harnesses install it on
//! the epoch manager (via the [`ReclaimObserver`] trait) and feed it
//! ordering observations from the workload, then call
//! [`InvariantChecker::check`] at the end. It verifies:
//!
//! - **No use-after-free in limbo-list reclamation.** Every reclaimed block
//!   is tagged; a later defer of a tagged address un-tags it (the allocator
//!   legitimately recycled it), but an access ([`InvariantChecker::mark_access`])
//!   or a second reclaim of a tagged address is a violation. Reclamation
//!   age is checked structurally: outside of teardown, the only limbo list
//!   that may be freed after advancing to epoch `c` is the one two advances
//!   old — `(c % 3) + 1` in the 3-cycle — so an early free of a younger
//!   list is caught no matter how the manager reached it.
//! - **ABA counters strictly monotone.** Observations of an
//!   `AtomicAbaObject`-style stamped counter recorded per observer stream
//!   must never decrease; a decrease means a stamp was reused or torn.
//! - **Per-destination FIFO under retry.** Sequence-stamped operations
//!   recorded per `(source, destination)` stream must arrive strictly
//!   in-order; a retry scheme that re-sent an already-delivered message
//!   (rather than only provably-lost ones) would break this.
//!
//! Global progress — a stalled pinned task must not stop other locales'
//! operations — is a whole-workload property; the chaos binary asserts it
//! directly from per-locale throughput counts and reports it through the
//! same verdict table.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Reclamation events, reported by a reclamation backend to an installed
/// observer. Addresses identify the reclaimed allocation (its heap
/// address); epochs are the epoch managers' `{1, 2, 3}` values.
/// Hazard-pointer backends report epoch `0` on every event (they have no
/// epochs), which switches the checker from age rules to protection
/// rules.
pub trait ReclaimObserver: Send + Sync {
    /// An object was pushed onto the limbo list of `epoch` (or retired,
    /// for hazard-pointer backends, with `epoch == 0`).
    fn on_defer(&self, addr: usize, epoch: u64);
    /// The global epoch advanced to `new_epoch`.
    fn on_advance(&self, new_epoch: u64);
    /// The limbo list of `list_epoch` is being reclaimed while the global
    /// epoch is `current_epoch`; `during_clear` marks quiescent teardown
    /// (`clear()`), where age rules do not apply. Hazard-pointer backends
    /// pass `list_epoch == current_epoch == 0`.
    fn on_reclaim(&self, addr: usize, list_epoch: u64, current_epoch: u64, during_clear: bool);
    /// A hazard pointer to `addr` was published *and validated* (the
    /// protected object was provably not yet retired). Only
    /// hazard-pointer backends emit this; the default is a no-op.
    fn on_protect(&self, addr: usize) {
        let _ = addr;
    }
    /// A previously-validated protection of `addr` was dropped (slot
    /// released, overwritten, or guard dropped). Default is a no-op.
    fn on_release(&self, addr: usize) {
        let _ = addr;
    }
}

/// Upper bound on retained violation messages; further violations are
/// counted but not stored.
const MAX_STORED_VIOLATIONS: usize = 64;

#[derive(Default)]
struct CheckerState {
    /// Reclaimed (freed) addresses not since re-deferred: the UAF tag set.
    freed: HashMap<usize, u64>,
    /// Validated hazard protections currently outstanding per address.
    protected: HashMap<usize, u64>,
    /// Last observed sequence number per FIFO stream.
    fifo_last: HashMap<u64, u64>,
    /// Last observed ABA stamp per observer stream.
    aba_last: HashMap<u64, u64>,
    violations: Vec<String>,
}

/// Records observations from a chaos workload and validates the safety
/// invariants described in the module docs. Cheap to share: wrap in an
/// [`Arc`] and clone freely.
#[derive(Default)]
pub struct InvariantChecker {
    state: Mutex<CheckerState>,
    advances: AtomicU64,
    defers: AtomicU64,
    reclaims: AtomicU64,
    protects: AtomicU64,
    total_violations: AtomicU64,
}

impl InvariantChecker {
    /// A fresh checker with no observations.
    pub fn new() -> Arc<Self> {
        Arc::new(InvariantChecker::default())
    }

    fn violate(&self, msg: String) {
        self.total_violations.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        if st.violations.len() < MAX_STORED_VIOLATIONS {
            st.violations.push(msg);
        }
    }

    /// The limbo list that is legal to reclaim right after advancing to
    /// `current`: the one two advances old, which in the 3-cycle is also
    /// the next epoch value.
    fn expected_reclaim_epoch(current: u64) -> u64 {
        (current % 3) + 1
    }

    /// Tag an address as accessed; a violation if it is currently freed.
    /// Chaos workloads call this on every pointer they are about to
    /// dereference when they can observe one.
    pub fn mark_access(&self, addr: usize) {
        let st = self.state.lock();
        if st.freed.contains_key(&addr) {
            drop(st);
            self.violate(format!("use-after-free: accessed freed block {addr:#x}"));
        }
    }

    /// Record a sequence-stamped arrival on FIFO stream `stream`;
    /// violations on any non-increasing sequence.
    pub fn record_fifo(&self, stream: u64, seq: u64) {
        let mut st = self.state.lock();
        if let Some(&last) = st.fifo_last.get(&stream) {
            if seq <= last {
                drop(st);
                self.violate(format!(
                    "FIFO violation on stream {stream}: saw seq {seq} after {last}"
                ));
                return;
            }
        }
        st.fifo_last.insert(stream, seq);
    }

    /// Record an observed ABA stamp on observer stream `stream`;
    /// violations if a stamp ever decreases (stamps are monotone by
    /// construction, so a decrease means reuse or tearing).
    pub fn record_aba(&self, stream: u64, stamp: u64) {
        let mut st = self.state.lock();
        if let Some(&last) = st.aba_last.get(&stream) {
            if stamp < last {
                drop(st);
                self.violate(format!(
                    "ABA stamp regressed on stream {stream}: {stamp} < {last}"
                ));
                return;
            }
        }
        st.aba_last.insert(stream, stamp);
    }

    /// Number of epoch advances observed.
    pub fn advances(&self) -> u64 {
        self.advances.load(Ordering::Relaxed)
    }

    /// Number of deferred deletions observed.
    pub fn defers(&self) -> u64 {
        self.defers.load(Ordering::Relaxed)
    }

    /// Number of reclaimed objects observed.
    pub fn reclaims(&self) -> u64 {
        self.reclaims.load(Ordering::Relaxed)
    }

    /// Number of validated hazard protections observed.
    pub fn protects(&self) -> u64 {
        self.protects.load(Ordering::Relaxed)
    }

    /// Total violations recorded (including any beyond the storage cap).
    pub fn violation_count(&self) -> u64 {
        self.total_violations.load(Ordering::Relaxed)
    }

    /// The stored violation messages (up to the cap).
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().violations.clone()
    }

    /// `Ok` when no invariant was violated, otherwise the stored messages.
    pub fn check(&self) -> Result<(), Vec<String>> {
        if self.violation_count() == 0 {
            Ok(())
        } else {
            Err(self.violations())
        }
    }
}

impl ReclaimObserver for InvariantChecker {
    fn on_defer(&self, addr: usize, _epoch: u64) {
        self.defers.fetch_add(1, Ordering::Relaxed);
        // A defer of a previously-freed address means the allocator
        // recycled it for a new object: un-tag it.
        self.state.lock().freed.remove(&addr);
    }

    fn on_advance(&self, _new_epoch: u64) {
        self.advances.fetch_add(1, Ordering::Relaxed);
    }

    fn on_reclaim(&self, addr: usize, list_epoch: u64, current_epoch: u64, during_clear: bool) {
        self.reclaims.fetch_add(1, Ordering::Relaxed);
        if list_epoch == 0 {
            // Hazard-pointer backend: no epochs to age-check. The safety
            // rule is instead that a scan must never free an address with
            // a validated protection outstanding (outside teardown).
            if !during_clear {
                let protected = self.state.lock().protected.get(&addr).copied().unwrap_or(0);
                if protected > 0 {
                    self.violate(format!(
                        "hazard violation: block {addr:#x} freed while \
                         {protected} validated protection(s) were published"
                    ));
                }
            }
        } else if !during_clear && list_epoch != Self::expected_reclaim_epoch(current_epoch) {
            self.violate(format!(
                "early reclamation: freed limbo list of epoch {list_epoch} \
                 while the global epoch is {current_epoch} (only epoch {} \
                 is two advances old)",
                Self::expected_reclaim_epoch(current_epoch)
            ));
        }
        let mut st = self.state.lock();
        if st.freed.insert(addr, current_epoch).is_some() {
            drop(st);
            self.violate(format!(
                "double free: block {addr:#x} reclaimed twice without an \
                 intervening defer"
            ));
        }
    }

    fn on_protect(&self, addr: usize) {
        self.protects.fetch_add(1, Ordering::Relaxed);
        *self.state.lock().protected.entry(addr).or_insert(0) += 1;
    }

    fn on_release(&self, addr: usize) {
        let mut st = self.state.lock();
        match st.protected.get_mut(&addr) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                st.protected.remove(&addr);
            }
            None => {
                drop(st);
                self.violate(format!(
                    "unbalanced release: block {addr:#x} released without a \
                     validated protection"
                ));
            }
        }
    }
}

impl std::fmt::Debug for InvariantChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvariantChecker")
            .field("advances", &self.advances())
            .field("defers", &self.defers())
            .field("reclaims", &self.reclaims())
            .field("violations", &self.violation_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_passes() {
        let c = InvariantChecker::new();
        c.on_defer(0x1000, 1);
        c.on_advance(2);
        c.on_advance(3);
        // After advancing to 3, the two-advances-old list is epoch 1.
        c.on_reclaim(0x1000, 1, 3, false);
        assert!(c.check().is_ok());
        assert_eq!(c.advances(), 2);
        assert_eq!(c.reclaims(), 1);
    }

    #[test]
    fn early_free_is_caught() {
        let c = InvariantChecker::new();
        c.on_defer(0x2000, 2);
        // Reclaiming the *current* epoch's list (age 0) is the deliberate
        // bug the chaos suite plants; the checker must flag it.
        c.on_reclaim(0x2000, 2, 2, false);
        let errs = c.check().unwrap_err();
        assert!(errs[0].contains("early reclamation"), "{errs:?}");
    }

    #[test]
    fn clear_is_exempt_from_age_rules() {
        let c = InvariantChecker::new();
        c.on_defer(0x3000, 1);
        c.on_reclaim(0x3000, 1, 1, true);
        assert!(c.check().is_ok());
    }

    #[test]
    fn access_after_free_is_caught_and_recycle_untags() {
        let c = InvariantChecker::new();
        c.on_defer(0x4000, 1);
        c.on_advance(2);
        c.on_advance(3);
        c.on_reclaim(0x4000, 1, 3, false);
        c.mark_access(0x4000);
        assert_eq!(c.violation_count(), 1);
        // The allocator hands the address out again; a new defer un-tags.
        c.on_defer(0x4000, 3);
        c.mark_access(0x4000);
        assert_eq!(c.violation_count(), 1);
    }

    #[test]
    fn double_free_is_caught() {
        let c = InvariantChecker::new();
        c.on_defer(0x5000, 1);
        c.on_advance(2);
        c.on_advance(3);
        c.on_reclaim(0x5000, 1, 3, false);
        c.on_reclaim(0x5000, 1, 3, false);
        let errs = c.check().unwrap_err();
        assert!(errs.iter().any(|e| e.contains("double free")), "{errs:?}");
    }

    #[test]
    fn fifo_and_aba_streams_are_independent_and_ordered() {
        let c = InvariantChecker::new();
        c.record_fifo(1, 10);
        c.record_fifo(2, 5);
        c.record_fifo(1, 11);
        c.record_aba(7, 100);
        c.record_aba(7, 100); // equal stamps are fine for reads
        assert!(c.check().is_ok());
        c.record_fifo(1, 11); // duplicate delivery
        c.record_aba(7, 99); // regressed stamp
        let errs = c.check().unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn hazard_free_of_protected_block_is_caught() {
        let c = InvariantChecker::new();
        c.on_defer(0x6000, 0); // HP retire (epoch sentinel 0)
        c.on_protect(0x6000);
        // A (buggy) scan frees the block while a validated protection is
        // outstanding — the HP analogue of early reclamation.
        c.on_reclaim(0x6000, 0, 0, false);
        let errs = c.check().unwrap_err();
        assert!(errs[0].contains("hazard violation"), "{errs:?}");
        assert_eq!(c.protects(), 1);
    }

    #[test]
    fn hazard_free_of_released_block_passes() {
        let c = InvariantChecker::new();
        c.on_protect(0x7000);
        c.on_release(0x7000);
        c.on_defer(0x7000, 0);
        c.on_reclaim(0x7000, 0, 0, false);
        assert!(c.check().is_ok());
        // Clear-time frees are exempt even with a protection outstanding.
        c.on_protect(0x7100);
        c.on_defer(0x7100, 0);
        c.on_reclaim(0x7100, 0, 0, true);
        assert!(c.check().is_ok());
    }

    #[test]
    fn unbalanced_release_is_caught() {
        let c = InvariantChecker::new();
        c.on_protect(0x8000);
        c.on_protect(0x8000);
        c.on_release(0x8000);
        c.on_release(0x8000);
        assert!(c.check().is_ok(), "nested protections balance out");
        c.on_release(0x8000);
        let errs = c.check().unwrap_err();
        assert!(errs[0].contains("unbalanced release"), "{errs:?}");
    }

    #[test]
    fn violation_storage_is_capped_but_counted() {
        let c = InvariantChecker::new();
        for i in 0..(MAX_STORED_VIOLATIONS as u64 + 50) {
            c.record_fifo(9, 1000 - i); // strictly decreasing after first
        }
        assert_eq!(c.violation_count(), MAX_STORED_VIOLATIONS as u64 + 49);
        assert_eq!(c.violations().len(), MAX_STORED_VIOLATIONS);
    }
}
