//! # pgas-sim — a single-process PGAS (locale) simulator
//!
//! The building blocks of the paper *"Paving the way for Distributed
//! Non-Blocking Algorithms and Data Structures in the Partitioned Global
//! Address Space model"* were written for Chapel running on a Cray XC-50.
//! Rust has no PGAS/SHMEM substrate, so this crate provides one: a
//! simulator that runs any number of *locales* (compute nodes) inside one
//! process, with
//!
//! * **tasks** bound to locales (`run`, `on`, `coforall`, distributed
//!   `forall` — see [`runtime::RuntimeCore`]),
//! * a **communication engine** ([`engine`]) that owns every remote
//!   operation: active messages serviced by per-locale progress threads
//!   (blocking `on`, fire-and-forget `on_async`, batched `bulk_on` /
//!   [`engine::Batcher`]) and a simulated NIC that routes and prices
//!   atomics the way Gemini/Aries network atomics behave, including the
//!   `CHPL_NETWORK_ATOMICS` quirk that local atomics also pay the NIC
//!   toll,
//! * **global pointers** with 48-bit-address/16-bit-locale compression and
//!   a 128-bit wide fallback ([`globalptr`]),
//! * **locale-owned heap objects** with remote allocation/free and the
//!   bulk scatter-free path ([`heap`]),
//! * **privatization** — per-locale replicas with zero-communication local
//!   access ([`privatized`]),
//! * **virtual time** so scaling curves are host-independent ([`vtime`])
//!   and **communication counters** so tests can assert exact traffic
//!   ([`stats`]).
//!
//! Concurrency is real (OS threads, real atomics, real races); only the
//! *network* is modeled. That means the non-blocking algorithms built on
//! top are genuinely exercised for correctness, while performance curves
//! come from the deterministic cost model.
//!
//! ## Quick tour
//!
//! ```
//! use pgas_sim::{Runtime, here};
//!
//! let rt = Runtime::cluster(4);
//! rt.run(|| {
//!     // Chapel: coforall loc in Locales do on loc { ... }
//!     rt.coforall_locales(|l| {
//!         assert_eq!(here(), l);
//!     });
//!     // Chapel: on Locales[2] do f()
//!     let two = rt.on(2, || here());
//!     assert_eq!(two, 2);
//! });
//! ```

#![warn(missing_docs)]

pub(crate) mod am;
pub mod array;
pub mod barrier;
pub(crate) mod comm;
pub mod config;
pub mod ctx;
pub mod engine;
pub mod faults;
pub mod globalptr;
pub mod handlers;
pub mod heap;
pub mod locale;
pub mod privatized;
pub mod reduce;
pub mod runtime;
pub mod shard;
pub mod stats;
pub mod symheap;
pub mod telemetry;
pub mod vtime;

pub use array::{Dist, DistArray};
pub use barrier::DistBarrier;
pub use config::{EngineKind, NetworkConfig, PointerMode, RuntimeConfig};
pub use ctx::{current_runtime, here, try_here};
pub use engine::{AtomicPath, Batcher, CommEngine, Completion, CompletionWaiter};
pub use faults::{FaultPlan, OpClass, RetryPolicy};
pub use globalptr::{GlobalPtr, LocaleId, WideGlobalPtr};
pub use handlers::HandlerId;
pub use heap::{
    alloc_local, alloc_on, free, free_erased, free_erased_batch, free_erased_local_batch, Erased,
};
pub use locale::Locale;
pub use privatized::Privatized;
pub use reduce::{all_locales, any_locales, max_locales, min_locales, reduce_locales, sum_locales};
pub use runtime::{Runtime, RuntimeCore, RuntimeHandle};
pub use shard::ShardRouter;
pub use stats::{CommSnapshot, CommStats, HeapStats};
pub use symheap::{SymHeap, SymOp64};
pub use telemetry::TelemetrySnapshot;
