//! Virtual-time accounting.
//!
//! The simulator runs on however many host cores happen to be available, so
//! wall-clock time cannot reproduce the *scaling shape* of a 64-node Cray.
//! Instead every task carries a thread-local virtual clock (nanoseconds).
//! Communication primitives charge model costs to it, and synchronization
//! points (active-message queueing, `coforall` joins) merge clocks the way a
//! discrete-event simulator would:
//!
//! * an active message sent at task time `t` arrives at the target progress
//!   thread at `t + wire`; the handler starts at `max(arrival, progress
//!   clock)` — so a saturated progress thread queues work and the AM path
//!   stops scaling, exactly the behaviour the paper attributes to remote
//!   execution;
//! * the reply reaches the sender at `handler end + wire`;
//! * a `coforall` join advances the parent clock to the max of all child
//!   end times.
//!
//! Wall-clock measurements remain available for micro-overhead comparisons;
//! the figure harness reports virtual makespans.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static VTIME: Cell<u64> = const { Cell::new(0) };
}

/// Current task-local virtual time in nanoseconds.
#[inline]
pub fn now() -> u64 {
    VTIME.with(|t| t.get())
}

/// Set the task-local virtual clock (used when a task is born or when a
/// handler begins executing at its queued start time).
#[inline]
pub fn set(t: u64) {
    VTIME.with(|c| c.set(t));
}

/// Charge `ns` nanoseconds of virtual time to the current task.
#[inline]
pub fn charge(ns: u64) {
    VTIME.with(|c| c.set(c.get().saturating_add(ns)));
}

/// Instrumented charge point: charge `ns` to the task clock *and* record
/// the same quantity as a latency sample for `class` on `registry` (see
/// [`crate::telemetry`]). The sample is bookkeeping only — it never feeds
/// back into the clock, so virtual-time results are bit-identical with or
/// without anyone reading the histograms.
#[inline]
pub fn charge_sampled(
    registry: &crate::telemetry::Registry,
    class: crate::telemetry::OpClass,
    ns: u64,
) {
    charge(ns);
    registry.record(class, ns);
}

/// Advance the task clock to at least `t` (no-op if already past).
#[inline]
pub fn advance_to(t: u64) {
    VTIME.with(|c| {
        if c.get() < t {
            c.set(t);
        }
    });
}

/// A shareable monotonic virtual clock, used for progress threads and for
/// collecting the makespan of a task group.
#[derive(Debug, Default)]
pub struct VClock(AtomicU64);

impl VClock {
    /// A clock starting at zero.
    pub const fn new() -> Self {
        VClock(AtomicU64::new(0))
    }

    /// Current reading.
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Monotonically advance the clock to at least `t`; returns the clock
    /// value after the update.
    #[inline]
    pub fn advance_to(&self, t: u64) -> u64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if cur >= t {
                return cur;
            }
            match self
                .0
                .compare_exchange_weak(cur, t, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return t,
                Err(c) => cur = c,
            }
        }
    }

    /// Atomically claim an execution slot of duration `dur` that cannot
    /// start before `earliest`: the clock jumps from `max(now, earliest)` to
    /// `max(now, earliest) + dur`. Returns `(start, end)`.
    ///
    /// This is the single-server queueing discipline used for progress
    /// threads: back-to-back messages serialize, idle gaps are skipped.
    pub fn claim(&self, earliest: u64, dur: u64) -> (u64, u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let start = cur.max(earliest);
            let end = start + dur;
            match self
                .0
                .compare_exchange_weak(cur, end, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return (start, end),
                Err(c) => cur = c,
            }
        }
    }

    /// Reset to zero (between benchmark phases; callers must ensure
    /// quiescence).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        set(0);
        charge(5);
        charge(7);
        assert_eq!(now(), 12);
    }

    #[test]
    fn advance_to_is_monotonic() {
        set(100);
        advance_to(50);
        assert_eq!(now(), 100);
        advance_to(150);
        assert_eq!(now(), 150);
    }

    #[test]
    fn set_overrides() {
        set(42);
        assert_eq!(now(), 42);
        set(0);
        assert_eq!(now(), 0);
    }

    #[test]
    fn vclock_advance() {
        let c = VClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance_to(10), 10);
        assert_eq!(c.advance_to(5), 10);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn vclock_claim_serializes() {
        let c = VClock::new();
        let (s1, e1) = c.claim(0, 10);
        assert_eq!((s1, e1), (0, 10));
        // Arrives "in the past": starts when the server frees up.
        let (s2, e2) = c.claim(3, 10);
        assert_eq!((s2, e2), (10, 20));
        // Arrives after an idle gap: starts at its arrival time.
        let (s3, e3) = c.claim(100, 5);
        assert_eq!((s3, e3), (100, 105));
    }

    #[test]
    fn vclock_claim_concurrent_total_duration() {
        use std::sync::Arc;
        let c = Arc::new(VClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.claim(0, 3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Single-server discipline: all 4000 * 3ns slots serialize.
        assert_eq!(c.now(), 12_000);
    }

    #[test]
    fn charge_sampled_charges_clock_and_records_sample() {
        use crate::telemetry::{OpClass, Registry};
        let r = Registry::default();
        set(0);
        charge_sampled(&r, OpClass::Put, 850);
        assert_eq!(now(), 850, "clock advances exactly as plain charge()");
        let t = r.telemetry_snapshot();
        assert_eq!(t.class(OpClass::Put).count(), 1);
        assert_eq!(t.class(OpClass::Put).max(), 850);
        assert!(t.comm.is_zero(), "sampling must not touch counters");
        set(0);
    }

    #[test]
    fn charge_saturates_instead_of_overflowing() {
        set(u64::MAX - 1);
        charge(100);
        assert_eq!(now(), u64::MAX);
        set(0);
    }
}
