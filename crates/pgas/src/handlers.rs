//! Registry of *remotable handler functions*.
//!
//! The simulator ships closures between locales because every locale lives
//! in one process. A process backend cannot: only data crosses the wire.
//! The portable unit of remote execution is therefore a plain `fn` —
//! registered under a stable name at startup, addressed by a small
//! [`HandlerId`] in active-message descriptors, and invoked on the
//! destination with a byte-slice argument, returning a byte-vector reply.
//!
//! Identical binaries that perform the same [`register`] calls in the same
//! program order assign the same ids, which is how `procbench`'s agent
//! processes agree on handler numbering without any negotiation (the SHMEM
//! "same executable on every PE" contract). Registration is idempotent for
//! a `(name, fn)` pair so test binaries that build several runtimes in one
//! process can re-register freely.

use crate::runtime::RuntimeCore;

/// A remotable handler: executes on the destination locale with the
/// runtime context entered (so [`crate::ctx::here`] and the engine façade
/// work), receives the serialized argument bytes, returns serialized reply
/// bytes.
pub type HandlerFn = fn(&RuntimeCore, &[u8]) -> Vec<u8>;

/// Stable index of a registered handler (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandlerId(pub u32);

static REGISTRY: parking_lot::Mutex<Vec<(&'static str, HandlerFn)>> =
    parking_lot::Mutex::new(Vec::new());

/// Register `f` under `name`, returning its id. Idempotent: re-registering
/// the same `(name, fn)` pair returns the existing id. Panics if `name` is
/// already bound to a *different* function — handler names must be globally
/// unique so ids agree across processes.
pub fn register(name: &'static str, f: HandlerFn) -> HandlerId {
    let mut reg = REGISTRY.lock();
    if let Some(idx) = reg.iter().position(|(n, _)| *n == name) {
        assert!(
            std::ptr::fn_addr_eq(reg[idx].1, f),
            "handler name {name:?} already registered with a different function"
        );
        return HandlerId(idx as u32);
    }
    reg.push((name, f));
    HandlerId((reg.len() - 1) as u32)
}

/// Look up a handler id by name, if registered.
pub fn resolve(name: &str) -> Option<HandlerId> {
    REGISTRY
        .lock()
        .iter()
        .position(|(n, _)| *n == name)
        .map(|i| HandlerId(i as u32))
}

/// The name a handler id was registered under. Panics on an unknown id.
pub fn name_of(id: HandlerId) -> &'static str {
    REGISTRY.lock()[id.0 as usize].0
}

/// Invoke a registered handler on this process. Panics on an unknown id
/// (a wire-level protocol error: the sender's binary registered more
/// handlers than ours).
pub fn invoke(id: HandlerId, core: &RuntimeCore, args: &[u8]) -> Vec<u8> {
    let f = {
        let reg = REGISTRY.lock();
        let Some(&(_, f)) = reg.get(id.0 as usize) else {
            panic!(
                "unknown handler id {} (only {} registered); agent binaries \
                 must register identical handler sets in the same order",
                id.0,
                reg.len()
            );
        };
        f
    };
    f(core, args)
}

/// Number of handlers registered so far.
pub fn count() -> usize {
    REGISTRY.lock().len()
}

/// Run handler `h` on locale `dest` (blocking round trip), from inside any
/// runtime task. The engine-portable sibling of [`crate::Runtime::on`].
pub fn call(dest: crate::LocaleId, h: HandlerId, args: &[u8]) -> Vec<u8> {
    crate::ctx::with_core(|c, _| c.engine().on_handler(c, dest, h, args))
}

/// Fire handler `h` on locale `dest` without waiting; the returned
/// [`Completion`](crate::engine::Completion) resolves when the handler has
/// run (its reply bytes are discarded).
pub fn call_async(dest: crate::LocaleId, h: HandlerId, args: Vec<u8>) -> crate::engine::Completion {
    crate::ctx::with_core(|c, _| c.engine().on_handler_async(c, dest, h, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo(_core: &RuntimeCore, args: &[u8]) -> Vec<u8> {
        args.to_vec()
    }

    fn double(_core: &RuntimeCore, args: &[u8]) -> Vec<u8> {
        args.iter().map(|b| b.wrapping_mul(2)).collect()
    }

    #[test]
    fn register_is_idempotent_and_resolves() {
        let a = register("test.echo", echo);
        let b = register("test.echo", echo);
        assert_eq!(a, b);
        assert_eq!(resolve("test.echo"), Some(a));
        assert_eq!(name_of(a), "test.echo");
        let c = register("test.double", double);
        assert_ne!(a, c);
        assert_eq!(resolve("missing"), None);
    }

    #[test]
    #[should_panic(expected = "different function")]
    fn conflicting_registration_panics() {
        register("test.conflict", echo);
        register("test.conflict", double);
    }
}
