//! Communication charging: the routing rules for atomics, PUTs and GETs.
//!
//! This module is the simulated NIC. Given an operation and the affinity of
//! its target, it decides which path the operation takes — CPU atomic,
//! NIC-side (RDMA) atomic, or active message — charges the corresponding
//! virtual-time cost, and bumps the right counters. The *memory effect* of
//! the operation is then carried out by the caller (the simulator shares
//! one address space, standing in for RDMA-registered memory).
//!
//! Routing rules (paper §II-A, §III):
//!
//! | op              | `network_atomics=on`      | `network_atomics=off`  |
//! |-----------------|---------------------------|------------------------|
//! | 64-bit, local   | NIC atomic (non-coherent!) | CPU atomic            |
//! | 64-bit, remote  | NIC (RDMA) atomic          | active message        |
//! | 128-bit, local  | CPU `CMPXCHG16B`           | CPU `CMPXCHG16B`      |
//! | 128-bit, remote | active message             | active message        |
//!
//! The surprising top-left cell is real: Chapel's network atomics are not
//! coherent with processor atomics, so with `CHPL_NETWORK_ATOMICS` enabled
//! *every* atomic — even a local one — must go through the NIC, which the
//! paper measured as up to an order of magnitude slower.
//!
//! This module is internal plumbing: callers reach it exclusively through
//! [`crate::engine::CommEngine`] (the routing tables here are what the
//! in-process [`crate::engine::SimEngine`] backend consults).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::ctx;
use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;
use crate::telemetry::{OpClass, Span};
use crate::vtime;

/// Which execution path an atomic operation should take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicPath {
    /// Perform the operation directly with a CPU atomic instruction.
    CpuLocal,
    /// Perform the operation directly; the latency of the (one-sided,
    /// NIC-executed) RDMA atomic has already been charged.
    Nic,
    /// The operation must be shipped to the owner locale as an active
    /// message (use [`RuntimeCore::on`]); costs are charged by the AM layer
    /// and the handler body should call [`charge_handler_atomic`] /
    /// [`charge_handler_dcas`].
    ActiveMessage,
}

/// Route and charge a 64-bit atomic operation targeting memory owned by
/// `owner`. Returns the path the caller must take.
pub fn route_atomic_u64(core: &RuntimeCore, owner: LocaleId) -> AtomicPath {
    let here = ctx::here();
    let net = &core.config.network;
    if net.network_atomics {
        // All 64-bit atomics go through the NIC, local or not.
        let stats = &core.locale(here).stats;
        let t_issue = vtime::now();
        stats.rdma_atomics.fetch_add(1, Ordering::Relaxed);
        vtime::charge(net.nic_atomic_ns);
        // Fault injection on the one-sided path (remote targets only:
        // delay and drop model wire faults). A dropped RDMA request is
        // retransmitted by the NIC transport after a timeout; transport
        // sequence numbers make the retry exactly-once, so — unlike the
        // AM path — this is safe for *any* operation class. The memory
        // effect is applied by the caller exactly once, after routing.
        inject_one_sided_faults(core, owner, net.nic_atomic_ns);
        // The full span charged to this op: the NIC atomic itself plus
        // any injected delays and retransmit penalties.
        stats.record(OpClass::RdmaAtomic, vtime::now() - t_issue);
        AtomicPath::Nic
    } else if owner == here {
        let locale = core.locale(here);
        locale.stats.cpu_atomics.fetch_add(1, Ordering::Relaxed);
        vtime::charge_sampled(&locale.stats, OpClass::CpuAtomic, net.cpu_atomic_ns);
        AtomicPath::CpuLocal
    } else {
        AtomicPath::ActiveMessage
    }
}

/// Inject one-sided wire faults (delay + drop/retransmit) against a request
/// toward `owner`, where each retransmit re-pays `reissue_ns` on top of the
/// backoff penalty. Used by the NIC atomic path and the versioned-read GET
/// path; transport sequence numbers make retransmits exactly-once, so this
/// is safe for any operation class. No-op when `owner` is local or no fault
/// plan is installed.
fn inject_one_sided_faults(core: &RuntimeCore, owner: LocaleId, reissue_ns: u64) {
    let here = ctx::here();
    let Some(fs) = core.faults() else {
        return;
    };
    if owner == here {
        return;
    }
    let stats = &core.locale(here).stats;
    if let Some(extra) = fs.inject_delay() {
        stats.injected_delays.fetch_add(1, Ordering::Relaxed);
        vtime::charge(extra);
    }
    let mut attempt = 0;
    while attempt < fs.max_attempts() {
        let Some(decision) = fs.inject_drop_indexed() else {
            break;
        };
        stats.injected_drops.fetch_add(1, Ordering::Relaxed);
        let before = vtime::now();
        let penalty = fs.retry_penalty_ns(attempt);
        vtime::charge(penalty + reissue_ns);
        stats.retries.fetch_add(1, Ordering::Relaxed);
        stats.record(OpClass::Retry, penalty);
        // One retry span per dropped request, tagged with the fault
        // decision index that dropped it.
        let (trace_id, span_id, parent) = core.span_ids(here);
        core.emit_span(|| Span {
            class: OpClass::Retry,
            src: here,
            dest: owner,
            issue_vtime: before,
            arrive_vtime: before + penalty,
            start_vtime: before + penalty,
            end_vtime: before + penalty + reissue_ns,
            tag: decision,
            trace: trace_id,
            span: span_id,
            parent,
        });
        attempt += 1;
    }
    if attempt >= fs.max_attempts() {
        stats.gave_up.fetch_add(1, Ordering::Relaxed);
    }
}

/// Route and charge a 128-bit (double-word CAS) atomic operation targeting
/// memory owned by `owner`. RDMA atomics max out at 64 bits, so the remote
/// case is always an active message (paper §II-A).
pub fn route_atomic_u128(core: &RuntimeCore, owner: LocaleId) -> AtomicPath {
    let here = ctx::here();
    if owner == here {
        charge_handler_dcas(core);
        AtomicPath::CpuLocal
    } else {
        AtomicPath::ActiveMessage
    }
}

/// Charge the CPU cost of a 64-bit atomic performed *inside* an AM handler
/// (the remote-execution fallback's actual memory operation).
pub fn charge_handler_atomic(core: &RuntimeCore) {
    let locale = core.locale(ctx::here());
    locale.stats.cpu_atomics.fetch_add(1, Ordering::Relaxed);
    vtime::charge_sampled(
        &locale.stats,
        OpClass::CpuAtomic,
        core.config.network.cpu_atomic_ns,
    );
}

/// Charge the CPU cost of a 128-bit DCAS (locally or inside an AM handler).
pub fn charge_handler_dcas(core: &RuntimeCore) {
    let locale = core.locale(ctx::here());
    locale.stats.cpu_dcas.fetch_add(1, Ordering::Relaxed);
    vtime::charge_sampled(
        &locale.stats,
        OpClass::CpuDcas,
        core.config.network.cpu_dcas_ns,
    );
}

/// Charge the per-item dispatch cost of one operation executing inside a
/// *combined* active-message handler (see [`crate::engine::combine`]). The
/// wire and the fixed `am_handler_ns` dispatch are charged once per combined
/// batch by the AM layer; this is the marginal cost of each extra rider. The
/// operation's own body (e.g. [`charge_handler_atomic`]) is charged
/// separately by the rider itself.
pub fn charge_combine_item(core: &RuntimeCore) {
    vtime::charge(core.config.network.combine_item_ns);
}

fn rma_cost(core: &RuntimeCore, bytes: usize) -> u64 {
    let net = &core.config.network;
    net.rma_ns + (bytes as u64 * net.rma_ns_per_kib) / 1024
}

/// Charge a one-sided GET of `bytes` from `owner`'s memory. No cost or
/// count when the data is local.
pub fn charge_get(core: &RuntimeCore, owner: LocaleId, bytes: usize) {
    let here = ctx::here();
    if owner == here {
        return;
    }
    let stats = &core.locale(here).stats;
    stats.gets.fetch_add(1, Ordering::Relaxed);
    stats.bytes_got.fetch_add(bytes as u64, Ordering::Relaxed);
    vtime::charge_sampled(stats, OpClass::Get, rma_cost(core, bytes));
}

/// Charge a one-sided PUT of `bytes` into `owner`'s memory. No cost or
/// count when the target is local.
pub fn charge_put(core: &RuntimeCore, owner: LocaleId, bytes: usize) {
    let here = ctx::here();
    if owner == here {
        return;
    }
    let stats = &core.locale(here).stats;
    stats.puts.fetch_add(1, Ordering::Relaxed);
    stats.bytes_put.fetch_add(bytes as u64, Ordering::Relaxed);
    vtime::charge_sampled(stats, OpClass::Put, rma_cost(core, bytes));
}

/// Bytes moved by one optimistic versioned-read attempt: the 16-byte
/// payload plus the 8-byte sequence word (the validating re-read of the
/// sequence rides the same GET — one cache line on the wire).
const VREAD_BYTES: usize = 24;

/// Planted-bug hook for the torn-read oracle (see `chaos` / the atomics
/// proptests): when set, [`vread_u128`] returns the composed payload
/// *without* sequence validation — exactly the bug the seqlock protocol
/// exists to prevent — and widens the torn window with a scheduler yield so
/// the checker reliably observes mixed halves. Never enabled in production
/// paths; process-wide, so tests using it must not run runtimes
/// concurrently with unrelated vread traffic.
static VREAD_SKIP_VALIDATE: AtomicBool = AtomicBool::new(false);

/// Enable or disable the planted validation-skip bug (see
/// [`VREAD_SKIP_VALIDATE`]). Test-only; returns the previous value.
pub fn debug_vread_skip_validate(on: bool) -> bool {
    VREAD_SKIP_VALIDATE.swap(on, Ordering::SeqCst)
}

/// Optimistic versioned (seqlock) read of a 128-bit cell owned by `owner`.
///
/// Each attempt loads the sequence word, composes the payload from **two**
/// separate loads of the cell (low half first, high half second — modeling
/// that one-sided GETs cannot read 128 bits atomically, which is the whole
/// reason the protocol validates), then re-loads the sequence. The attempt
/// succeeds when the sequence was even and unchanged; a torn window bumps
/// `vread_retries` and retries. After `vread_max_tries` failed attempts the
/// read escalates (`vread_fallbacks`) and returns `None` — the caller must
/// fall back to the DCAS slow path, which is also the path writers still
/// take (writers bump the sequence to odd before and even after their
/// DCAS, so they remain the linearization point).
///
/// Cost model: each attempt is a one-sided GET of [`VREAD_BYTES`]
/// (`rma_ns` + bandwidth term) when remote — the same wire class the
/// [`crate::engine::Batcher`] flush payloads ride — or a single
/// `cpu_atomic_ns` cache-line load when local. Remote attempts are
/// drop/delay-eligible like any idempotent one-sided request
/// ([`inject_one_sided_faults`]). A validated read records the
/// [`OpClass::VersionedRead`] histogram and emits a `versioned_read` span;
/// fallbacks record nothing here (the DCAS slow path keeps its existing
/// handler-class accounting).
pub fn vread_u128(
    core: &RuntimeCore,
    owner: LocaleId,
    seq: &AtomicU64,
    load: &dyn Fn() -> u128,
) -> Option<u128> {
    let here = ctx::here();
    let net = &core.config.network;
    let stats = &core.locale(here).stats;
    let t_issue = vtime::now();
    let max_tries = core.config.vread_max_tries.max(1);
    let skip_validate = VREAD_SKIP_VALIDATE.load(Ordering::Relaxed);
    for attempt in 0..max_tries {
        // Charge the attempt: one cache-line GET remotely, one cache-line
        // load locally. Retried (torn) attempts pay again — the optimistic
        // read is only a win while contention is low.
        if owner == here {
            vtime::charge(net.cpu_atomic_ns);
        } else {
            stats.gets.fetch_add(1, Ordering::Relaxed);
            stats
                .bytes_got
                .fetch_add(VREAD_BYTES as u64, Ordering::Relaxed);
            vtime::charge_sampled(stats, OpClass::Get, rma_cost(core, VREAD_BYTES));
            inject_one_sided_faults(core, owner, rma_cost(core, VREAD_BYTES));
        }
        let s1 = seq.load(Ordering::SeqCst);
        let lo = load() as u64;
        if skip_validate {
            // Planted bug: widen the window between the two half-loads so
            // a concurrent writer's DCAS lands between them and the
            // composed payload is genuinely mixed.
            std::thread::yield_now();
        }
        let hi = (load() >> 64) as u64;
        let payload = ((hi as u128) << 64) | lo as u128;
        let valid = if skip_validate {
            true // the bug: accept without re-validating the sequence
        } else {
            let s2 = seq.load(Ordering::SeqCst);
            s1 & 1 == 0 && s1 == s2
        };
        if valid {
            stats.vread_fast.fetch_add(1, Ordering::Relaxed);
            let end = vtime::now();
            stats.record(OpClass::VersionedRead, end - t_issue);
            let (trace_id, span_id, parent) = core.span_ids(here);
            core.emit_span(|| Span {
                class: OpClass::VersionedRead,
                src: here,
                dest: owner,
                issue_vtime: t_issue,
                arrive_vtime: end,
                start_vtime: end,
                end_vtime: end,
                tag: u64::from(attempt) + 1,
                trace: trace_id,
                span: span_id,
                parent,
            });
            return Some(payload);
        }
        stats.vread_retries.fetch_add(1, Ordering::Relaxed);
    }
    stats.vread_fallbacks.fetch_add(1, Ordering::Relaxed);
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;

    #[test]
    fn network_atomics_route_everything_to_nic() {
        let rt = Runtime::cluster(2); // network_atomics = true
        rt.run(|| {
            assert_eq!(route_atomic_u64(&rt, 0), AtomicPath::Nic, "local → NIC");
            assert_eq!(route_atomic_u64(&rt, 1), AtomicPath::Nic, "remote → NIC");
            let s = rt.total_comm();
            assert_eq!(s.rdma_atomics, 2);
            assert_eq!(s.cpu_atomics, 0);
        });
    }

    #[test]
    fn no_network_atomics_splits_local_and_remote() {
        let rt = Runtime::new(RuntimeConfig::cluster(2).without_network_atomics());
        rt.run(|| {
            assert_eq!(route_atomic_u64(&rt, 0), AtomicPath::CpuLocal);
            assert_eq!(route_atomic_u64(&rt, 1), AtomicPath::ActiveMessage);
            let s = rt.total_comm();
            assert_eq!(s.cpu_atomics, 1);
            assert_eq!(s.rdma_atomics, 0);
        });
    }

    #[test]
    fn dcas_never_uses_nic() {
        let rt = Runtime::cluster(2); // network atomics on
        rt.run(|| {
            assert_eq!(route_atomic_u128(&rt, 0), AtomicPath::CpuLocal);
            assert_eq!(route_atomic_u128(&rt, 1), AtomicPath::ActiveMessage);
            let s = rt.total_comm();
            assert_eq!(s.rdma_atomics, 0);
            assert_eq!(s.cpu_dcas, 1);
        });
    }

    #[test]
    fn nic_atomic_charges_latency() {
        let rt = Runtime::cluster(1);
        let ((), span) = rt.run_measured(|| {
            route_atomic_u64(&rt, 0);
        });
        assert_eq!(span, rt.config.network.nic_atomic_ns);
    }

    #[test]
    fn local_get_put_are_free() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            charge_get(&rt, 0, 1024);
            charge_put(&rt, 0, 1024);
            let s = rt.total_comm();
            assert_eq!(s.gets + s.puts, 0);
        });
    }

    #[test]
    fn remote_get_put_charge_and_count() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            charge_get(&rt, 1, 2048);
            charge_put(&rt, 1, 100);
            let s = rt.total_comm();
            assert_eq!(s.gets, 1);
            assert_eq!(s.puts, 1);
            assert_eq!(s.bytes_got, 2048);
            assert_eq!(s.bytes_put, 100);
        });
    }

    #[test]
    fn rma_cost_includes_bandwidth_term() {
        let rt = Runtime::cluster(2);
        let net = rt.config.network.clone();
        let ((), span) = rt.run_measured(|| {
            charge_get(&rt, 1, 4096);
        });
        assert_eq!(span, net.rma_ns + 4096 * net.rma_ns_per_kib / 1024);
    }

    #[test]
    fn put_val_writes_through_pointer() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let b = Box::into_raw(Box::new(0u64));
            let p = crate::globalptr::GlobalPtr::from_raw_parts(1, b);
            unsafe { crate::engine::put_val(&rt, p, 55) };
            assert_eq!(unsafe { *b }, 55);
            assert_eq!(rt.total_comm().puts, 1);
            unsafe { drop(Box::from_raw(b)) };
        });
    }

    #[test]
    fn get_val_reads_through_pointer() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let b = Box::into_raw(Box::new(123u64));
            let p = crate::globalptr::GlobalPtr::from_raw_parts(1, b);
            let v = unsafe { crate::engine::get_val(&rt, p) };
            assert_eq!(v, 123);
            assert_eq!(rt.total_comm().gets, 1);
            unsafe { drop(Box::from_raw(b)) };
        });
    }
}
