//! Cross-locale reductions — Chapel's `with (&& reduce safeToReclaim)`
//! and friends (Listing 4 uses an `&&` reduction over the token scan).
//!
//! [`reduce_locales`] runs one task per locale, evaluates a contribution
//! there, and folds the results with an associative operator, merging
//! virtual time like any `coforall`. Boolean short-circuit helpers
//! ([`all_locales`], [`any_locales`]) additionally publish an early-exit
//! flag so remaining locales can skip their scan — mirroring the `break`
//! in Listing 4's scan loop.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::globalptr::LocaleId;
use crate::runtime::RuntimeCore;

/// Fold `contrib(locale)` across all locales with the associative,
/// commutative operator `op`. Returns `None` for a runtime with zero
/// locales (impossible by construction, so in practice always `Some`).
pub fn reduce_locales<T, C, O>(core: &RuntimeCore, contrib: C, op: O) -> Option<T>
where
    T: Send,
    C: Fn(LocaleId) -> T + Send + Sync,
    O: Fn(T, T) -> T + Send + Sync,
{
    let acc: Mutex<Option<T>> = Mutex::new(None);
    core.coforall_locales(|l| {
        let v = contrib(l);
        let mut guard = acc.lock();
        let cur = guard.take();
        *guard = Some(match cur {
            None => v,
            Some(a) => op(a, v),
        });
    });
    acc.into_inner()
}

/// Sum a numeric contribution over all locales.
pub fn sum_locales<C>(core: &RuntimeCore, contrib: C) -> u64
where
    C: Fn(LocaleId) -> u64 + Send + Sync,
{
    reduce_locales(core, contrib, |a, b| a + b).unwrap_or(0)
}

/// Minimum over locales.
pub fn min_locales<C>(core: &RuntimeCore, contrib: C) -> u64
where
    C: Fn(LocaleId) -> u64 + Send + Sync,
{
    reduce_locales(core, contrib, std::cmp::min).unwrap_or(u64::MAX)
}

/// Maximum over locales.
pub fn max_locales<C>(core: &RuntimeCore, contrib: C) -> u64
where
    C: Fn(LocaleId) -> u64 + Send + Sync,
{
    reduce_locales(core, contrib, std::cmp::max).unwrap_or(0)
}

/// `&&` reduction with early exit: the predicate receives a `cancelled`
/// flag it may poll to cut its local work short once some locale has
/// already voted `false` (the Listing 4 scan pattern).
pub fn all_locales<P>(core: &RuntimeCore, pred: P) -> bool
where
    P: Fn(LocaleId, &AtomicBool) -> bool + Send + Sync,
{
    let failed = AtomicBool::new(false);
    core.coforall_locales(|l| {
        if failed.load(Ordering::Relaxed) {
            return;
        }
        if !pred(l, &failed) {
            failed.store(true, Ordering::Relaxed);
        }
    });
    !failed.load(Ordering::Relaxed)
}

/// `||` reduction with early exit.
pub fn any_locales<P>(core: &RuntimeCore, pred: P) -> bool
where
    P: Fn(LocaleId, &AtomicBool) -> bool + Send + Sync,
{
    let found = AtomicBool::new(false);
    core.coforall_locales(|l| {
        if found.load(Ordering::Relaxed) {
            return;
        }
        if pred(l, &found) {
            found.store(true, Ordering::Relaxed);
        }
    });
    found.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuntimeConfig;
    use crate::runtime::Runtime;
    use std::sync::atomic::AtomicUsize;

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn sum_over_locales() {
        let rt = zrt(4);
        rt.run(|| {
            assert_eq!(sum_locales(&rt, |l| l as u64), 6);
        });
    }

    #[test]
    fn min_max_over_locales() {
        let rt = zrt(5);
        rt.run(|| {
            assert_eq!(min_locales(&rt, |l| 100 - l as u64), 96);
            assert_eq!(max_locales(&rt, |l| 100 - l as u64), 100);
        });
    }

    #[test]
    fn generic_reduce_with_custom_type() {
        let rt = zrt(3);
        rt.run(|| {
            let concat = reduce_locales(
                &rt,
                |l| vec![l],
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            )
            .unwrap();
            let mut sorted = concat.clone();
            sorted.sort();
            assert_eq!(sorted, vec![0, 1, 2]);
        });
    }

    #[test]
    fn all_true_when_every_locale_agrees() {
        let rt = zrt(4);
        rt.run(|| {
            assert!(all_locales(&rt, |_, _| true));
            assert!(!all_locales(&rt, |l, _| l != 2));
        });
    }

    #[test]
    fn any_detects_single_true() {
        let rt = zrt(4);
        rt.run(|| {
            assert!(any_locales(&rt, |l, _| l == 3));
            assert!(!any_locales(&rt, |_, _| false));
        });
    }

    #[test]
    fn contributions_run_on_their_locale() {
        let rt = zrt(4);
        rt.run(|| {
            let visited = AtomicUsize::new(0);
            let ok = all_locales(&rt, |l, _| {
                visited.fetch_add(1, Ordering::Relaxed);
                crate::ctx::here() == l
            });
            assert!(ok);
            assert_eq!(visited.load(Ordering::Relaxed), 4);
        });
    }

    #[test]
    fn single_locale_reduce() {
        let rt = zrt(1);
        rt.run(|| {
            assert_eq!(sum_locales(&rt, |_| 7), 7);
            assert!(all_locales(&rt, |_, _| true));
        });
    }
}
