//! Integration tests pinning the virtual-time *merge semantics* the
//! simulator's doc comment promises (see `pgas_sim::vtime`):
//!
//! * a saturated progress thread queues handlers — an AM arriving while the
//!   single server slot is busy starts at `max(arrival, slot free)`, not at
//!   its arrival time;
//! * a `coforall` join advances the parent clock to the **max** of the
//!   child end times, never their sum.
//!
//! Both are asserted with exact nanosecond expectations derived from the
//! Aries-class defaults, so any drift in the queueing or join discipline
//! fails loudly. A third test checks the telemetry span stamped from the
//! same vtime points agrees with the round-trip arithmetic.

use std::sync::Arc;

use pgas_sim::telemetry::{OpClass, RingSink};
use pgas_sim::{vtime, Runtime, RuntimeConfig};

/// Wire and handler costs from `NetworkConfig::default()` — asserted here
/// so the exact expectations below can't silently drift from the model.
fn costs(rt: &Runtime) -> (u64, u64) {
    let net = &rt.config.network;
    (net.am_wire_ns, net.am_handler_ns)
}

#[test]
fn saturated_progress_thread_queues_handlers() {
    // One progress thread per locale (the default): the second AM must
    // wait for the first handler's slot, which stays busy until the first
    // reply has cleared the wire.
    let rt = Runtime::new(RuntimeConfig::cluster(2));
    let (wire, handler) = costs(&rt);
    let ((), span) = rt.run_measured(|| {
        // Both AMs are issued at t=0 from the same task; the async one is
        // in flight while the blocking one queues behind it.
        let c = rt.on_async(1, || {});
        rt.on(1, || {});
        c.wait();
    });
    // AM1: issue 0 → arrive `wire` → handle until `wire + handler`; its
    // slot is busy until the reply clears at `wire + handler + wire`.
    // AM2: arrives at `wire` but starts only when the slot frees, ends a
    // handler later, and its reply lands one more wire after that:
    //   span = 3·wire + 2·handler
    // If the queue discipline ever started AM2 at its arrival time, the
    // span would be 2·wire + handler + handler = wire less than this.
    assert_eq!(
        span,
        3 * wire + 2 * handler,
        "second AM must queue behind the busy slot (wire={wire}, handler={handler})"
    );
}

#[test]
fn unsaturated_ams_do_not_queue() {
    // Control for the test above: one AM at a time round-trips in
    // 2·wire + handler exactly — no queueing charge appears when the slot
    // is free.
    let rt = Runtime::new(RuntimeConfig::cluster(2));
    let (wire, handler) = costs(&rt);
    let ((), span) = rt.run_measured(|| {
        rt.on(1, || {});
    });
    assert_eq!(span, 2 * wire + handler);
}

#[test]
fn coforall_join_advances_parent_to_max_of_children() {
    // Children charge different amounts; the join must merge with `max`,
    // not `sum`. The remote child also pays spawn + return wire.
    let rt = Runtime::new(RuntimeConfig::cluster(2));
    let (wire, _) = costs(&rt);
    let ((), span) = rt.run_measured(|| {
        rt.coforall_locales(|l| {
            vtime::charge((l as u64 + 1) * 1000);
        });
    });
    // Child on locale 0 runs locally: ends at 1000. Child on locale 1 is
    // a remote spawn: wire + 2000 + wire. Parent = max of the two.
    let expect = 1000u64.max(wire + 2000 + wire);
    assert_eq!(
        span, expect,
        "coforall join must be max-of-children, not sum (wire={wire})"
    );
    // A sum-merge would exceed the max by at least the local child's time.
    assert!(span < 1000 + wire + 2000 + wire);
}

#[test]
fn am_round_trip_span_matches_vtime_protocol() {
    // The telemetry span for one uncontended AM must be stamped from the
    // same vtime points the clock arithmetic uses.
    let rt = Runtime::new(RuntimeConfig::cluster(2));
    let (wire, handler) = costs(&rt);
    let ring = Arc::new(RingSink::new(16));
    assert!(rt.set_telemetry_sink(ring.clone()));
    rt.run_measured(|| {
        rt.on(1, || {});
    });
    // The span is emitted by the progress thread after the reply unblocks
    // the sender; dropping the runtime joins those threads, so every span
    // for a handled AM is in the ring before we look.
    drop(rt);
    let spans = ring.take();
    let s = spans
        .iter()
        .find(|s| s.class == OpClass::AmRoundTrip)
        .expect("one AM round trip span");
    assert_eq!(s.src, 0);
    assert_eq!(s.dest, 1);
    assert_eq!(s.arrive_vtime - s.issue_vtime, wire, "outbound wire");
    assert_eq!(s.start_vtime, s.arrive_vtime, "no queueing when idle");
    assert_eq!(
        s.end_vtime - s.start_vtime,
        handler + wire,
        "handler plus reply wire"
    );
    assert_eq!(s.end_vtime - s.issue_vtime, 2 * wire + handler);
}
