//! `LocalEpochManager` — the shared-memory-optimized variant (§II-C).
//!
//! Functionally an `EpochManager` for a single locale: it has no global
//! epoch object, performs no cross-locale scans, and does not consider
//! remote objects, which removes every communication from the reclamation
//! path. Use it for structures that never leave one locale.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use pgas_sim::engine;
use pgas_sim::faults::invariants::ReclaimObserver;
use pgas_sim::{ctx, Erased, GlobalPtr, RuntimeHandle};

use crate::limbo::{LimboList, NodePool};
use crate::math::{limbo_index, next_epoch, reclaim_epoch, EPOCHS};
use crate::stats::{ReclaimSnapshot, ReclaimStats};
use crate::token::{TokenRegistry, TokenSlot, QUIESCENT};

/// Epoch-based reclamation for a single locale.
pub struct LocalEpochManager {
    rt: RuntimeHandle,
    epoch: AtomicU64,
    is_setting_epoch: AtomicU64,
    limbo: [LimboList; EPOCHS as usize],
    pool: NodePool,
    tokens: TokenRegistry,
    stats: ReclaimStats,
    observer: OnceLock<Arc<dyn ReclaimObserver>>,
    home: pgas_sim::LocaleId,
}

/// RAII registration handle; unregisters (and unpins, if needed) on drop.
pub struct LocalToken<'a> {
    mgr: &'a LocalEpochManager,
    slot: &'a TokenSlot,
}

#[inline]
fn charge_local_atomic() {
    ctx::with_core(|core, here| {
        let _ = engine::remote_atomic_u64(core, here);
    });
}

impl LocalEpochManager {
    /// Create a manager homed on the current locale. Epochs start at 1.
    pub fn new() -> LocalEpochManager {
        LocalEpochManager {
            rt: ctx::current_runtime(),
            epoch: AtomicU64::new(1),
            is_setting_epoch: AtomicU64::new(0),
            limbo: [LimboList::new(), LimboList::new(), LimboList::new()],
            pool: NodePool::new(),
            tokens: TokenRegistry::new(),
            stats: ReclaimStats::default(),
            observer: OnceLock::new(),
            home: pgas_sim::here(),
        }
    }

    /// Install a [`ReclaimObserver`] that sees every defer, advance, and
    /// reclaim. Used by the chaos harness's `InvariantChecker`.
    ///
    /// # Panics
    /// If an observer is already installed.
    pub fn set_observer(&self, obs: Arc<dyn ReclaimObserver>) {
        if self.observer.set(obs).is_err() {
            panic!("LocalEpochManager observer already installed");
        }
    }

    /// The runtime this manager was created under.
    pub fn runtime(&self) -> RuntimeHandle {
        self.rt.clone()
    }

    /// Register the calling task, returning a token to pin.
    pub fn register(&self) -> LocalToken<'_> {
        LocalToken {
            mgr: self,
            slot: self.tokens.register(),
        }
    }

    /// The manager's current epoch (1, 2, or 3).
    pub fn current_epoch(&self) -> u64 {
        charge_local_atomic();
        self.epoch.load(Ordering::SeqCst)
    }

    /// Attempt to advance the epoch and reclaim the two-advances-old limbo
    /// list. Non-blocking: returns `false` immediately if another task is
    /// already reclaiming or if some token is pinned in an older epoch.
    pub fn try_reclaim(&self) -> bool {
        charge_local_atomic();
        if self.is_setting_epoch.swap(1, Ordering::SeqCst) != 0 {
            ReclaimStats::bump(&self.stats.lost_local_election);
            return false;
        }
        let this_epoch = self.current_epoch();
        let safe = self.tokens.iter().all(|t| {
            let e = t.epoch();
            e == QUIESCENT || e == this_epoch
        });
        let advanced = if safe {
            let new_epoch = next_epoch(this_epoch);
            charge_local_atomic();
            self.epoch.store(new_epoch, Ordering::SeqCst);
            ReclaimStats::bump(&self.stats.advances);
            if let Some(obs) = self.observer.get() {
                obs.on_advance(new_epoch);
            }
            let freed = self.drain_list(reclaim_epoch(new_epoch), new_epoch, false);
            ReclaimStats::add(&self.stats.objects_reclaimed, freed);
            true
        } else {
            ReclaimStats::bump(&self.stats.unsafe_scans);
            false
        };
        charge_local_atomic();
        self.is_setting_epoch.store(0, Ordering::SeqCst);
        advanced
    }

    /// Reclaim *everything* across all epochs, unconditionally. Only call
    /// when no other task is using the manager.
    pub fn clear(&self) {
        let current = self.epoch.load(Ordering::SeqCst);
        for e in 1..=EPOCHS {
            let freed = self.drain_list(e, current, true);
            ReclaimStats::add(&self.stats.objects_reclaimed, freed);
        }
    }

    fn drain_list(&self, epoch: u64, current_epoch: u64, during_clear: bool) -> u64 {
        let observer = self.observer.get();
        ctx::with_core(|core, _| {
            self.limbo[limbo_index(epoch)]
                .take()
                .drain_into(&self.pool, |e| {
                    debug_assert_eq!(
                        e.owner(),
                        self.home,
                        "LocalEpochManager does not handle remote objects"
                    );
                    if let Some(obs) = observer {
                        obs.on_reclaim(e.addr(), epoch, current_epoch, during_clear);
                    }
                    // SAFETY: EBR guarantees no task still holds a
                    // reference (two epoch advances since logical removal,
                    // or the caller guaranteed quiescence for clear()).
                    unsafe { e.run_drop(core) };
                }) as u64
        })
    }

    /// Reclamation counters.
    pub fn stats(&self) -> ReclaimSnapshot {
        self.stats.snapshot()
    }

    /// Number of token slots ever created.
    pub fn tokens_allocated(&self) -> u64 {
        self.tokens.allocated_count()
    }
}

impl Default for LocalEpochManager {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for LocalEpochManager {
    fn drop(&mut self) {
        if pgas_sim::try_here().is_some() {
            self.clear();
        }
        // Outside a runtime context the limbo lists debug-assert emptiness
        // themselves.
    }
}

impl<'a> LocalToken<'a> {
    /// Enter the current epoch. Idempotent re-pinning updates to the
    /// manager's current epoch.
    pub fn pin(&self) {
        let e = self.mgr.current_epoch();
        self.slot.set_epoch(e);
    }

    /// Leave the epoch (become quiescent).
    pub fn unpin(&self) {
        self.slot.set_epoch(QUIESCENT);
    }

    /// True while pinned.
    pub fn is_pinned(&self) -> bool {
        self.slot.epoch_relaxed() != QUIESCENT
    }

    /// The epoch this token is pinned in (0 when unpinned).
    pub fn pinned_epoch(&self) -> u64 {
        self.slot.epoch_relaxed()
    }

    /// Defer deletion of a (logically removed) local object until no task
    /// can still hold a reference. Wait-free.
    ///
    /// # Panics
    /// In debug builds, if the token is not pinned or the object is remote.
    pub fn defer_delete<T: Send>(&self, ptr: GlobalPtr<T>) {
        let e = self.slot.epoch_relaxed();
        debug_assert_ne!(e, QUIESCENT, "defer_delete requires a pinned token");
        ReclaimStats::bump(&self.mgr.stats.objects_deferred);
        if let Some(obs) = self.mgr.observer.get() {
            obs.on_defer(ptr.addr(), e);
        }
        self.mgr.limbo[limbo_index(e)].push_node(self.mgr.pool.get(), Erased::new(ptr));
    }

    /// Forward to [`LocalEpochManager::try_reclaim`] (the paper lets either
    /// the token or the manager drive reclamation).
    pub fn try_reclaim(&self) -> bool {
        self.mgr.try_reclaim()
    }
}

impl Drop for LocalToken<'_> {
    fn drop(&mut self) {
        // Mirrors the managed-class wrapper in the paper: going out of
        // scope unpins and unregisters automatically.
        self.mgr.tokens.unregister(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{alloc_local, Runtime, RuntimeConfig};
    use std::sync::atomic::AtomicUsize;

    fn zrt() -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(1))
    }

    #[test]
    fn pin_unpin_tracks_epoch() {
        let rt = zrt();
        rt.run(|| {
            let em = LocalEpochManager::new();
            let tok = em.register();
            assert!(!tok.is_pinned());
            tok.pin();
            assert!(tok.is_pinned());
            assert_eq!(tok.pinned_epoch(), em.current_epoch());
            tok.unpin();
            assert!(!tok.is_pinned());
        });
    }

    #[test]
    fn reclaim_needs_two_advances() {
        let rt = zrt();
        rt.run(|| {
            let em = LocalEpochManager::new();
            let tok = em.register();
            tok.pin();
            tok.defer_delete(alloc_local(&rt, 42u64));
            tok.unpin();
            assert_eq!(rt.live_objects(), 1);
            assert!(em.try_reclaim(), "first advance");
            assert_eq!(rt.live_objects(), 1, "object survives one advance");
            assert!(em.try_reclaim(), "second advance");
            assert_eq!(
                rt.live_objects(),
                0,
                "deferred in epoch e, freed on the advance to e+2"
            );
            assert_eq!(em.stats().objects_reclaimed, 1);
        });
    }

    #[test]
    fn pinned_token_in_old_epoch_blocks_advance() {
        let rt = zrt();
        rt.run(|| {
            let em = LocalEpochManager::new();
            let blocker = em.register();
            blocker.pin(); // pinned in epoch 1
            assert!(em.try_reclaim(), "pinned in current epoch is fine");
            assert_eq!(em.current_epoch(), 2);
            // blocker still pinned in epoch 1 → no further advance
            assert!(!em.try_reclaim());
            assert_eq!(em.current_epoch(), 2);
            assert_eq!(em.stats().unsafe_scans, 1);
            blocker.unpin();
            assert!(em.try_reclaim());
            assert_eq!(em.current_epoch(), 3);
        });
    }

    #[test]
    fn clear_reclaims_everything_at_once() {
        let rt = zrt();
        rt.run(|| {
            let em = LocalEpochManager::new();
            {
                let tok = em.register();
                tok.pin();
                for i in 0..10 {
                    tok.defer_delete(alloc_local(&rt, i as u64));
                }
                tok.unpin();
            }
            assert_eq!(rt.live_objects(), 10);
            em.clear();
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn drop_clears_pending_objects() {
        let rt = zrt();
        rt.run(|| {
            {
                let em = LocalEpochManager::new();
                let tok = em.register();
                tok.pin();
                tok.defer_delete(alloc_local(&rt, 7u64));
                tok.unpin();
                drop(tok);
            } // em dropped here
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn token_drop_unregisters_and_recycles() {
        let rt = zrt();
        rt.run(|| {
            let em = LocalEpochManager::new();
            {
                let tok = em.register();
                tok.pin();
            } // dropped while pinned: must not wedge the manager
            assert!(em.try_reclaim(), "dropped token reads quiescent");
            {
                let _tok2 = em.register();
            }
            assert_eq!(em.tokens_allocated(), 1, "slot recycled");
        });
    }

    #[test]
    fn use_after_free_canary_under_concurrency() {
        // Readers hold pins while traversing a shared cell; a writer
        // replaces and defers the old object. EBR must prevent any reader
        // from observing a freed object.
        let rt = zrt();
        rt.run(|| {
            let em = LocalEpochManager::new();
            struct Canary {
                value: u64,
                alive: AtomicU64,
            }
            impl Drop for Canary {
                fn drop(&mut self) {
                    self.alive.store(0xDEAD, Ordering::SeqCst);
                }
            }
            let first = alloc_local(
                &rt,
                Canary {
                    value: 0,
                    alive: AtomicU64::new(1),
                },
            );
            let cell = pgas_atomics::AtomicObject::new(first);
            rt.coforall_tasks(4, |t| {
                let tok = em.register();
                if t == 0 {
                    // writer: replace the object 100 times
                    for i in 1..=100u64 {
                        tok.pin();
                        let next = alloc_local(
                            &rt,
                            Canary {
                                value: i,
                                alive: AtomicU64::new(1),
                            },
                        );
                        let old = cell.exchange(next);
                        tok.defer_delete(old);
                        tok.unpin();
                        tok.try_reclaim();
                    }
                } else {
                    // readers
                    for _ in 0..200 {
                        tok.pin();
                        let p = cell.read();
                        let c = unsafe { p.deref() };
                        assert_eq!(
                            c.alive.load(Ordering::SeqCst),
                            1,
                            "reader observed a freed object (value {})",
                            c.value
                        );
                        tok.unpin();
                    }
                }
            });
            // teardown: delete the final object too
            {
                let tok = em.register();
                tok.pin();
                tok.defer_delete(cell.read());
                tok.unpin();
            }
            em.clear();
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn concurrent_try_reclaim_elects_one_winner() {
        let rt = zrt();
        rt.run(|| {
            let em = LocalEpochManager::new();
            let wins = AtomicUsize::new(0);
            rt.coforall_tasks(8, |_| {
                if em.try_reclaim() {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
            let s = em.stats();
            assert_eq!(s.advances as usize, wins.load(Ordering::Relaxed));
            assert!(
                s.advances + s.lost_local_election + s.unsafe_scans == 8,
                "every call either advanced, lost the election, or found \
                 an unsafe scan: {s}"
            );
        });
    }
}
