//! Hazard pointers — the baseline reclamation scheme the paper weighs
//! EBR against.
//!
//! §I cites Michael's hazard pointers [7] (and the comparative study of
//! Hart et al. [9]) as the shared-memory alternatives to epoch-based
//! reclamation. The trade is classic: hazard pointers bound unreclaimed
//! garbage per thread and tolerate stalled readers, but every pointer
//! *acquisition* costs a store + fence + validating re-read, whereas EBR
//! amortizes protection over a whole pinned region. The paper chooses
//! EBR for exactly that amortization; this module provides an honest
//! hazard-pointer implementation so the choice is measurable
//! (`harness -- ablations`, A6).
//!
//! Scope: shared-memory (single locale), like `LocalEpochManager` — the
//! fair baseline for the comparison. Each registered participant owns a
//! fixed number of hazard slots and a private retire list; when the list
//! exceeds a threshold, a scan frees every retired object no slot
//! protects.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use pgas_sim::engine;
use pgas_sim::{ctx, Erased, GlobalPtr};

/// Hazard slots per participant (enough for Treiber/MS-queue-style
/// algorithms that need at most two protected pointers at once).
pub const SLOTS_PER_PARTICIPANT: usize = 2;

/// Retired objects a participant accumulates before scanning.
pub const SCAN_THRESHOLD: usize = 64;

struct Participant {
    hazards: [AtomicUsize; SLOTS_PER_PARTICIPANT],
    /// Link in the (append-only) participant list.
    next: AtomicUsize,
    /// 1 while registered; free participants can be re-used.
    active: AtomicU64,
    retired: parking_lot::Mutex<Vec<Erased>>,
}

impl Participant {
    fn new_boxed() -> Box<Participant> {
        Box::new(Participant {
            hazards: [AtomicUsize::new(0), AtomicUsize::new(0)],
            next: AtomicUsize::new(0),
            active: AtomicU64::new(1),
            retired: parking_lot::Mutex::new(Vec::new()),
        })
    }
}

/// A hazard-pointer domain: participant registry + reclamation.
pub struct HazardDomain {
    head: AtomicUsize,
    participants: AtomicU64,
    reclaimed: AtomicU64,
    scans: AtomicU64,
}

impl HazardDomain {
    /// An empty domain homed on the current locale.
    pub fn new() -> HazardDomain {
        let _ = pgas_sim::here(); // require context, like the managers
        HazardDomain {
            head: AtomicUsize::new(0),
            participants: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
            scans: AtomicU64::new(0),
        }
    }

    /// Register the calling task.
    pub fn register(&self) -> HazardToken<'_> {
        // Reuse an inactive participant if any.
        let mut cur = self.head.load(Ordering::Acquire);
        while cur != 0 {
            let p = unsafe { &*(cur as *const Participant) };
            if p.active
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return HazardToken {
                    domain: self,
                    participant: p,
                    _not_sync: std::marker::PhantomData,
                };
            }
            cur = p.next.load(Ordering::Acquire);
        }
        // Allocate and append.
        let p = Box::into_raw(Participant::new_boxed());
        self.participants.fetch_add(1, Ordering::Relaxed);
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            unsafe { &*p }.next.store(head, Ordering::Relaxed);
            match self.head.compare_exchange_weak(
                head,
                p as usize,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        HazardToken {
            domain: self,
            participant: unsafe { &*p },
            _not_sync: std::marker::PhantomData,
        }
    }

    fn iter(&self) -> impl Iterator<Item = &Participant> {
        let mut cur = self.head.load(Ordering::Acquire);
        std::iter::from_fn(move || {
            if cur == 0 {
                return None;
            }
            let p = unsafe { &*(cur as *const Participant) };
            cur = p.next.load(Ordering::Acquire);
            Some(p)
        })
    }

    /// All addresses currently protected by any participant.
    fn collect_hazards(&self) -> Vec<usize> {
        let mut hazards = Vec::new();
        for p in self.iter() {
            for h in &p.hazards {
                // Each hazard read is a charged atomic (the scan cost).
                ctx::with_core(|core, here| {
                    let _ = engine::remote_atomic_u64(core, here);
                });
                let a = h.load(Ordering::SeqCst);
                if a != 0 {
                    hazards.push(a);
                }
            }
        }
        hazards.sort_unstable();
        hazards
    }

    fn scan(&self, retired: &mut Vec<Erased>) {
        self.scans.fetch_add(1, Ordering::Relaxed);
        let hazards = self.collect_hazards();
        ctx::with_core(|core, _| {
            retired.retain(|e| {
                if hazards.binary_search(&e.addr()).is_ok() {
                    true // still protected
                } else {
                    // SAFETY: retired objects are logically removed and no
                    // hazard covers this address.
                    unsafe { std::ptr::read(e).run_drop(core) };
                    self.reclaimed.fetch_add(1, Ordering::Relaxed);
                    false
                }
            });
        });
    }

    /// Free every retired object no hazard protects, across all
    /// participants. Call in quiescence for a full teardown.
    pub fn reclaim_all(&self) {
        for p in self.iter() {
            let mut retired = p.retired.lock();
            self.scan(&mut retired);
        }
    }

    /// Objects freed so far.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }

    /// Scans performed so far.
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Participants ever created.
    pub fn participants(&self) -> u64 {
        self.participants.load(Ordering::Relaxed)
    }
}

impl Default for HazardDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for HazardDomain {
    fn drop(&mut self) {
        if pgas_sim::try_here().is_some() {
            self.reclaim_all();
        }
        // Free participant records.
        let mut cur = *self.head.get_mut();
        while cur != 0 {
            let p = unsafe { Box::from_raw(cur as *mut Participant) };
            debug_assert!(
                p.retired.lock().is_empty(),
                "hazard domain dropped with protected retired objects"
            );
            cur = p.next.load(Ordering::Relaxed);
        }
    }
}

/// A registered participant's handle. `!Sync`: the hazard slots belong
/// to one task at a time (sharing a token across tasks would race the
/// slot stores).
pub struct HazardToken<'a> {
    domain: &'a HazardDomain,
    participant: &'a Participant,
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl HazardToken<'_> {
    /// Protect the pointer currently in `cell` (slot `slot`), looping
    /// until the protection is validated — the acquire-side cost hazard
    /// pointers pay on *every* pointer load, where EBR pays one pin per
    /// region.
    pub fn protect<T>(&self, slot: usize, cell: &pgas_atomics::AtomicObject<T>) -> GlobalPtr<T> {
        assert!(slot < SLOTS_PER_PARTICIPANT);
        loop {
            let p = cell.read();
            // The hazard publication is a sequentially-consistent store
            // (fenced); charge it like any other atomic.
            ctx::with_core(|core, here| {
                let _ = engine::remote_atomic_u64(core, here);
            });
            self.participant.hazards[slot].store(p.addr(), Ordering::SeqCst);
            // Validating re-read: the pointer must still be current.
            let again = cell.read();
            if again == p {
                return p;
            }
        }
    }

    /// Release one hazard slot.
    pub fn release(&self, slot: usize) {
        assert!(slot < SLOTS_PER_PARTICIPANT);
        ctx::with_core(|core, here| {
            let _ = engine::remote_atomic_u64(core, here);
        });
        self.participant.hazards[slot].store(0, Ordering::SeqCst);
    }

    /// Retire a logically-removed object; it is freed by a later scan
    /// once no hazard covers it.
    pub fn retire<T: Send>(&self, ptr: GlobalPtr<T>) {
        debug_assert_eq!(
            ptr.locale(),
            pgas_sim::here(),
            "the shared-memory hazard domain handles local objects only"
        );
        let mut retired = self.participant.retired.lock();
        retired.push(Erased::new(ptr));
        if retired.len() >= SCAN_THRESHOLD {
            self.domain.scan(&mut retired);
        }
    }
}

impl Drop for HazardToken<'_> {
    fn drop(&mut self) {
        for slot in 0..SLOTS_PER_PARTICIPANT {
            self.participant.hazards[slot].store(0, Ordering::SeqCst);
        }
        self.participant.active.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_atomics::AtomicObject;
    use pgas_sim::{alloc_local, Runtime, RuntimeConfig};

    fn zrt() -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(1))
    }

    #[test]
    fn retire_and_reclaim_roundtrip() {
        let rt = zrt();
        rt.run(|| {
            let dom = HazardDomain::new();
            let tok = dom.register();
            for i in 0..10 {
                tok.retire(alloc_local(&pgas_sim::current_runtime(), i as u64));
            }
            drop(tok);
            dom.reclaim_all();
            assert_eq!(dom.reclaimed(), 10);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn protected_object_survives_scans() {
        let rt = zrt();
        rt.run(|| {
            let rt_h = pgas_sim::current_runtime();
            let dom = HazardDomain::new();
            let reader = dom.register();
            let writer = dom.register();

            let obj = alloc_local(&rt_h, 42u64);
            let cell = AtomicObject::new(obj);

            let protected = reader.protect(0, &cell);
            assert_eq!(protected, obj);

            // Writer swaps it out and retires it.
            let fresh = alloc_local(&rt_h, 43u64);
            let old = cell.exchange(fresh);
            writer.retire(old);
            dom.reclaim_all();
            assert_eq!(dom.reclaimed(), 0, "hazard blocks reclamation");
            // Still valid to read:
            assert_eq!(unsafe { *protected.deref() }, 42);

            reader.release(0);
            dom.reclaim_all();
            assert_eq!(dom.reclaimed(), 1);

            // teardown
            writer.retire(cell.read());
            drop(reader);
            drop(writer);
            dom.reclaim_all();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn protect_validates_against_racing_swap() {
        let rt = zrt();
        rt.run(|| {
            let rt_h = pgas_sim::current_runtime();
            let dom = HazardDomain::new();
            let objs: Vec<_> = (0..4).map(|i| alloc_local(&rt_h, i as u64)).collect();
            let cell = AtomicObject::new(objs[0]);
            rt.coforall_tasks(3, |t| {
                let tok = dom.register();
                if t == 0 {
                    for round in 0..200 {
                        let old = cell.exchange(objs[(round + 1) % 4]);
                        let _ = old; // objects rotate; none retired here
                    }
                } else {
                    for _ in 0..300 {
                        let p = tok.protect(0, &cell);
                        // The protected pointer must be one of the rotation
                        // set and safe to read.
                        let v = unsafe { *p.deref() };
                        assert!(v < 4);
                        tok.release(0);
                    }
                }
            });
            for o in objs {
                unsafe { pgas_sim::free(&rt_h, o) };
            }
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn scan_threshold_triggers_automatic_reclaim() {
        let rt = zrt();
        rt.run(|| {
            let dom = HazardDomain::new();
            let tok = dom.register();
            for i in 0..(SCAN_THRESHOLD * 2) {
                tok.retire(alloc_local(&pgas_sim::current_runtime(), i as u64));
            }
            assert!(dom.scans() >= 1, "threshold forced a scan");
            assert!(dom.reclaimed() >= SCAN_THRESHOLD as u64);
            drop(tok);
            dom.reclaim_all();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn participants_are_recycled() {
        let rt = zrt();
        rt.run(|| {
            let dom = HazardDomain::new();
            {
                let _t = dom.register();
            }
            {
                let _t = dom.register();
            }
            assert_eq!(dom.participants(), 1, "slot reused after drop");
        });
    }

    #[test]
    fn treiber_stack_on_hazard_pointers() {
        // The same Listing-1 stack, reclaimed with hazard pointers instead
        // of epochs — the cross-check that both schemes protect correctly.
        // Every popped value is read *through the protected pointer* and
        // summed, so a premature reclamation would corrupt the total.
        struct Node {
            value: u64,
            next: GlobalPtr<Node>,
        }
        use std::sync::atomic::{AtomicU64, Ordering};
        let rt = zrt();
        rt.run(|| {
            let rt_h = pgas_sim::current_runtime();
            let dom = HazardDomain::new();
            let head: AtomicObject<Node> = AtomicObject::null();
            let popped_sum = AtomicU64::new(0);

            rt.coforall_tasks(4, |t| {
                let tok = dom.register();
                for i in 0..100u64 {
                    // push
                    let node = alloc_local(
                        &rt_h,
                        Node {
                            value: t as u64 * 1000 + i,
                            next: GlobalPtr::null(),
                        },
                    );
                    loop {
                        let cur = head.read();
                        unsafe { &mut *node.as_ptr() }.next = cur;
                        if head.compare_and_swap(cur, node) {
                            break;
                        }
                    }
                    // pop
                    loop {
                        let top = tok.protect(0, &head);
                        if top.is_null() {
                            break;
                        }
                        let next = unsafe { top.deref() }.next;
                        if head.compare_and_swap(top, next) {
                            // Read the payload while the hazard still
                            // covers it, then hand it to the domain.
                            let v = unsafe { top.deref() }.value;
                            popped_sum.fetch_add(v, Ordering::Relaxed);
                            tok.release(0);
                            tok.retire(top);
                            break;
                        }
                    }
                }
                tok.release(0);
            });
            // Drain whatever survived the concurrent phase.
            {
                let tok = dom.register();
                loop {
                    let top = tok.protect(0, &head);
                    if top.is_null() {
                        break;
                    }
                    let next = unsafe { top.deref() }.next;
                    if head.compare_and_swap(top, next) {
                        let v = unsafe { top.deref() }.value;
                        popped_sum.fetch_add(v, Ordering::Relaxed);
                        tok.release(0);
                        tok.retire(top);
                    }
                }
                tok.release(0);
            }
            // Conservation: Σ (t·1000 + i) over t∈0..4, i∈0..100.
            let expected: u64 = (0..4u64)
                .flat_map(|t| (0..100u64).map(move |i| t * 1000 + i))
                .sum();
            assert_eq!(popped_sum.load(Ordering::Relaxed), expected);
            dom.reclaim_all();
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
