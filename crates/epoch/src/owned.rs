//! Owned & borrowed atomics — the paper's second future-work item.
//!
//! §II-A restricts `AtomicObject` to `unmanaged` instances: Chapel's
//! `owned` type is "statically managed and cannot be tracked without
//! significant rework", and `borrowed` needs compiler cooperation. The
//! paper plans both as future work. In Rust, the epoch machinery makes
//! both expressible *safely*:
//!
//! * [`OwnedAtomic<T>`] is an atomic cell that **owns** its referent:
//!   `store`/`swap` retire the previous value through the `EpochManager`
//!   automatically, so no caller ever frees by hand (the `owned`
//!   analog);
//! * [`OwnedAtomic::load`] returns a reference whose lifetime is bound to
//!   a [`PinGuard`] — the type system proves the borrow cannot outlive
//!   the pin, which is exactly the guarantee a `borrowed` class instance
//!   would need (the `borrowed` analog). While the guard lives, the
//!   epoch cannot advance past the referent's retirement, so the
//!   reference stays valid even if a concurrent `store` replaces it.

use pgas_atomics::AtomicObject;
use pgas_sim::{alloc_local, ctx, GlobalPtr};

use crate::manager::{PinGuard, Token};

/// What actually lives on the heap: the value, plus a flag recording
/// whether ownership was moved out (in which case the deferred drop must
/// not run `T`'s destructor).
struct ValueCell<T> {
    value: std::mem::ManuallyDrop<T>,
    moved_out: std::sync::atomic::AtomicBool,
}

impl<T> Drop for ValueCell<T> {
    fn drop(&mut self) {
        if !self.moved_out.load(std::sync::atomic::Ordering::Acquire) {
            // SAFETY: ownership was never moved out; drop the value once.
            unsafe { std::mem::ManuallyDrop::drop(&mut self.value) };
        }
    }
}

/// An atomic, epoch-owned value: a non-blocking `RwLock<T>` replacement
/// where writers never block readers and readers never block anyone.
///
/// Values are heap-wrapped in a [`ValueCell`] so that [`Self::take`] can
/// move `T` out by value while concurrent pinned readers still hold the
/// (deferred, not yet freed) allocation.
pub struct OwnedAtomic<T: Send> {
    cell: AtomicObject<ValueCell<T>>,
}

unsafe impl<T: Send> Send for OwnedAtomic<T> {}
unsafe impl<T: Send + Sync> Sync for OwnedAtomic<T> {}

impl<T: Send> OwnedAtomic<T> {
    /// An empty cell.
    pub fn empty() -> OwnedAtomic<T> {
        OwnedAtomic {
            cell: AtomicObject::null(),
        }
    }

    /// A cell holding `value`.
    pub fn new(value: T) -> OwnedAtomic<T> {
        let cell = OwnedAtomic::empty();
        cell.cell.write(Self::alloc(value));
        cell
    }

    fn alloc(value: T) -> GlobalPtr<ValueCell<T>> {
        alloc_local(
            &ctx::current_runtime(),
            ValueCell {
                value: std::mem::ManuallyDrop::new(value),
                moved_out: std::sync::atomic::AtomicBool::new(false),
            },
        )
    }

    /// Borrow the current value under a pin guard (the `borrowed`
    /// analog). `None` when empty.
    pub fn load<'g>(&self, guard: &'g PinGuard<'_, '_>) -> Option<&'g T> {
        let _ = guard;
        let ptr = self.cell.read();
        if ptr.is_null() {
            None
        } else {
            // SAFETY: pinned via `guard`; replaced cells are deferred, not
            // freed, so the allocation outlives the guard.
            Some(unsafe { &(*ptr.as_ptr()).value })
        }
    }

    /// Replace the value; the previous one is retired through the epoch
    /// manager and dropped when safe (the `owned` analog).
    pub fn store(&self, tok: &Token<'_>, value: T) {
        let fresh = Self::alloc(value);
        tok.pin();
        let old = self.cell.exchange(fresh);
        if !old.is_null() {
            tok.defer_delete(old);
        }
        tok.unpin();
    }

    /// Swap values, returning the old one *by value*. Readers that loaded
    /// the old value before the swap keep a valid borrow until their
    /// guards drop (the allocation is deferred; only ownership of `T`
    /// moves).
    ///
    /// Note: a by-value return requires `T: Clone` — concurrent pinned
    /// readers may still be borrowing the original, so the value cannot
    /// be moved out from under them.
    pub fn swap(&self, tok: &Token<'_>, value: T) -> Option<T>
    where
        T: Clone,
    {
        let fresh = Self::alloc(value);
        tok.pin();
        let old = self.cell.exchange(fresh);
        let out = if old.is_null() {
            None
        } else {
            // SAFETY: pinned; the allocation is live until deferred +
            // reclaimed.
            let val = unsafe { (*(*old.as_ptr()).value).clone() };
            tok.defer_delete(old);
            Some(val)
        };
        tok.unpin();
        out
    }

    /// Empty the cell. If the cell held a value, it is retired through
    /// the manager (dropped when safe); returns whether a value was
    /// present.
    pub fn clear(&self, tok: &Token<'_>) -> bool {
        tok.pin();
        let old = self.cell.exchange(GlobalPtr::null());
        let had = !old.is_null();
        if had {
            tok.defer_delete(old);
        }
        tok.unpin();
        had
    }

    /// Take the value out by move. The allocation is still deferred (for
    /// concurrent readers), but its eventual drop will skip `T`'s
    /// destructor — ownership has moved to the caller.
    pub fn take(&self, tok: &Token<'_>) -> Option<T> {
        tok.pin();
        let old = self.cell.exchange(GlobalPtr::null());
        let out = if old.is_null() {
            None
        } else {
            // SAFETY: we won the exchange, so we are the unique mover;
            // mark the cell before reading so the deferred drop skips T.
            let cell = unsafe { &*old.as_ptr() };
            cell.moved_out
                .store(true, std::sync::atomic::Ordering::Release);
            let val = unsafe { std::ptr::read(&*cell.value) };
            tok.defer_delete(old);
            Some(val)
        };
        tok.unpin();
        out
    }
}

impl<T: Send> Drop for OwnedAtomic<T> {
    fn drop(&mut self) {
        // Quiescent teardown: free the final value directly (it was never
        // logically removed, so it is not in any limbo list). Outside a
        // runtime context there is no way to reach the heap accounting;
        // that only happens if the cell outlives the run block, which the
        // live-object accounting in tests would flag.
        if pgas_sim::try_here().is_some() {
            let ptr = self.cell.read_untracked();
            if !ptr.is_null() {
                // SAFETY: exclusive access (&mut self) during drop.
                unsafe { pgas_sim::free(&ctx::current_runtime(), ptr) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::EpochManager;
    use pgas_sim::{Runtime, RuntimeConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn store_load_roundtrip() {
        let rt = zrt(1);
        rt.run(|| {
            let em = EpochManager::new();
            let tok = em.register();
            let cell: OwnedAtomic<String> = OwnedAtomic::empty();
            {
                let guard = tok.pin_guard();
                assert!(cell.load(&guard).is_none());
            }
            cell.store(&tok, "hello".to_string());
            {
                let guard = tok.pin_guard();
                assert_eq!(cell.load(&guard).map(|s| s.as_str()), Some("hello"));
            }
            cell.store(&tok, "world".to_string());
            {
                let guard = tok.pin_guard();
                assert_eq!(cell.load(&guard).map(|s| s.as_str()), Some("world"));
            }
            drop(tok);
            em.clear();
        });
        assert_eq!(rt.live_objects(), 0, "replaced values reclaimed");
    }

    #[test]
    fn take_moves_ownership_without_double_drop() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Probe(#[allow(dead_code)] u64);
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let rt = zrt(1);
        rt.run(|| {
            let em = EpochManager::new();
            let tok = em.register();
            let cell = OwnedAtomic::new(Probe(7));
            let taken = cell.take(&tok).expect("value present");
            assert!(cell.take(&tok).is_none(), "second take sees empty");
            drop(taken); // drop #1 — the only one
            drop(tok);
            em.clear(); // reclaims the shell; must NOT drop Probe again
            assert_eq!(DROPS.load(Ordering::SeqCst), 1);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn swap_returns_previous_clone() {
        let rt = zrt(1);
        rt.run(|| {
            let em = EpochManager::new();
            let tok = em.register();
            let cell = OwnedAtomic::new(1u64);
            assert_eq!(cell.swap(&tok, 2), Some(1));
            assert_eq!(cell.swap(&tok, 3), Some(2));
            let guard = tok.pin_guard();
            assert_eq!(cell.load(&guard).copied(), Some(3));
            drop(guard);
            drop(tok);
            em.clear();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn clear_retires_value() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Probe(#[allow(dead_code)] u64);
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let rt = zrt(1);
        rt.run(|| {
            let em = EpochManager::new();
            let tok = em.register();
            let cell = OwnedAtomic::new(Probe(1));
            assert!(cell.clear(&tok));
            assert!(!cell.clear(&tok));
            drop(tok);
            em.clear();
            assert_eq!(DROPS.load(Ordering::SeqCst), 1, "dropped exactly once");
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn borrow_survives_concurrent_replacement() {
        let rt = zrt(1);
        rt.run(|| {
            let em = EpochManager::new();
            let writer_tok = em.register();
            let reader_tok = em.register();
            let cell = OwnedAtomic::new(vec![1u64, 2, 3]);

            let guard = reader_tok.pin_guard();
            let borrowed = cell.load(&guard).expect("present");
            // A writer replaces the value and tries hard to reclaim it.
            cell.store(&writer_tok, vec![9]);
            for _ in 0..5 {
                em.try_reclaim();
            }
            // The borrow is still valid: the guard's pin blocks the epoch.
            assert_eq!(borrowed, &[1, 2, 3]);
            drop(guard);
            // Now reclamation can proceed.
            for _ in 0..3 {
                em.try_reclaim();
            }
            drop(reader_tok);
            drop(writer_tok);
            em.clear();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let rt = zrt(1);
        rt.run(|| {
            let em = EpochManager::new();
            let cell = OwnedAtomic::new(0u64);
            rt.coforall_tasks(4, |t| {
                let tok = em.register();
                if t == 0 {
                    for i in 1..=200 {
                        cell.store(&tok, i);
                        if i % 20 == 0 {
                            tok.try_reclaim();
                        }
                    }
                } else {
                    let mut last = 0;
                    for _ in 0..400 {
                        let guard = tok.pin_guard();
                        let v = *cell.load(&guard).unwrap();
                        assert!(v >= last, "values move forward: {v} < {last}");
                        last = v;
                    }
                }
            });
            {
                let tok = em.register();
                cell.clear(&tok);
            }
            em.clear();
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
