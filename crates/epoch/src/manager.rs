//! `EpochManager` — distributed epoch-based reclamation (§II-B/C).
//!
//! The manager is *privatized*: each locale holds its own instance (limbo
//! lists, token registry, epoch cache, election flag), and every access a
//! task makes goes to the instance local to that task — zero communication
//! on the hot path, which is what keeps Fig. 7's read-only workload flat
//! across locales. A single `GlobalEpoch` object (homed on locale 0) is
//! the point of consensus.
//!
//! `try_reclaim` follows Listing 4:
//!
//! 1. Win the **local** election flag (first-come-first-serve; losers
//!    return immediately — "swiftly, without much wasted effort").
//! 2. Win the **global** election flag (losers clear the local flag and
//!    return).
//! 3. Scan every locale's allocated tokens; the advance is safe only if
//!    every token is quiescent or pinned in the current global epoch.
//! 4. If safe: bump the global epoch (`(e % 3) + 1`), then on every locale
//!    update the cached epoch, detach the two-advances-old limbo list, and
//!    **scatter** its objects by owning locale so each destination receives
//!    one bulk-free active message instead of one RPC per object.
//! 5. Clear both flags.
//!
//! `clear` reclaims every limbo list unconditionally and must only be
//! called in quiescence (single-owner teardown), as in the paper.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use pgas_atomics::AtomicInt;
use pgas_sim::engine::Batcher;
use pgas_sim::faults::invariants::ReclaimObserver;
use pgas_sim::telemetry::OpClass;
use pgas_sim::{ctx, vtime, Erased, GlobalPtr, LocaleId, Privatized, RuntimeCore, RuntimeHandle};

use crate::limbo::{LimboList, NodePool};
use crate::math::{limbo_index, next_epoch, reclaim_epoch, EPOCHS};
use crate::stats::{ReclaimSnapshot, ReclaimStats};
use crate::token::{TokenRegistry, TokenSlot, QUIESCENT};

/// The single, centralized epoch all locales agree on. Wrapped in its own
/// struct (the paper wraps it in a class instance) and homed on locale 0;
/// reads/writes from elsewhere are remote atomics.
struct GlobalEpoch {
    epoch: AtomicInt,
    is_setting_epoch: AtomicInt,
}

/// One locale's privatized instance.
struct LocaleInstance {
    /// Locale-private cache of the current epoch (reduces communication:
    /// pin/defer consult this, never the global).
    locale_epoch: AtomicInt,
    /// Local first-come-first-serve election flag.
    is_setting_epoch: AtomicInt,
    limbo: [LimboList; EPOCHS as usize],
    /// Earliest `defer_delete` virtual time still parked in each limbo
    /// slot (`u64::MAX` when empty). Drains swap it out and report the
    /// pin-to-reclaim latency to the locale's telemetry registry
    /// ([`pgas_sim::telemetry::OpClass::Reclaim`]).
    first_defer_vtime: [AtomicU64; EPOCHS as usize],
    pool: NodePool,
    tokens: TokenRegistry,
}

// SAFETY: every field is itself thread-safe; instances are shared across
// the locale's tasks by design.
unsafe impl Send for LocaleInstance {}
unsafe impl Sync for LocaleInstance {}

/// Distributed epoch-based memory reclamation.
pub struct EpochManager {
    rt: RuntimeHandle,
    global: GlobalEpoch,
    instances: Privatized<LocaleInstance>,
    stats: ReclaimStats,
    /// When false, reclamation frees remote objects one active message per
    /// object instead of batching by locale — the ablation knob for the
    /// scatter-list optimization (A1 in DESIGN.md).
    use_scatter: AtomicBool,
    /// Optional reclamation observer (see
    /// [`pgas_sim::faults::invariants`]): chaos harnesses install an
    /// invariant checker here to audit defer/advance/reclaim ordering.
    /// `OnceLock` keeps the no-observer fast path to one atomic load.
    observer: OnceLock<Arc<dyn ReclaimObserver>>,
}

/// RAII registration handle for one task (the paper's token, wrapped in a
/// managed class so scope exit unregisters it).
pub struct Token<'a> {
    mgr: &'a EpochManager,
    slot: &'a TokenSlot,
    locale: LocaleId,
}

impl EpochManager {
    /// Create a manager privatized over every locale of the current
    /// runtime. Must be called inside [`pgas_sim::RuntimeCore::run`] (or
    /// any task).
    pub fn new() -> EpochManager {
        let rt = ctx::current_runtime();
        let global = GlobalEpoch {
            epoch: AtomicInt::new_on(0, 1),
            is_setting_epoch: AtomicInt::new_on(0, 0),
        };
        let instances = Privatized::new(&rt, |l| LocaleInstance {
            locale_epoch: AtomicInt::new_on(l, 1),
            is_setting_epoch: AtomicInt::new_on(l, 0),
            limbo: [LimboList::new(), LimboList::new(), LimboList::new()],
            first_defer_vtime: [
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
                AtomicU64::new(u64::MAX),
            ],
            pool: NodePool::new(),
            tokens: TokenRegistry::new(),
        });
        EpochManager {
            rt,
            global,
            instances,
            stats: ReclaimStats::default(),
            use_scatter: AtomicBool::new(true),
            observer: OnceLock::new(),
        }
    }

    /// Disable the scatter-list bulk free (remote objects are then freed
    /// one active message each). For the ablation benchmark.
    pub fn set_scatter(&self, enabled: bool) {
        self.use_scatter.store(enabled, Ordering::Relaxed);
    }

    /// Install a reclamation observer (at most once per manager); chaos
    /// harnesses use this to audit defer/advance/reclaim ordering with an
    /// [`pgas_sim::faults::invariants::InvariantChecker`].
    ///
    /// # Panics
    /// If an observer is already installed.
    pub fn set_observer(&self, obs: Arc<dyn ReclaimObserver>) {
        if self.observer.set(obs).is_err() {
            panic!("EpochManager already has a reclamation observer");
        }
    }

    /// Register the calling task with its locale's privatized instance.
    pub fn register(&self) -> Token<'_> {
        let locale = pgas_sim::here();
        Token {
            mgr: self,
            slot: self.instances.get().tokens.register(),
            locale,
        }
    }

    /// The global epoch (a remote read unless on locale 0).
    pub fn global_epoch(&self) -> u64 {
        self.global.epoch.read()
    }

    /// The calling locale's cached epoch.
    pub fn local_epoch(&self) -> u64 {
        self.instances.get().locale_epoch.read()
    }

    /// Listing 4: attempt a global epoch advance + reclamation. Returns
    /// `true` if this call advanced the epoch. Non-blocking: callers that
    /// lose either election return immediately.
    pub fn try_reclaim(&self) -> bool {
        let inst = self.instances.get();
        // Local election: one candidate per locale.
        if inst.is_setting_epoch.test_and_set() {
            ReclaimStats::bump(&self.stats.lost_local_election);
            return false;
        }
        // Global election: one candidate across the system.
        if self.global.is_setting_epoch.test_and_set() {
            inst.is_setting_epoch.clear();
            ReclaimStats::bump(&self.stats.lost_global_election);
            return false;
        }

        let this_epoch = self.global.epoch.read();
        // Is it safe to reclaim across all locales? (`&&` reduction)
        let safe = std::sync::atomic::AtomicBool::new(true);
        self.rt.coforall_locales(|_| {
            let _this = self.instances.get();
            for tok in _this.tokens.iter() {
                let e = tok.epoch();
                if e != QUIESCENT && e != this_epoch {
                    safe.store(false, Ordering::Relaxed);
                    break;
                }
            }
        });

        let advanced = if safe.load(Ordering::Relaxed) {
            let new_epoch = next_epoch(this_epoch);
            self.global.epoch.write(new_epoch);
            ReclaimStats::bump(&self.stats.advances);
            if let Some(obs) = self.observer.get() {
                obs.on_advance(new_epoch);
            }
            let use_scatter = self.use_scatter.load(Ordering::Relaxed);
            self.rt.coforall_locales(|_| {
                let _this = self.instances.get();
                // Update each locale's cached epoch.
                _this.locale_epoch.write(new_epoch);
                let freed = ctx::with_core(|core, _| {
                    reclaim_list(
                        core,
                        _this,
                        reclaim_epoch(new_epoch),
                        use_scatter,
                        self.observer.get(),
                        new_epoch,
                        false,
                    )
                });
                ReclaimStats::add(&self.stats.objects_reclaimed, freed);
            });
            true
        } else {
            ReclaimStats::bump(&self.stats.unsafe_scans);
            false
        };

        self.global.is_setting_epoch.clear();
        inst.is_setting_epoch.clear();
        advanced
    }

    /// Ablation variant of [`Self::try_reclaim`] (A3 in DESIGN.md): what
    /// reclamation costs *without* the first-come-first-serve election.
    /// Every caller performs the full cross-locale token scan before
    /// checking whether anyone else is already advancing — the redundant
    /// communication the election flags exist to stem. Memory safety is
    /// preserved (the actual advance still goes through the flags); only
    /// the wasted scan work is modeled.
    pub fn try_reclaim_unelected(&self) -> bool {
        let this_epoch = self.global.epoch.read();
        let safe = std::sync::atomic::AtomicBool::new(true);
        self.rt.coforall_locales(|_| {
            let _this = self.instances.get();
            for tok in _this.tokens.iter() {
                let e = tok.epoch();
                if e != QUIESCENT && e != this_epoch {
                    safe.store(false, Ordering::Relaxed);
                    break;
                }
            }
        });
        if !safe.load(Ordering::Relaxed) {
            ReclaimStats::bump(&self.stats.unsafe_scans);
            return false;
        }
        self.try_reclaim()
    }

    /// Reclaim all objects across all epochs on all locales,
    /// unconditionally. Only call when no other task is interacting with
    /// the manager (e.g. teardown after a `forall` has joined).
    pub fn clear(&self) {
        let use_scatter = self.use_scatter.load(Ordering::Relaxed);
        self.rt.coforall_locales(|_| {
            let _this = self.instances.get();
            let mut freed = 0;
            for e in 1..=EPOCHS {
                freed += ctx::with_core(|core, _| {
                    // `during_clear = true`: the caller guarantees
                    // quiescence, so age rules are suspended for the
                    // observer.
                    reclaim_list(core, _this, e, use_scatter, self.observer.get(), e, true)
                });
            }
            ReclaimStats::add(&self.stats.objects_reclaimed, freed);
        });
    }

    /// TEST-ONLY: deliberately reclaim the *current* epoch's limbo list on
    /// the calling locale — a use-after-free bug by construction (the list
    /// is zero advances old, so pinned tasks may still hold references).
    /// Exists so chaos suites can prove the invariant checker detects real
    /// reclamation bugs rather than vacuously passing; never call it in
    /// real workloads.
    #[doc(hidden)]
    pub fn debug_reclaim_current_epoch_early(&self) -> u64 {
        let inst = self.instances.get();
        let e = inst.locale_epoch.read();
        let use_scatter = self.use_scatter.load(Ordering::Relaxed);
        let freed = ctx::with_core(|core, _| {
            reclaim_list(core, inst, e, use_scatter, self.observer.get(), e, false)
        });
        ReclaimStats::add(&self.stats.objects_reclaimed, freed);
        freed
    }

    /// Aggregate reclamation counters.
    pub fn stats(&self) -> ReclaimSnapshot {
        self.stats.snapshot()
    }

    /// A handle to the runtime this manager was created on.
    pub fn runtime(&self) -> RuntimeHandle {
        self.rt.clone()
    }

    /// Total token slots ever created across all locales.
    pub fn tokens_allocated(&self) -> u64 {
        self.instances
            .iter()
            .map(|(_, i)| i.tokens.allocated_count())
            .sum()
    }
}

/// Detach one locale's limbo list for `epoch`, scatter its contents by
/// owning locale, and free each group — one bulk active message per remote
/// destination (or one AM per object when `use_scatter` is off). Each
/// drained object is reported to `observer` (with the epoch whose list it
/// came from and the epoch current at reclamation) before it is freed;
/// `during_clear` marks quiescent teardown, where the observer's age rules
/// do not apply.
fn reclaim_list(
    core: &RuntimeCore,
    inst: &LocaleInstance,
    epoch: u64,
    use_scatter: bool,
    observer: Option<&Arc<dyn ReclaimObserver>>,
    current_epoch: u64,
    during_clear: bool,
) -> u64 {
    let observe = |e: &Erased| {
        if let Some(obs) = observer {
            obs.on_reclaim(e.addr(), epoch, current_epoch, during_clear);
        }
    };
    let first_defer = inst.first_defer_vtime[limbo_index(epoch)].swap(u64::MAX, Ordering::Relaxed);
    let n = if use_scatter {
        // The scatter list is a `Batcher` over erased objects: unbounded
        // per-destination buffers with one explicit flush at the end, so
        // each destination still receives exactly one bulk-free active
        // message per drained limbo list.
        let src = pgas_sim::here();
        let mut scatter = Batcher::new(core, usize::MAX, move |dest, batch: Vec<Erased>| {
            // SAFETY: the epoch protocol guarantees no task still holds
            // a reference to anything in a two-advances-old limbo list
            // (or the caller guaranteed quiescence for clear()); the
            // handler runs on `dest`, where every object in the batch
            // lives.
            unsafe { pgas_sim::free_erased_local_batch(core, batch, dest != src) };
        });
        let n = inst.limbo[limbo_index(epoch)]
            .take()
            .drain_into(&inst.pool, |e| {
                observe(&e);
                scatter.aggregate(e.owner(), e)
            });
        scatter.flush_all();
        n as u64
    } else {
        let n = inst.limbo[limbo_index(epoch)]
            .take()
            .drain_into(&inst.pool, |e| {
                observe(&e);
                // SAFETY: as above.
                unsafe { pgas_sim::free_erased(core, e) }
            });
        n as u64
    };
    let stats = &core.locale(pgas_sim::here()).stats;
    if first_defer != u64::MAX {
        stats.record(OpClass::Reclaim, vtime::now().saturating_sub(first_defer));
    }
    stats.record(OpClass::LimboDepth, n);
    n
}

impl Default for EpochManager {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for EpochManager {
    fn drop(&mut self) {
        if pgas_sim::try_here().is_some() {
            self.clear();
        } else {
            // Entered from outside any task (e.g. the manager outlived the
            // `run` block): re-enter the runtime to perform the final
            // reclamation with proper accounting.
            let rt = self.rt.clone();
            rt.run(|| self.clear());
        }
    }
}

impl<'a> Token<'a> {
    /// Enter the current (locale-cached) epoch.
    pub fn pin(&self) {
        let e = self.mgr.instances.get_for(self.locale).locale_epoch.read();
        self.slot.set_epoch(e);
    }

    /// Leave the epoch.
    pub fn unpin(&self) {
        self.slot.set_epoch(QUIESCENT);
    }

    /// True while pinned.
    pub fn is_pinned(&self) -> bool {
        self.slot.epoch_relaxed() != QUIESCENT
    }

    /// The epoch this token is pinned in (0 when unpinned).
    pub fn pinned_epoch(&self) -> u64 {
        self.slot.epoch_relaxed()
    }

    /// Defer deletion of a logically-removed object (which may live on any
    /// locale) until no task can hold a reference. Wait-free: one atomic
    /// exchange on the local limbo list.
    ///
    /// # Panics
    /// In debug builds, if the token is not pinned.
    pub fn defer_delete<T: Send>(&self, ptr: GlobalPtr<T>) {
        let e = self.slot.epoch_relaxed();
        debug_assert_ne!(e, QUIESCENT, "defer_delete requires a pinned token");
        ReclaimStats::bump(&self.mgr.stats.objects_deferred);
        if let Some(obs) = self.mgr.observer.get() {
            obs.on_defer(ptr.addr(), e);
        }
        let inst = self.mgr.instances.get_for(self.locale);
        inst.limbo[limbo_index(e)].push_node(inst.pool.get(), Erased::new(ptr));
        // Remember when this slot first became non-empty so the eventual
        // drain can report pin-to-reclaim latency (bookkeeping only —
        // charges no virtual time).
        inst.first_defer_vtime[limbo_index(e)].fetch_min(vtime::now(), Ordering::Relaxed);
    }

    /// Forward to [`EpochManager::try_reclaim`].
    pub fn try_reclaim(&self) -> bool {
        self.mgr.try_reclaim()
    }
}

/// RAII pin: created by [`Token::pin_guard`], unpins on drop. References
/// obtained from epoch-protected cells (e.g.
/// [`crate::owned::OwnedAtomic::load`]) borrow the guard, so the type
/// system enforces that no reference outlives the pin.
pub struct PinGuard<'g, 'a> {
    tok: &'g Token<'a>,
}

impl<'a> Token<'a> {
    /// Pin and return a guard that unpins when dropped.
    pub fn pin_guard(&self) -> PinGuard<'_, 'a> {
        self.pin();
        PinGuard { tok: self }
    }
}

impl Drop for PinGuard<'_, '_> {
    fn drop(&mut self) {
        self.tok.unpin();
    }
}

impl Drop for Token<'_> {
    fn drop(&mut self) {
        self.mgr
            .instances
            .get_for(self.locale)
            .tokens
            .unregister(self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{alloc_local, alloc_on, Runtime, RuntimeConfig};
    use std::sync::atomic::AtomicUsize;

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn epochs_start_at_one_everywhere() {
        let rt = zrt(3);
        rt.run(|| {
            let em = EpochManager::new();
            assert_eq!(em.global_epoch(), 1);
            rt.coforall_locales(|_| {
                assert_eq!(em.local_epoch(), 1);
            });
        });
    }

    #[test]
    fn try_reclaim_advances_global_and_all_caches() {
        let rt = zrt(3);
        rt.run(|| {
            let em = EpochManager::new();
            assert!(em.try_reclaim());
            assert_eq!(em.global_epoch(), 2);
            rt.coforall_locales(|_| {
                assert_eq!(em.local_epoch(), 2);
            });
        });
    }

    #[test]
    fn distributed_objects_reclaimed_after_two_advances() {
        let rt = zrt(4);
        rt.run(|| {
            let em = EpochManager::new();
            {
                let tok = em.register();
                tok.pin();
                for l in 0..4 {
                    tok.defer_delete(alloc_on(&rt, l, l as u64));
                }
                tok.unpin();
            }
            assert_eq!(rt.live_objects(), 4);
            em.try_reclaim();
            assert_eq!(rt.live_objects(), 4, "one advance is not enough");
            em.try_reclaim();
            assert_eq!(rt.live_objects(), 0, "freed on the advance to e+2");
        });
    }

    #[test]
    fn remote_pinned_token_blocks_global_advance() {
        let rt = zrt(2);
        rt.run(|| {
            let em = EpochManager::new();
            let pinned = std::sync::atomic::AtomicBool::new(false);
            let release = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|s| {
                // A task on locale 1 stays pinned in epoch 1.
                let em_ref = &em;
                let rt_ref = &rt;
                let pinned_ref = &pinned;
                let release_ref = &release;
                s.spawn(move || {
                    rt_ref.run(|| {
                        rt_ref.on(1, || {
                            let tok = em_ref.register();
                            tok.pin();
                            pinned_ref.store(true, Ordering::SeqCst);
                            while !release_ref.load(Ordering::SeqCst) {
                                std::thread::yield_now();
                            }
                            tok.unpin();
                        });
                    });
                });
                while !pinned.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                assert!(em.try_reclaim(), "pinned in current epoch: ok");
                assert_eq!(em.global_epoch(), 2);
                assert!(
                    !em.try_reclaim(),
                    "token on locale 1 still pinned in epoch 1"
                );
                assert_eq!(em.global_epoch(), 2);
                release.store(true, Ordering::SeqCst);
            });
            assert!(em.try_reclaim(), "after unpin the advance goes through");
        });
    }

    #[test]
    fn observer_sees_clean_defer_advance_reclaim_ordering() {
        use pgas_sim::faults::invariants::InvariantChecker;
        let rt = zrt(4);
        rt.run(|| {
            let em = EpochManager::new();
            let checker = InvariantChecker::new();
            em.set_observer(checker.clone());
            {
                let tok = em.register();
                tok.pin();
                for l in 0..4 {
                    tok.defer_delete(alloc_on(&rt, l, l as u64));
                }
                tok.unpin();
            }
            em.try_reclaim();
            em.try_reclaim();
            assert_eq!(rt.live_objects(), 0);
            assert_eq!(checker.defers(), 4);
            assert_eq!(checker.advances(), 2);
            assert_eq!(checker.reclaims(), 4);
            checker.check().expect("two-advance reclamation is legal");
        });
    }

    #[test]
    fn deliberately_early_reclamation_is_caught_by_the_checker() {
        use pgas_sim::faults::invariants::InvariantChecker;
        let rt = zrt(2);
        rt.run(|| {
            let em = EpochManager::new();
            let checker = InvariantChecker::new();
            em.set_observer(checker.clone());
            {
                let tok = em.register();
                tok.pin();
                tok.defer_delete(alloc_local(&rt, 7u64));
                tok.unpin();
            }
            // The planted bug: free the current epoch's limbo list with
            // zero advances. The objects really are freed (no task holds a
            // reference here), but the checker must flag the protocol
            // violation.
            let freed = em.debug_reclaim_current_epoch_early();
            assert_eq!(freed, 1);
            let errs = checker.check().unwrap_err();
            assert!(
                errs.iter().any(|e| e.contains("early reclamation")),
                "checker must catch the planted early free: {errs:?}"
            );
        });
    }

    #[test]
    fn clear_does_not_trip_the_observer() {
        use pgas_sim::faults::invariants::InvariantChecker;
        let rt = zrt(2);
        rt.run(|| {
            let em = EpochManager::new();
            let checker = InvariantChecker::new();
            em.set_observer(checker.clone());
            {
                let tok = em.register();
                tok.pin();
                tok.defer_delete(alloc_on(&rt, 1, 1u64));
                tok.unpin();
            }
            em.clear();
            assert_eq!(rt.live_objects(), 0);
            checker.check().expect("clear() is exempt from age rules");
        });
    }

    #[test]
    fn scatter_uses_one_bulk_am_per_remote_locale() {
        let rt = zrt(4);
        rt.run(|| {
            let em = EpochManager::new();
            {
                let tok = em.register();
                tok.pin();
                for i in 0..30 {
                    tok.defer_delete(alloc_on(&rt, (i % 4) as LocaleId, i as u64));
                }
                tok.unpin();
            }
            rt.reset_metrics();
            em.clear();
            let s = rt.total_comm();
            assert_eq!(rt.live_objects(), 0);
            assert_eq!(s.bulk_frees, 3, "one bulk AM per remote destination");
            assert_eq!(s.remote_frees, 0, "no per-object frees");
            assert_eq!(s.bulk_freed_objects, 30);
        });
    }

    #[test]
    fn scatter_disabled_pays_per_object_ams() {
        let rt = zrt(4);
        rt.run(|| {
            let em = EpochManager::new();
            em.set_scatter(false);
            {
                let tok = em.register();
                tok.pin();
                for i in 0..30 {
                    tok.defer_delete(alloc_on(&rt, (i % 4) as LocaleId, i as u64));
                }
                tok.unpin();
            }
            rt.reset_metrics();
            em.clear();
            let s = rt.total_comm();
            assert_eq!(rt.live_objects(), 0);
            assert_eq!(s.bulk_frees, 0);
            assert_eq!(
                s.remote_frees, 22,
                "30 objects, 8 local to their drain locale (i%4==0 drained \
                 on locale 0): the rest pay one AM each"
            );
        });
    }

    #[test]
    fn election_admits_one_global_winner() {
        let rt = zrt(4);
        rt.run(|| {
            let em = EpochManager::new();
            let wins = AtomicUsize::new(0);
            rt.forall_dist_tasks(
                64,
                2,
                |_, _| (),
                |_, _| {
                    if em.try_reclaim() {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                },
            );
            let s = em.stats();
            assert_eq!(s.advances as usize, wins.load(Ordering::Relaxed));
            assert_eq!(
                s.advances + s.lost_local_election + s.lost_global_election + s.unsafe_scans,
                64
            );
        });
    }

    #[test]
    fn listing5_microbenchmark_workload() {
        // The paper's Listing 5, miniaturized: distributed objects, each
        // task defers deletion of the objects it visits and periodically
        // tries to reclaim.
        let rt = zrt(4);
        rt.run(|| {
            let num_objects = 400;
            let em = EpochManager::new();
            let objs: Vec<GlobalPtr<u64>> = (0..num_objects)
                .map(|i| alloc_on(&rt, (i % 4) as LocaleId, i as u64))
                .collect();
            assert_eq!(rt.live_objects(), num_objects as i64);
            rt.forall_dist_tasks(
                num_objects,
                2,
                |_, _| (em.register(), 0u64),
                |(tok, m), i| {
                    tok.pin();
                    tok.defer_delete(objs[i]);
                    tok.unpin();
                    *m += 1;
                    if *m % 16 == 0 {
                        tok.try_reclaim();
                    }
                },
            );
            em.clear();
            assert_eq!(rt.live_objects(), 0);
            let s = em.stats();
            assert_eq!(s.objects_deferred, num_objects as u64);
            assert_eq!(s.objects_reclaimed, num_objects as u64);
        });
    }

    #[test]
    fn tokens_usable_from_every_locale() {
        let rt = zrt(4);
        rt.run(|| {
            let em = EpochManager::new();
            rt.coforall_locales(|l| {
                let tok = em.register();
                tok.pin();
                tok.defer_delete(alloc_local(&rt, l as u64));
                tok.unpin();
            });
            em.clear();
            assert_eq!(rt.live_objects(), 0);
            assert_eq!(em.tokens_allocated(), 4, "one slot per locale");
        });
    }

    #[test]
    fn manager_dropped_outside_run_still_reclaims() {
        let rt = zrt(2);
        let em = rt.run(|| {
            let em = EpochManager::new();
            let tok = em.register();
            tok.pin();
            tok.defer_delete(alloc_on(&rt, 1, 5u64));
            tok.unpin();
            drop(tok);
            em
        });
        assert_eq!(rt.live_objects(), 1);
        drop(em); // re-enters the runtime to clear
        assert_eq!(rt.live_objects(), 0);
    }
}
