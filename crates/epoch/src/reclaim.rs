//! The pluggable reclamation seam: [`Reclaimer`] and [`ReclaimGuard`].
//!
//! The paper (§I) picks epoch-based reclamation over Michael's hazard
//! pointers for amortization, but treats the choice as policy: the
//! structure layer only needs *register → guard*, *pin/unpin*,
//! *defer_delete*, and an advance/flush hook. This module extracts that
//! contract so every structure in `pgas-structures` can be generic over
//! the backend, with [`crate::EpochManager`] as the default and the
//! distributed hazard-pointer backend ([`crate::HazardReclaimer`]) as the
//! stall-tolerant alternative.
//!
//! The guard-side `protect*` methods are the price of admission for
//! hazard pointers: EBR backends keep their provided no-op/plain-read
//! defaults (so EBR code paths compile to *exactly* the reads they
//! performed before this trait existed — the exact-count communication
//! tests stay bit-for-bit), while the HP backend overrides them with the
//! publish-then-validate protocol.

use std::sync::Arc;

use pgas_atomics::{Aba, AtomicAbaObject, AtomicObject};
use pgas_sim::faults::invariants::ReclaimObserver;
use pgas_sim::{GlobalPtr, RuntimeHandle};

use crate::local_manager::{LocalEpochManager, LocalToken};
use crate::manager::{EpochManager, Token};
use crate::stats::ReclaimSnapshot;

/// A per-task registration handle for a [`Reclaimer`]: the thing that
/// pins, defers deletions, and (for hazard-pointer backends) publishes
/// protections.
///
/// The `protect*` family has provided implementations that are correct
/// for *deferral-based* backends (EBR): under a pin nothing reachable can
/// be freed, so protection degenerates to a plain read. Backends that
/// free memory while readers are active (hazard pointers) must override
/// them with publish-then-validate.
pub trait ReclaimGuard {
    /// Enter a critical section. For EBR this publishes the current
    /// epoch; for hazard pointers it is free (protection is per-pointer).
    fn pin(&self);

    /// Leave the critical section.
    fn unpin(&self);

    /// True while inside a critical section. Hazard-pointer guards are
    /// always "pinned" in this sense.
    fn is_pinned(&self) -> bool;

    /// Hand a logically-removed object to the backend for eventual
    /// (safe) deletion.
    fn defer_delete<T: Send>(&self, ptr: GlobalPtr<T>);

    /// Drive the backend's advance/scan machinery from this task.
    fn try_reclaim(&self) -> bool;

    /// Read `cell` and protect the result in `slot`, retrying internally
    /// until the protection is validated. Roots (a stack/queue head, an
    /// RCU table cell) are protected this way because the cell itself
    /// re-validates the read.
    #[inline]
    fn protect_root<T>(&self, slot: usize, cell: &AtomicObject<T>) -> GlobalPtr<T> {
        let _ = slot;
        cell.read()
    }

    /// ABA-counted variant of [`ReclaimGuard::protect_root`].
    #[inline]
    fn protect_root_aba<T>(&self, slot: usize, cell: &AtomicAbaObject<T>) -> Aba<T> {
        let _ = slot;
        cell.read_aba()
    }

    /// Publish `ptr` in `slot`, then run `revalidate` to confirm the
    /// pointer was still reachable from protected state when the hazard
    /// became visible. Returns `false` when the caller must retry its
    /// traversal. EBR backends return `true` without reading anything.
    #[inline]
    fn protect_ptr<T>(
        &self,
        slot: usize,
        ptr: GlobalPtr<T>,
        revalidate: impl FnOnce() -> bool,
    ) -> bool {
        let _ = (slot, ptr);
        let _ = &revalidate;
        true
    }

    /// Re-publish an already-protected pointer into another `slot`
    /// (no validation needed: the existing hazard keeps it live across
    /// the store). For protocols that need to park a node while the
    /// walking slots move on.
    #[inline]
    fn protect_copy<T>(&self, slot: usize, ptr: GlobalPtr<T>) {
        let _ = (slot, ptr);
    }

    /// Clear `slot`. A no-op for EBR.
    #[inline]
    fn release(&self, slot: usize) {
        let _ = slot;
    }
}

/// A reclamation backend: epoch-based (default), locale-local epochs, or
/// distributed hazard pointers. Structures hold one `R: Reclaimer` and
/// thread `R::Guard` through their operations.
pub trait Reclaimer: Send + Sync {
    /// The per-task handle type, borrowed from the backend.
    type Guard<'a>: ReclaimGuard
    where
        Self: 'a;

    /// `true` when readers must publish per-pointer protections before
    /// dereferencing (hazard pointers); `false` for deferral-only
    /// backends where a pin covers every reachable object. Lets
    /// structures compile out HP-only code on EBR instantiations.
    const NEEDS_PROTECT: bool;

    /// Number of protection slots each guard owns (0 for EBR backends).
    const PROTECT_SLOTS: usize;

    /// Construct a backend homed on the current locale. Must run inside
    /// a runtime context (`Runtime::run`).
    fn new_in_runtime() -> Self
    where
        Self: Sized;

    /// Register the calling task.
    fn register(&self) -> Self::Guard<'_>;

    /// Attempt an advance (EBR) or a full scan (HP). Returns `true` when
    /// the call advanced/freed something.
    fn try_reclaim(&self) -> bool;

    /// Reclaim everything unconditionally; callers guarantee quiescence.
    fn clear(&self);

    /// Attach a [`ReclaimObserver`] (e.g. the chaos `InvariantChecker`).
    ///
    /// # Panics
    /// If an observer is already installed.
    fn set_observer(&self, obs: Arc<dyn ReclaimObserver>);

    /// Reclamation counters. Hazard-pointer backends map scans onto
    /// `advances` and retires onto `objects_deferred`.
    fn stats(&self) -> ReclaimSnapshot;

    /// The runtime this backend was created under (used by structure
    /// `Drop` impls that may run outside a context).
    fn runtime(&self) -> RuntimeHandle;

    /// Short lowercase backend name for benchmark rows ("ebr",
    /// "local-ebr", "hp").
    fn backend_name(&self) -> &'static str;

    /// `true` when a stalled (forever-pinned) reader cannot block
    /// reclamation of unrelated objects — the property A8 measures.
    fn tolerates_stalled_readers(&self) -> bool;
}

// ---------------------------------------------------------------------
// EBR: the distributed EpochManager (the default backend everywhere).
// ---------------------------------------------------------------------

impl ReclaimGuard for Token<'_> {
    #[inline]
    fn pin(&self) {
        Token::pin(self)
    }

    #[inline]
    fn unpin(&self) {
        Token::unpin(self)
    }

    #[inline]
    fn is_pinned(&self) -> bool {
        Token::is_pinned(self)
    }

    #[inline]
    fn defer_delete<T: Send>(&self, ptr: GlobalPtr<T>) {
        Token::defer_delete(self, ptr)
    }

    #[inline]
    fn try_reclaim(&self) -> bool {
        Token::try_reclaim(self)
    }
}

impl Reclaimer for EpochManager {
    type Guard<'a> = Token<'a>;

    const NEEDS_PROTECT: bool = false;
    const PROTECT_SLOTS: usize = 0;

    fn new_in_runtime() -> Self {
        EpochManager::new()
    }

    fn register(&self) -> Token<'_> {
        EpochManager::register(self)
    }

    fn try_reclaim(&self) -> bool {
        EpochManager::try_reclaim(self)
    }

    fn clear(&self) {
        EpochManager::clear(self)
    }

    fn set_observer(&self, obs: Arc<dyn ReclaimObserver>) {
        EpochManager::set_observer(self, obs)
    }

    fn stats(&self) -> ReclaimSnapshot {
        EpochManager::stats(self)
    }

    fn runtime(&self) -> RuntimeHandle {
        EpochManager::runtime(self)
    }

    fn backend_name(&self) -> &'static str {
        "ebr"
    }

    fn tolerates_stalled_readers(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// EBR, locale-local: LocalEpochManager (single-locale structures only).
// ---------------------------------------------------------------------

impl ReclaimGuard for LocalToken<'_> {
    #[inline]
    fn pin(&self) {
        LocalToken::pin(self)
    }

    #[inline]
    fn unpin(&self) {
        LocalToken::unpin(self)
    }

    #[inline]
    fn is_pinned(&self) -> bool {
        LocalToken::is_pinned(self)
    }

    #[inline]
    fn defer_delete<T: Send>(&self, ptr: GlobalPtr<T>) {
        LocalToken::defer_delete(self, ptr)
    }

    #[inline]
    fn try_reclaim(&self) -> bool {
        LocalToken::try_reclaim(self)
    }
}

impl Reclaimer for LocalEpochManager {
    type Guard<'a> = LocalToken<'a>;

    const NEEDS_PROTECT: bool = false;
    const PROTECT_SLOTS: usize = 0;

    fn new_in_runtime() -> Self {
        LocalEpochManager::new()
    }

    fn register(&self) -> LocalToken<'_> {
        LocalEpochManager::register(self)
    }

    fn try_reclaim(&self) -> bool {
        LocalEpochManager::try_reclaim(self)
    }

    fn clear(&self) {
        LocalEpochManager::clear(self)
    }

    fn set_observer(&self, obs: Arc<dyn ReclaimObserver>) {
        LocalEpochManager::set_observer(self, obs)
    }

    fn stats(&self) -> ReclaimSnapshot {
        LocalEpochManager::stats(self)
    }

    fn runtime(&self) -> RuntimeHandle {
        LocalEpochManager::runtime(self)
    }

    fn backend_name(&self) -> &'static str {
        "local-ebr"
    }

    fn tolerates_stalled_readers(&self) -> bool {
        false
    }
}
