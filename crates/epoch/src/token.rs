//! Tokens: per-task epoch descriptors, with lock-free registration.
//!
//! §II-C: before a task may touch an epoch-protected structure it must
//! *register* and obtain a token; pinning the token enters the current
//! epoch, unpinning leaves it (epoch 0 means quiescent). Two lists are
//! kept per locale:
//!
//! * a **free list** of recycled tokens, popped on `register` and pushed on
//!   `unregister` — a Treiber stack with ABA protection;
//! * an **allocated list** of every token ever created, walked by
//!   `tryReclaim` to find the minimum epoch. Tokens are never removed from
//!   it (an unregistered token simply reads as quiescent), which is what
//!   makes the scan safe to run concurrently with registration.
//!
//! The public RAII guards ([`crate::manager::Token`],
//! [`crate::local_manager::LocalToken`]) unregister automatically on drop —
//! the paper wraps tokens in a managed class for exactly this reason, so
//! they compose with `forall ... with (var tok = manager.register())`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use pgas_atomics::LocalAtomicAbaObject;
use pgas_sim::engine;
use pgas_sim::{ctx, GlobalPtr};

/// Epoch value meaning "not in any epoch".
pub const QUIESCENT: u64 = 0;

/// One task's epoch descriptor.
pub struct TokenSlot {
    /// The epoch this task is pinned in; [`QUIESCENT`] when unpinned.
    local_epoch: AtomicU64,
    /// Link in the (append-only) allocated list.
    alloc_next: AtomicUsize,
    /// Link in the free stack (meaningful only while free).
    free_next: AtomicUsize,
}

impl TokenSlot {
    fn new_boxed() -> Box<TokenSlot> {
        Box::new(TokenSlot {
            local_epoch: AtomicU64::new(QUIESCENT),
            alloc_next: AtomicUsize::new(0),
            free_next: AtomicUsize::new(0),
        })
    }

    /// Charged atomic read of the token's epoch (used by the reclamation
    /// scan).
    pub fn epoch(&self) -> u64 {
        ctx::with_core(|core, here| {
            let _ = engine::remote_atomic_u64(core, here);
        });
        self.local_epoch.load(Ordering::SeqCst)
    }

    /// Uncharged read for assertions/diagnostics.
    pub fn epoch_relaxed(&self) -> u64 {
        self.local_epoch.load(Ordering::Relaxed)
    }

    /// Charged atomic write of the token's epoch (pin/unpin).
    pub fn set_epoch(&self, e: u64) {
        ctx::with_core(|core, here| {
            let _ = engine::remote_atomic_u64(core, here);
        });
        self.local_epoch.store(e, Ordering::SeqCst);
    }
}

/// The per-locale token registry: free stack + allocated list.
pub struct TokenRegistry {
    free_head: LocalAtomicAbaObject<TokenSlot>,
    alloc_head: AtomicUsize,
    allocated: AtomicU64,
}

impl TokenRegistry {
    /// An empty registry homed on the current locale.
    pub fn new() -> TokenRegistry {
        TokenRegistry {
            free_head: LocalAtomicAbaObject::null(),
            alloc_head: AtomicUsize::new(0),
            allocated: AtomicU64::new(0),
        }
    }

    /// Register: recycle a free token or create one. Lock-free.
    ///
    /// The returned reference lives as long as the registry (slots are
    /// only freed when the registry drops).
    pub fn register(&self) -> &TokenSlot {
        // Fast path: pop the free stack (ABA-protected).
        loop {
            let snap = self.free_head.read_aba();
            let top = snap.get_object();
            if top.is_null() {
                break;
            }
            let next = unsafe { top.deref() }.free_next.load(Ordering::Acquire);
            let next_ptr = if next == 0 {
                GlobalPtr::null()
            } else {
                GlobalPtr::new(top.locale(), next)
            };
            if self.free_head.compare_and_swap_aba(snap, next_ptr) {
                let slot = unsafe { &*top.as_ptr() };
                debug_assert_eq!(slot.epoch_relaxed(), QUIESCENT);
                return slot;
            }
        }
        // Slow path: allocate and append to the allocated list (CAS push).
        let slot = Box::into_raw(TokenSlot::new_boxed());
        self.allocated.fetch_add(1, Ordering::Relaxed);
        ctx::with_core(|core, here| {
            let _ = engine::remote_atomic_u64(core, here);
        });
        let mut head = self.alloc_head.load(Ordering::Acquire);
        loop {
            unsafe { &*slot }.alloc_next.store(head, Ordering::Relaxed);
            match self.alloc_head.compare_exchange_weak(
                head,
                slot as usize,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        unsafe { &*slot }
    }

    /// Unregister: mark quiescent and push onto the free stack. Lock-free.
    pub fn unregister(&self, slot: &TokenSlot) {
        slot.set_epoch(QUIESCENT);
        let raw = slot as *const TokenSlot as *mut TokenSlot;
        let ptr = GlobalPtr::from_raw_parts(pgas_sim::here(), raw);
        loop {
            let snap = self.free_head.read_aba();
            let top = snap.get_object();
            slot.free_next.store(
                if top.is_null() { 0 } else { top.addr() },
                Ordering::Release,
            );
            if self.free_head.compare_and_swap_aba(snap, ptr) {
                return;
            }
        }
    }

    /// Walk every token ever allocated (registered or not); unregistered
    /// ones read as [`QUIESCENT`]. Safe to run concurrently with
    /// register/unregister because the list is append-only.
    pub fn iter(&self) -> TokenIter<'_> {
        TokenIter {
            cur: self.alloc_head.load(Ordering::Acquire),
            _registry: self,
        }
    }

    /// Number of token slots ever created on this locale.
    pub fn allocated_count(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }
}

impl Default for TokenRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TokenRegistry {
    fn drop(&mut self) {
        // Free every slot through the allocated list; the free stack only
        // aliases a subset of the same slots.
        let mut cur = *self.alloc_head.get_mut();
        while cur != 0 {
            let slot = unsafe { Box::from_raw(cur as *mut TokenSlot) };
            cur = slot.alloc_next.load(Ordering::Relaxed);
        }
    }
}

/// Iterator over allocated token slots.
pub struct TokenIter<'a> {
    cur: usize,
    _registry: &'a TokenRegistry,
}

impl<'a> Iterator for TokenIter<'a> {
    type Item = &'a TokenSlot;

    fn next(&mut self) -> Option<&'a TokenSlot> {
        if self.cur == 0 {
            return None;
        }
        // SAFETY: slots live until the registry drops, which the borrow
        // prevents.
        let slot = unsafe { &*(self.cur as *const TokenSlot) };
        self.cur = slot.alloc_next.load(Ordering::Acquire);
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{Runtime, RuntimeConfig};

    #[test]
    fn register_creates_then_recycles() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let reg = TokenRegistry::new();
            let t1 = reg.register() as *const TokenSlot;
            assert_eq!(reg.allocated_count(), 1);
            reg.unregister(unsafe { &*t1 });
            let t2 = reg.register() as *const TokenSlot;
            assert_eq!(t1, t2, "free token recycled");
            assert_eq!(reg.allocated_count(), 1);
            reg.unregister(unsafe { &*t2 });
        });
    }

    #[test]
    fn distinct_tokens_for_concurrent_holders() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let reg = TokenRegistry::new();
            let a = reg.register() as *const TokenSlot;
            let b = reg.register() as *const TokenSlot;
            assert_ne!(a, b);
            assert_eq!(reg.allocated_count(), 2);
            reg.unregister(unsafe { &*a });
            reg.unregister(unsafe { &*b });
        });
    }

    #[test]
    fn iter_sees_all_slots_registered_or_not() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let reg = TokenRegistry::new();
            let a = reg.register();
            let _b = reg.register();
            a.set_epoch(2);
            reg.unregister(a); // back to quiescent, still iterated
            let epochs: Vec<u64> = reg.iter().map(|s| s.epoch()).collect();
            assert_eq!(epochs.len(), 2);
            assert!(epochs.contains(&QUIESCENT));
        });
    }

    #[test]
    fn pin_unpin_roundtrip() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let reg = TokenRegistry::new();
            let t = reg.register();
            assert_eq!(t.epoch(), QUIESCENT);
            t.set_epoch(3);
            assert_eq!(t.epoch(), 3);
            t.set_epoch(QUIESCENT);
            reg.unregister(t);
        });
    }

    #[test]
    fn concurrent_register_unregister_is_safe_and_bounded() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let reg = TokenRegistry::new();
            rt.coforall_tasks(8, |_| {
                for _ in 0..100 {
                    let t = reg.register();
                    t.set_epoch(1);
                    t.set_epoch(QUIESCENT);
                    reg.unregister(t);
                }
            });
            // With perfect recycling at most 8 slots exist; allow the race
            // where several tasks miss the free stack simultaneously.
            assert!(
                reg.allocated_count() <= 16,
                "slots: {}",
                reg.allocated_count()
            );
            assert_eq!(reg.iter().count() as u64, reg.allocated_count());
            for s in reg.iter() {
                assert_eq!(s.epoch_relaxed(), QUIESCENT);
            }
        });
    }
}
