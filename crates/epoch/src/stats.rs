//! Reclamation statistics, used by tests and the figure benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Counters describing what a manager's reclamation machinery has done.
#[derive(Debug, Default)]
pub struct ReclaimStats {
    /// Successful epoch advancements.
    pub advances: CachePadded<AtomicU64>,
    /// `try_reclaim` calls that backed out because another task on the same
    /// locale was already electing.
    pub lost_local_election: CachePadded<AtomicU64>,
    /// `try_reclaim` calls that won locally but lost the global election.
    pub lost_global_election: CachePadded<AtomicU64>,
    /// Scans that found a token pinned in an older epoch (advance refused).
    pub unsafe_scans: CachePadded<AtomicU64>,
    /// User objects actually freed.
    pub objects_reclaimed: CachePadded<AtomicU64>,
    /// Objects deferred for deletion.
    pub objects_deferred: CachePadded<AtomicU64>,
    /// Validated hazard-pointer protections (0 for epoch backends).
    pub hazard_protects: CachePadded<AtomicU64>,
}

/// Snapshot of [`ReclaimStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimSnapshot {
    /// Successful epoch advancements.
    pub advances: u64,
    /// Calls that backed out at the local election flag.
    pub lost_local_election: u64,
    /// Calls that won locally but lost the global election.
    pub lost_global_election: u64,
    /// Scans that found a lagging pinned token (advance refused).
    pub unsafe_scans: u64,
    /// User objects actually freed.
    pub objects_reclaimed: u64,
    /// Objects deferred for deletion.
    pub objects_deferred: u64,
    /// Validated hazard-pointer protections (0 for epoch backends).
    pub hazard_protects: u64,
}

impl ReclaimStats {
    pub(crate) fn bump(counter: &CachePadded<AtomicU64>) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &CachePadded<AtomicU64>, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture current values.
    pub fn snapshot(&self) -> ReclaimSnapshot {
        ReclaimSnapshot {
            advances: self.advances.load(Ordering::Relaxed),
            lost_local_election: self.lost_local_election.load(Ordering::Relaxed),
            lost_global_election: self.lost_global_election.load(Ordering::Relaxed),
            unsafe_scans: self.unsafe_scans.load(Ordering::Relaxed),
            objects_reclaimed: self.objects_reclaimed.load(Ordering::Relaxed),
            objects_deferred: self.objects_deferred.load(Ordering::Relaxed),
            hazard_protects: self.hazard_protects.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for ReclaimSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "advances={} lost_local={} lost_global={} unsafe_scans={} \
             deferred={} reclaimed={} protects={}",
            self.advances,
            self.lost_local_election,
            self.lost_global_election,
            self.unsafe_scans,
            self.objects_deferred,
            self.objects_reclaimed,
            self.hazard_protects,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = ReclaimStats::default();
        ReclaimStats::bump(&s.advances);
        ReclaimStats::add(&s.objects_reclaimed, 7);
        let snap = s.snapshot();
        assert_eq!(snap.advances, 1);
        assert_eq!(snap.objects_reclaimed, 7);
        assert_eq!(snap.lost_local_election, 0);
    }

    #[test]
    fn display_is_one_line() {
        let s = ReclaimStats::default().snapshot();
        assert!(!format!("{s}").contains('\n'));
    }
}
