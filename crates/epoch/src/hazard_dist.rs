//! `HazardReclaimer` — distributed hazard pointers as a first-class
//! [`crate::Reclaimer`] backend.
//!
//! This promotes the shared-memory [`crate::HazardDomain`] ablation
//! baseline (Michael's hazard pointers, §I refs [7]/[9]) to the full
//! PGAS setting so the structure layer can swap it in for the
//! `EpochManager`:
//!
//! - **Per-locale slot tables.** Each locale keeps an append-only list
//!   of participant records, allocated through `GlobalPtr` so any locale
//!   can address them. A scan reads *every* slot on *every* locale; each
//!   cross-locale slot read is charged as a remote atomic — the honest
//!   distributed scan cost that EBR's single epoch counter amortizes
//!   away.
//! - **Remote retire lists.** Unlike the local domain, retired objects
//!   may live on any locale. A scan partitions the unprotected ones by
//!   owner and frees them over the same `Batcher`/scatter bulk-free path
//!   the `EpochManager` uses (one active message per remote
//!   destination).
//! - **Stall tolerance.** A guard that never unpins blocks nothing: only
//!   the ≤ [`DIST_HP_SLOTS`] addresses it has published stay live, so
//!   per-participant garbage is bounded by `SCAN_THRESHOLD` plus the
//!   fleet's slot count — the property ablation A8 measures against
//!   EBR's unbounded limbo growth under the `stalled_task` plan.
//!
//! Stats mapping onto [`ReclaimSnapshot`]: scans count as `advances`,
//! retires as `objects_deferred`, frees as `objects_reclaimed`,
//! hazard-blocked frees as `unsafe_scans`, and validated protections as
//! `hazard_protects`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use pgas_atomics::{Aba, AtomicAbaObject, AtomicObject};
use pgas_sim::engine::{self, Batcher};
use pgas_sim::faults::invariants::ReclaimObserver;
use pgas_sim::telemetry::OpClass;
use pgas_sim::{ctx, vtime, Erased, GlobalPtr, LocaleId, Privatized, RuntimeHandle};

use crate::hazard::SCAN_THRESHOLD;
use crate::reclaim::{ReclaimGuard, Reclaimer};
use crate::stats::{ReclaimSnapshot, ReclaimStats};

/// Hazard slots per participant. The structures shipped here use at
/// most two (hand-over-hand walking pairs, or the queue's head +
/// successor); the rest is headroom for richer multi-slot protocols
/// without a participant-record layout change.
pub const DIST_HP_SLOTS: usize = 16;

/// One registered task's record: its published hazards and its private
/// retire list. Lives behind a `GlobalPtr` so remote scans can address
/// it.
struct HpParticipant {
    hazards: [AtomicUsize; DIST_HP_SLOTS],
    /// Heap address of the next participant on the same locale
    /// (append-only list).
    next: AtomicUsize,
    /// 1 while registered; inactive records are re-used.
    active: AtomicU64,
    retired: parking_lot::Mutex<Vec<Erased>>,
    /// Virtual time of the oldest un-scanned retire (`u64::MAX` when the
    /// list was just scanned) — feeds the pin-to-reclaim histogram.
    first_retire_vtime: AtomicU64,
}

impl HpParticipant {
    fn new() -> HpParticipant {
        HpParticipant {
            hazards: std::array::from_fn(|_| AtomicUsize::new(0)),
            next: AtomicUsize::new(0),
            active: AtomicU64::new(1),
            retired: parking_lot::Mutex::new(Vec::new()),
            first_retire_vtime: AtomicU64::new(u64::MAX),
        }
    }
}

/// One locale's participant registry.
struct HpLocaleTable {
    /// Heap address of the first participant (0 = empty).
    head: AtomicUsize,
    /// Participant records ever allocated on this locale.
    allocated: AtomicU64,
}

impl HpLocaleTable {
    fn iter(&self) -> impl Iterator<Item = &HpParticipant> {
        let mut cur = self.head.load(Ordering::Acquire);
        std::iter::from_fn(move || {
            if cur == 0 {
                return None;
            }
            // SAFETY: participants are append-only and freed only by the
            // reclaimer's Drop, which requires exclusive access.
            let p = unsafe { &*(cur as *const HpParticipant) };
            cur = p.next.load(Ordering::Acquire);
            Some(p)
        })
    }
}

/// Distributed hazard-pointer reclamation (see module docs).
pub struct HazardReclaimer {
    rt: RuntimeHandle,
    tables: Privatized<HpLocaleTable>,
    stats: ReclaimStats,
    observer: OnceLock<Arc<dyn ReclaimObserver>>,
}

// SAFETY: all shared state is atomics, locks, and append-only lists.
unsafe impl Send for HazardReclaimer {}
unsafe impl Sync for HazardReclaimer {}

#[inline]
fn charge_atomic_to(locale: LocaleId) {
    ctx::with_core(|core, _| {
        let _ = engine::remote_atomic_u64(core, locale);
    });
}

impl HazardReclaimer {
    /// Create a reclaimer spanning every locale of the current runtime.
    pub fn new() -> HazardReclaimer {
        let rt = ctx::current_runtime();
        let tables = Privatized::new(&rt, |_| HpLocaleTable {
            head: AtomicUsize::new(0),
            allocated: AtomicU64::new(0),
        });
        HazardReclaimer {
            rt,
            tables,
            stats: ReclaimStats::default(),
            observer: OnceLock::new(),
        }
    }

    /// Install a [`ReclaimObserver`]; it sees retires (`on_defer` with
    /// epoch 0), scans' frees (`on_reclaim` with epochs 0), and validated
    /// protections (`on_protect`/`on_release`).
    ///
    /// # Panics
    /// If an observer is already installed.
    pub fn set_observer(&self, obs: Arc<dyn ReclaimObserver>) {
        if self.observer.set(obs).is_err() {
            panic!("HazardReclaimer observer already installed");
        }
    }

    /// Register the calling task with its locale's table.
    pub fn register(&self) -> HpGuard<'_> {
        let table = self.tables.get();
        // Reuse an inactive participant if any.
        let mut cur = table.head.load(Ordering::Acquire);
        while cur != 0 {
            let p = unsafe { &*(cur as *const HpParticipant) };
            if p.active
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return HpGuard::new(self, p);
            }
            cur = p.next.load(Ordering::Acquire);
        }
        // Allocate on this locale (through the global heap, so the
        // record has a `GlobalPtr` identity remote scans can name) and
        // CAS-push.
        let ptr = ctx::with_core(|core, _| pgas_sim::alloc_local(core, HpParticipant::new()));
        table.allocated.fetch_add(1, Ordering::Relaxed);
        let addr = ptr.addr();
        let p = unsafe { &*(addr as *const HpParticipant) };
        let mut head = table.head.load(Ordering::Acquire);
        loop {
            p.next.store(head, Ordering::Relaxed);
            match table
                .head
                .compare_exchange_weak(head, addr, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        HpGuard::new(self, p)
    }

    /// Every address currently published in any slot on any locale. Each
    /// slot read is charged as a remote atomic toward the owning locale —
    /// the distributed scan cost.
    fn collect_hazards(&self) -> Vec<usize> {
        let mut hazards = Vec::new();
        for (locale, table) in self.tables.iter() {
            for p in table.iter() {
                for h in &p.hazards {
                    charge_atomic_to(locale);
                    let a = h.load(Ordering::SeqCst);
                    if a != 0 {
                        hazards.push(a);
                    }
                }
            }
        }
        hazards.sort_unstable();
        hazards
    }

    /// Partition `retired` against `hazards`, free the unprotected part
    /// by owner over the scatter path, and put survivors back. Returns
    /// the number freed. `hazards` must have been collected *after* the
    /// retired list was fixed (stolen or locked).
    fn scan_list(
        &self,
        retired: &mut Vec<Erased>,
        hazards: &[usize],
        first_retire: u64,
        during_clear: bool,
    ) -> u64 {
        ReclaimStats::bump(&self.stats.advances);
        let n = retired.len() as u64;
        let observer = self.observer.get();
        let mut kept = Vec::new();
        let freed = ctx::with_core(|core, here| {
            let src = here;
            let mut scatter = Batcher::new(core, usize::MAX, move |dest, batch: Vec<Erased>| {
                // SAFETY: no hazard covers anything in the batch (or the
                // caller guaranteed quiescence for clear()); the handler
                // runs on `dest`, where every object in the batch lives.
                unsafe { pgas_sim::free_erased_local_batch(core, batch, dest != src) };
            });
            let mut freed = 0u64;
            for e in retired.drain(..) {
                if hazards.binary_search(&e.addr()).is_ok() {
                    kept.push(e);
                } else {
                    if let Some(obs) = observer {
                        obs.on_reclaim(e.addr(), 0, 0, during_clear);
                    }
                    scatter.aggregate(e.owner(), e);
                    freed += 1;
                }
            }
            scatter.flush_all();
            let stats = &core.locale(here).stats;
            if first_retire != u64::MAX {
                stats.record(OpClass::Reclaim, vtime::now().saturating_sub(first_retire));
            }
            stats.record(OpClass::LimboDepth, n);
            freed
        });
        *retired = kept;
        ReclaimStats::add(&self.stats.objects_reclaimed, freed);
        ReclaimStats::add(&self.stats.unsafe_scans, n - freed);
        freed
    }

    /// One full scan pass: steal every participant's retire list (on
    /// every locale), *then* collect hazards, then free what no hazard
    /// covers. The steal-before-collect order is what makes helping
    /// sound: anything stolen was retired — hence unlinked — before the
    /// collection, so a validated protection of it must already be
    /// visible.
    fn scan_pass(&self, respect_hazards: bool, during_clear: bool) -> u64 {
        let mut stolen: Vec<(&HpParticipant, Vec<Erased>, u64)> = Vec::new();
        for (_, table) in self.tables.iter() {
            for p in table.iter() {
                let mut retired = p.retired.lock();
                if retired.is_empty() {
                    continue;
                }
                let first = p.first_retire_vtime.swap(u64::MAX, Ordering::Relaxed);
                stolen.push((p, std::mem::take(&mut *retired), first));
            }
        }
        if stolen.is_empty() {
            return 0;
        }
        let hazards = if respect_hazards {
            self.collect_hazards()
        } else {
            Vec::new()
        };
        let mut freed = 0;
        for (p, mut list, first) in stolen {
            freed += self.scan_list(&mut list, &hazards, first, during_clear);
            if !list.is_empty() {
                // Survivors go back to their owner's list; refresh the
                // age stamp so the next scan still reports their wait.
                p.first_retire_vtime
                    .fetch_min(vtime::now(), Ordering::Relaxed);
                p.retired.lock().append(&mut list);
            }
        }
        freed
    }

    /// Scan all retire lists, freeing everything unprotected. Returns
    /// `true` when anything was freed.
    pub fn try_reclaim(&self) -> bool {
        self.scan_pass(true, false) > 0
    }

    /// Free *everything* retired, ignoring hazards; callers guarantee
    /// quiescence (all guards dropped or released), as for
    /// `EpochManager::clear`.
    pub fn clear(&self) {
        self.scan_pass(false, true);
    }

    /// Deliberately run a scan that ignores every published hazard, with
    /// no quiescence excuse — the planted bug for checker self-tests,
    /// mirroring `EpochManager::debug_reclaim_current_epoch_early`. An
    /// installed `InvariantChecker` must flag any free of a validated
    /// protection.
    #[doc(hidden)]
    pub fn debug_scan_ignoring_hazards(&self) {
        self.scan_pass(false, false);
    }

    /// Reclamation counters (see module docs for the HP mapping).
    pub fn stats(&self) -> ReclaimSnapshot {
        self.stats.snapshot()
    }

    /// The runtime this reclaimer was created under.
    pub fn runtime(&self) -> RuntimeHandle {
        self.rt.clone()
    }

    /// Participant records ever allocated, across all locales.
    pub fn participants_allocated(&self) -> u64 {
        self.tables
            .iter()
            .map(|(_, t)| t.allocated.load(Ordering::Relaxed))
            .sum()
    }

    /// Upper bound on un-reclaimed garbage with `p` participants ever
    /// registered: each list holds fewer than `SCAN_THRESHOLD` objects
    /// between scans, plus everything the fleet's slots can pin.
    pub fn garbage_bound(&self) -> u64 {
        let p = self.participants_allocated();
        p * (SCAN_THRESHOLD as u64 + DIST_HP_SLOTS as u64)
    }
}

impl Default for HazardReclaimer {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for HazardReclaimer {
    fn drop(&mut self) {
        let teardown = || {
            self.clear();
            ctx::with_core(|core, _| {
                for (locale, table) in self.tables.iter() {
                    let mut cur = table.head.load(Ordering::Relaxed);
                    while cur != 0 {
                        let p = unsafe { &*(cur as *const HpParticipant) };
                        debug_assert!(p.retired.lock().is_empty());
                        let next = p.next.load(Ordering::Relaxed);
                        let gp: GlobalPtr<HpParticipant> =
                            GlobalPtr::from_raw_parts(locale, cur as *mut HpParticipant);
                        // SAFETY: exclusive access (Drop); allocated via
                        // alloc_local and never freed elsewhere.
                        unsafe { pgas_sim::free(core, gp) };
                        cur = next;
                    }
                }
            });
        };
        if pgas_sim::try_here().is_some() {
            teardown();
        } else {
            self.rt.clone().run(teardown);
        }
    }
}

/// A registered participant's guard. `!Sync`: the slots and the shadow
/// protection table belong to one task.
pub struct HpGuard<'a> {
    dom: &'a HazardReclaimer,
    participant: &'a HpParticipant,
    /// Addresses whose protection has been *validated* per slot (0 =
    /// none) — the observer-facing shadow of the published slots.
    validated: [Cell<usize>; DIST_HP_SLOTS],
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

impl<'a> HpGuard<'a> {
    fn new(dom: &'a HazardReclaimer, participant: &'a HpParticipant) -> HpGuard<'a> {
        HpGuard {
            dom,
            participant,
            validated: std::array::from_fn(|_| Cell::new(0)),
            _not_sync: std::marker::PhantomData,
        }
    }

    /// Publish `addr` in `slot` (charged SeqCst store). Any previously
    /// *validated* protection in the slot is released first: from this
    /// store on, scans may free the old object.
    fn publish(&self, slot: usize, addr: usize) {
        assert!(slot < DIST_HP_SLOTS);
        let old = self.validated[slot].replace(0);
        if old != 0 {
            if let Some(obs) = self.dom.observer.get() {
                obs.on_release(old);
            }
        }
        charge_atomic_to(pgas_sim::here());
        self.participant.hazards[slot].store(addr, Ordering::SeqCst);
    }

    /// Record that the protection published in `slot` was validated.
    fn validated_protect(&self, slot: usize, addr: usize) {
        if addr != 0 {
            ReclaimStats::bump(&self.dom.stats.hazard_protects);
            self.validated[slot].set(addr);
            if let Some(obs) = self.dom.observer.get() {
                obs.on_protect(addr);
            }
        }
    }

    /// The backing reclaimer.
    pub fn reclaimer(&self) -> &HazardReclaimer {
        self.dom
    }
}

impl ReclaimGuard for HpGuard<'_> {
    /// Hazard pointers have no epochs: entering a region is free (the
    /// per-pointer `protect*` calls carry the cost instead).
    #[inline]
    fn pin(&self) {}

    #[inline]
    fn unpin(&self) {}

    #[inline]
    fn is_pinned(&self) -> bool {
        true
    }

    /// Retire a logically-removed object (any locale); freed by a later
    /// scan once no slot protects it.
    fn defer_delete<T: Send>(&self, ptr: GlobalPtr<T>) {
        ReclaimStats::bump(&self.dom.stats.objects_deferred);
        if let Some(obs) = self.dom.observer.get() {
            obs.on_defer(ptr.addr(), 0);
        }
        self.participant
            .first_retire_vtime
            .fetch_min(vtime::now(), Ordering::Relaxed);
        let mut retired = self.participant.retired.lock();
        retired.push(Erased::new(ptr));
        if retired.len() >= SCAN_THRESHOLD {
            // List fixed (lock held) before hazards are collected.
            let hazards = self.dom.collect_hazards();
            let first = self
                .participant
                .first_retire_vtime
                .swap(u64::MAX, Ordering::Relaxed);
            self.dom.scan_list(&mut retired, &hazards, first, false);
            if !retired.is_empty() {
                self.participant
                    .first_retire_vtime
                    .fetch_min(vtime::now(), Ordering::Relaxed);
            }
        }
    }

    fn try_reclaim(&self) -> bool {
        self.dom.try_reclaim()
    }

    fn protect_root<T>(&self, slot: usize, cell: &AtomicObject<T>) -> GlobalPtr<T> {
        loop {
            let p = cell.read();
            self.publish(slot, p.without_mark().addr());
            if cell.read() == p {
                self.validated_protect(slot, p.without_mark().addr());
                return p;
            }
        }
    }

    fn protect_root_aba<T>(&self, slot: usize, cell: &AtomicAbaObject<T>) -> Aba<T> {
        loop {
            let p = cell.read_aba();
            self.publish(slot, p.get_object().without_mark().addr());
            if cell.read_aba() == p {
                self.validated_protect(slot, p.get_object().without_mark().addr());
                return p;
            }
        }
    }

    fn protect_ptr<T>(
        &self,
        slot: usize,
        ptr: GlobalPtr<T>,
        revalidate: impl FnOnce() -> bool,
    ) -> bool {
        let addr = ptr.without_mark().addr();
        self.publish(slot, addr);
        if revalidate() {
            self.validated_protect(slot, addr);
            true
        } else {
            false
        }
    }

    /// Copy an already-protected pointer into `slot`: the existing
    /// hazard keeps the object live across the store, so no validation
    /// is needed.
    fn protect_copy<T>(&self, slot: usize, ptr: GlobalPtr<T>) {
        let addr = ptr.without_mark().addr();
        self.publish(slot, addr);
        self.validated_protect(slot, addr);
    }

    fn release(&self, slot: usize) {
        self.publish(slot, 0);
    }
}

impl Drop for HpGuard<'_> {
    fn drop(&mut self) {
        for slot in 0..DIST_HP_SLOTS {
            let old = self.validated[slot].replace(0);
            if old != 0 {
                if let Some(obs) = self.dom.observer.get() {
                    obs.on_release(old);
                }
            }
            self.participant.hazards[slot].store(0, Ordering::SeqCst);
        }
        self.participant.active.store(0, Ordering::Release);
    }
}

impl Reclaimer for HazardReclaimer {
    type Guard<'a> = HpGuard<'a>;

    const NEEDS_PROTECT: bool = true;
    const PROTECT_SLOTS: usize = DIST_HP_SLOTS;

    fn new_in_runtime() -> Self {
        HazardReclaimer::new()
    }

    fn register(&self) -> HpGuard<'_> {
        HazardReclaimer::register(self)
    }

    fn try_reclaim(&self) -> bool {
        HazardReclaimer::try_reclaim(self)
    }

    fn clear(&self) {
        HazardReclaimer::clear(self)
    }

    fn set_observer(&self, obs: Arc<dyn ReclaimObserver>) {
        HazardReclaimer::set_observer(self, obs)
    }

    fn stats(&self) -> ReclaimSnapshot {
        HazardReclaimer::stats(self)
    }

    fn runtime(&self) -> RuntimeHandle {
        HazardReclaimer::runtime(self)
    }

    fn backend_name(&self) -> &'static str {
        "hp"
    }

    fn tolerates_stalled_readers(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{alloc_local, alloc_on, Runtime, RuntimeConfig};

    fn zrt(n: usize) -> Runtime {
        Runtime::new(RuntimeConfig::zero_latency(n))
    }

    #[test]
    fn retire_scan_roundtrip_across_locales() {
        let rt = zrt(4);
        rt.run(|| {
            let dom = HazardReclaimer::new();
            rt.coforall_locales(|l| {
                let g = dom.register();
                // Retire remote objects too: each locale retires onto the
                // next one over.
                for i in 0..10u64 {
                    let owner = ((l as usize + 1) % 4) as pgas_sim::LocaleId;
                    let p = ctx::with_core(|core, _| alloc_on(core, owner, i));
                    g.defer_delete(p);
                }
            });
            assert!(dom.try_reclaim());
            assert_eq!(dom.stats().objects_reclaimed, 40);
            assert_eq!(dom.stats().objects_deferred, 40);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn protected_object_survives_scans_until_release() {
        let rt = zrt(2);
        rt.run(|| {
            let dom = HazardReclaimer::new();
            let reader = dom.register();
            let writer = dom.register();
            let obj = ctx::with_core(|core, _| alloc_local(core, 42u64));
            let cell = AtomicObject::new(obj);

            let protected = reader.protect_root(0, &cell);
            assert_eq!(protected, obj);

            let fresh = ctx::with_core(|core, _| alloc_local(core, 43u64));
            let old = cell.exchange(fresh);
            writer.defer_delete(old);
            dom.try_reclaim();
            assert_eq!(dom.stats().objects_reclaimed, 0, "hazard blocks the scan");
            assert_eq!(unsafe { *protected.deref() }, 42);

            reader.release(0);
            assert!(dom.try_reclaim());
            assert_eq!(dom.stats().objects_reclaimed, 1);

            writer.defer_delete(cell.read());
            drop(reader);
            drop(writer);
            dom.clear();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn remote_frees_ride_the_scatter_path() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let dom = HazardReclaimer::new();
            let g = dom.register();
            for i in 0..20u64 {
                let p = ctx::with_core(|core, _| alloc_on(core, 1, i));
                g.defer_delete(p);
            }
            rt.reset_metrics();
            assert!(dom.try_reclaim());
            let s = rt.total_comm();
            assert_eq!(s.bulk_frees, 1, "one bulk AM for the remote batch");
            assert_eq!(s.bulk_freed_objects, 20);
            assert_eq!(s.remote_frees, 0, "no per-object remote frees");
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn stalled_guard_does_not_block_unrelated_reclamation() {
        // The property the backend exists for: a guard that holds a
        // protection forever (a stalled reader) pins only its own
        // object; everything else keeps getting freed.
        let rt = zrt(1);
        rt.run(|| {
            let dom = HazardReclaimer::new();
            let staller = dom.register();
            let worker = dom.register();
            let pinned = ctx::with_core(|core, _| alloc_local(core, 7u64));
            let cell = AtomicObject::new(pinned);
            let _held = staller.protect_root(0, &cell);
            // Worker churns way past the stalled protection.
            for i in 0..(SCAN_THRESHOLD as u64 * 4) {
                let p = ctx::with_core(|core, _| alloc_local(core, i));
                worker.defer_delete(p);
            }
            dom.try_reclaim();
            let s = dom.stats();
            assert!(
                s.objects_reclaimed >= SCAN_THRESHOLD as u64 * 3,
                "reclamation proceeded despite the stalled guard: {s}"
            );
            assert!(rt.live_objects() <= dom.garbage_bound() as i64 + 1);
            worker.defer_delete(cell.read());
            drop(staller);
            drop(worker);
            dom.clear();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn participant_churn_reacquires_slots() {
        let rt = zrt(1);
        rt.run(|| {
            let dom = HazardReclaimer::new();
            for _ in 0..5 {
                let g = dom.register();
                let p = ctx::with_core(|core, _| alloc_local(core, 1u64));
                g.defer_delete(p);
            }
            assert_eq!(
                dom.participants_allocated(),
                1,
                "sequential churn reuses one record"
            );
            dom.clear();
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn scan_with_zero_active_participants() {
        let rt = zrt(2);
        rt.run(|| {
            let dom = HazardReclaimer::new();
            assert!(!dom.try_reclaim(), "nothing to free on an empty domain");
            {
                let g = dom.register();
                let p = ctx::with_core(|core, _| alloc_local(core, 9u64));
                g.defer_delete(p);
            } // guard dropped: no active participants, list non-empty
            assert!(dom.try_reclaim(), "scan frees orphaned retire lists");
        });
        assert_eq!(rt.live_objects(), 0);
    }

    #[test]
    fn retire_overflow_exactly_at_threshold_triggers_scan() {
        let rt = zrt(1);
        rt.run(|| {
            let dom = HazardReclaimer::new();
            let g = dom.register();
            for i in 0..(SCAN_THRESHOLD as u64 - 1) {
                let p = ctx::with_core(|core, _| alloc_local(core, i));
                g.defer_delete(p);
            }
            assert_eq!(dom.stats().advances, 0, "below threshold: no scan yet");
            // +1: the participant record itself is a heap allocation.
            assert_eq!(rt.live_objects() as usize, SCAN_THRESHOLD);
            let p = ctx::with_core(|core, _| alloc_local(core, 0u64));
            g.defer_delete(p); // exactly SCAN_THRESHOLD
            assert_eq!(dom.stats().advances, 1, "threshold retire scans inline");
            assert_eq!(dom.stats().objects_reclaimed, SCAN_THRESHOLD as u64);
            assert_eq!(rt.live_objects(), 1, "only the participant record remains");
        });
    }

    #[test]
    fn planted_hazard_ignoring_scan_is_caught_by_checker() {
        use pgas_sim::faults::invariants::InvariantChecker;
        let rt = zrt(1);
        rt.run(|| {
            let checker = InvariantChecker::new();
            let dom = HazardReclaimer::new();
            dom.set_observer(checker.clone());
            let reader = dom.register();
            let writer = dom.register();
            let obj = ctx::with_core(|core, _| alloc_local(core, 11u64));
            let cell = AtomicObject::new(obj);
            let _held = reader.protect_root(0, &cell);
            let fresh = ctx::with_core(|core, _| alloc_local(core, 12u64));
            writer.defer_delete(cell.exchange(fresh));
            // A correct scan keeps the protected object.
            dom.try_reclaim();
            assert!(checker.check().is_ok());
            // The planted bug frees it anyway; the checker must object.
            dom.debug_scan_ignoring_hazards();
            let errs = checker.check().unwrap_err();
            assert!(
                errs.iter().any(|e| e.contains("hazard violation")),
                "{errs:?}"
            );
            // Teardown: the protected object was (incorrectly) freed by
            // the planted bug; only the current cell object remains.
            release_and_teardown(reader, writer, &cell, &dom);
        });
        assert_eq!(rt.live_objects(), 0);
    }

    fn release_and_teardown(
        reader: HpGuard<'_>,
        writer: HpGuard<'_>,
        cell: &AtomicObject<u64>,
        dom: &HazardReclaimer,
    ) {
        writer.defer_delete(cell.read());
        drop(reader);
        drop(writer);
        dom.clear();
    }

    #[test]
    fn scan_cost_charges_remote_atomics_per_slot() {
        let rt = Runtime::cluster(2);
        rt.run(|| {
            let dom = HazardReclaimer::new();
            let g0 = dom.register();
            rt.coforall_locales(|l| {
                if l == 1 {
                    let _g1 = dom.register();
                }
            });
            let p = ctx::with_core(|core, _| alloc_local(core, 1u64));
            g0.defer_delete(p);
            rt.reset_metrics();
            dom.try_reclaim();
            let s = rt.total_comm();
            // Two participants × DIST_HP_SLOTS slot reads, one of them on
            // a remote locale (the AM-atomics path since this cluster
            // config keeps network atomics on; either way they are
            // charged).
            assert!(
                s.rdma_atomics + s.cpu_atomics + s.am_sent >= DIST_HP_SLOTS as u64 * 2,
                "scan must pay per-slot: {s:?}"
            );
        });
        assert_eq!(rt.live_objects(), 0);
    }
}
