//! # pgas-epoch — distributed epoch-based memory reclamation
//!
//! Rust port of the paper's `EpochManager` / `LocalEpochManager`:
//! concurrent-safe deferred deletion for non-blocking data structures in
//! shared *and* distributed memory, built on epoch-based reclamation
//! (Fraser, 2004) with the paper's distributed-memory machinery:
//! privatized per-locale instances, a locale-cached epoch, wait-free limbo
//! lists with recycled nodes, first-come-first-serve reclamation election,
//! and scatter-list bulk frees for remote objects.
//!
//! ## The paper's Listing 3, in Rust
//!
//! ```
//! use pgas_sim::{Runtime, RuntimeConfig, alloc_local};
//! use pgas_epoch::EpochManager;
//!
//! let rt = Runtime::new(RuntimeConfig::zero_latency(2));
//! rt.run(|| {
//!     let em = EpochManager::new();
//!
//!     // Serial usage
//!     let tok = em.register();
//!     tok.pin();
//!     tok.unpin();
//!     drop(tok); // automatic unregister
//!
//!     // Parallel and distributed (forall ... with (var tok = em.register()))
//!     rt.forall_dist(64, |_, _| em.register(), |tok, i| {
//!         tok.pin();
//!         tok.defer_delete(alloc_local(&pgas_sim::current_runtime(), i as u64));
//!         tok.unpin();
//!     }); // automatic unregister at task end
//!
//!     em.clear(); // Reclaim everything at once.
//!     assert_eq!(rt.live_objects(), 0);
//! });
//! ```

#![warn(missing_docs)]

pub mod hazard;
pub mod hazard_dist;
pub mod limbo;
pub mod local_manager;
pub mod manager;
pub mod math;
pub mod owned;
pub mod reclaim;
pub mod stats;
pub mod token;

pub use hazard::{HazardDomain, HazardToken};
pub use hazard_dist::{HazardReclaimer, HpGuard, DIST_HP_SLOTS};
pub use limbo::{LimboList, NodePool};
pub use local_manager::{LocalEpochManager, LocalToken};
pub use manager::{EpochManager, PinGuard, Token};
pub use math::{limbo_index, next_epoch, reclaim_epoch, EPOCHS};
pub use owned::OwnedAtomic;
pub use reclaim::{ReclaimGuard, Reclaimer};
pub use stats::{ReclaimSnapshot, ReclaimStats};
pub use token::QUIESCENT;
