//! The wait-free limbo list (Listing 2) and its node-recycling pool.
//!
//! A limbo list holds objects that were logically removed during one epoch
//! and await reclamation. Its access pattern is extreme and simple: many
//! concurrent *insertions* (every `deferDelete`), and a *bulk removal* that
//! takes the entire list at once during reclamation. The paper's design
//! makes both a single atomic exchange:
//!
//! ```chapel
//! proc push(obj) { var node = recycleNode(obj);
//!                  var oldHead = _head.exchange(node);
//!                  node.next = oldHead; }
//! proc pop()     { return _head.exchange(nil); }
//! ```
//!
//! ### Correctness fix over the paper's listing
//! As printed, `push` publishes the node *before* writing `node.next`, so a
//! `pop` that lands between the two statements would traverse an
//! uninitialized `next`. We keep the single-exchange structure but make
//! `next` atomic and initialize it to a `PENDING` sentinel; the (single
//! consumer, bulk) drain spins per node until the pusher's store lands.
//! Push remains wait-free — one unconditional exchange plus one store — and
//! the drain waits at most one in-flight store per node.
//!
//! Nodes are recycled through a lock-free Treiber stack protected by the
//! ABA counter of [`pgas_atomics`] (the pool's `pop` is exactly the ABA
//! scenario the counter exists for).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use pgas_atomics::LocalAtomicAbaObject;
use pgas_sim::engine;
use pgas_sim::{ctx, Erased, GlobalPtr};

/// `next` value meaning "the pushing task has not yet published the link".
const PENDING: usize = usize::MAX;

/// A node in a limbo list (or, between uses, in the recycling pool).
pub struct LimboNode {
    obj: Option<Erased>,
    next: AtomicUsize,
}

impl LimboNode {
    fn new() -> Box<LimboNode> {
        Box::new(LimboNode {
            obj: None,
            next: AtomicUsize::new(PENDING),
        })
    }
}

/// Charge one locale-local 64-bit atomic through the network model (the
/// cost depends on whether network atomics are enabled).
#[inline]
fn charge_local_atomic() {
    ctx::with_core(|core, here| {
        let _ = engine::remote_atomic_u64(core, here);
    });
}

/// The wait-free limbo list: concurrent `push`, single-exchange bulk
/// `take`.
pub struct LimboList {
    /// Raw `*mut LimboNode` as an integer; 0 = empty.
    head: AtomicU64,
}

impl Default for LimboList {
    fn default() -> Self {
        Self::new()
    }
}

impl LimboList {
    /// An empty limbo list.
    pub fn new() -> LimboList {
        LimboList {
            head: AtomicU64::new(0),
        }
    }

    /// Defer `obj`, using `node` (from the pool) as the link. Wait-free:
    /// one unconditional exchange.
    pub(crate) fn push_node(&self, mut node: Box<LimboNode>, obj: Erased) {
        node.obj = Some(obj);
        node.next.store(PENDING, Ordering::Relaxed);
        let raw = Box::into_raw(node);
        charge_local_atomic();
        let old = self.head.swap(raw as u64, Ordering::AcqRel);
        // Publish the link; a concurrent drain spins until this lands.
        unsafe { &*raw }.next.store(old as usize, Ordering::Release);
    }

    /// Detach the entire list (the deletion-phase `pop`): one exchange.
    /// Returns a drain handle that yields the deferred objects and recycles
    /// the nodes into `pool`.
    pub(crate) fn take(&self) -> TakenList {
        charge_local_atomic();
        let head = self.head.swap(0, Ordering::AcqRel);
        TakenList { cur: head as usize }
    }

    /// True if the list currently has no entries (racy; for tests and
    /// diagnostics).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == 0
    }
}

impl Drop for LimboList {
    fn drop(&mut self) {
        // Any remaining deferred objects are *leaked* deliberately: dropping
        // user objects requires runtime context for accounting, and a
        // correct shutdown path (EpochManager::clear / Drop) has already
        // emptied the list. Free only the node shells.
        let mut cur = *self.head.get_mut() as usize;
        while cur != 0 && cur != PENDING {
            let node = unsafe { Box::from_raw(cur as *mut LimboNode) };
            cur = node.next.load(Ordering::Relaxed);
            debug_assert!(
                node.obj.is_none(),
                "limbo list dropped while still holding deferred objects; \
                 call EpochManager::clear() before dropping the manager"
            );
        }
    }
}

/// Iterator over a detached limbo list. Yields each deferred object and
/// hands the emptied node to the pool it was created with.
pub(crate) struct TakenList {
    cur: usize,
}

impl TakenList {
    /// Drain into `sink`, recycling nodes into `pool`. Returns the number
    /// of objects drained.
    pub(crate) fn drain_into(mut self, pool: &NodePool, mut sink: impl FnMut(Erased)) -> usize {
        let mut n = 0;
        while self.cur != 0 {
            let node_ptr = self.cur as *mut LimboNode;
            // Wait for the pusher to publish the link (see module docs).
            let next = loop {
                let next = unsafe { &*node_ptr }.next.load(Ordering::Acquire);
                if next != PENDING {
                    break next;
                }
                std::thread::yield_now();
            };
            let mut node = unsafe { Box::from_raw(node_ptr) };
            let obj = node.obj.take().expect("limbo node without an object");
            sink(obj);
            pool.put(node);
            self.cur = next;
            n += 1;
        }
        n
    }
}

/// A lock-free pool of limbo nodes: the Treiber stack with ABA protection
/// described in §II-C. One pool per locale instance.
pub struct NodePool {
    head: LocalAtomicAbaObject<LimboNode>,
    /// Nodes ever created by this pool (diagnostics).
    created: AtomicU64,
}

impl NodePool {
    /// An empty pool homed on the current locale.
    pub fn new() -> NodePool {
        NodePool {
            head: LocalAtomicAbaObject::null(),
            created: AtomicU64::new(0),
        }
    }

    /// Get a node: recycle from the stack or allocate fresh.
    pub(crate) fn get(&self) -> Box<LimboNode> {
        loop {
            let snap = self.head.read_aba();
            let top = snap.get_object();
            if top.is_null() {
                self.created.fetch_add(1, Ordering::Relaxed);
                return LimboNode::new();
            }
            let next = unsafe { top.deref() }.next.load(Ordering::Acquire);
            let next_ptr = if next == 0 || next == PENDING {
                GlobalPtr::null()
            } else {
                GlobalPtr::new(top.locale(), next)
            };
            if self.head.compare_and_swap_aba(snap, next_ptr) {
                return unsafe { Box::from_raw(top.as_ptr()) };
            }
        }
    }

    /// Return an emptied node to the stack.
    pub(crate) fn put(&self, node: Box<LimboNode>) {
        debug_assert!(node.obj.is_none());
        let raw = Box::into_raw(node);
        let ptr = GlobalPtr::from_raw_parts(pgas_sim::here(), raw);
        loop {
            let snap = self.head.read_aba();
            let top = snap.get_object();
            unsafe { &*raw }.next.store(
                if top.is_null() { 0 } else { top.addr() },
                Ordering::Release,
            );
            if self.head.compare_and_swap_aba(snap, ptr) {
                return;
            }
        }
    }

    /// Total nodes this pool has ever allocated.
    pub fn nodes_created(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }
}

impl Default for NodePool {
    fn default() -> Self {
        // NOTE: requires runtime context (the ABA head captures `here`).
        Self::new()
    }
}

impl Drop for NodePool {
    fn drop(&mut self) {
        // Free the pooled node shells. Uses the untracked read: Drop may
        // run outside runtime context, and the pool is quiescent by then.
        let mut cur = self.head.read_untracked().addr();
        while cur != 0 {
            let node = unsafe { Box::from_raw(cur as *mut LimboNode) };
            let next = node.next.load(Ordering::Relaxed);
            cur = if next == PENDING { 0 } else { next };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas_sim::{alloc_local, Runtime, RuntimeConfig};

    fn erased(rt: &Runtime, v: u64) -> Erased {
        Erased::new(alloc_local(rt, v))
    }

    #[test]
    fn push_take_roundtrip() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let pool = NodePool::new();
            let list = LimboList::new();
            for i in 0..5 {
                list.push_node(pool.get(), erased(&rt, i));
            }
            assert!(!list.is_empty());
            let mut got = Vec::new();
            let n = list.take().drain_into(&pool, |e| got.push(e));
            assert_eq!(n, 5);
            assert!(list.is_empty());
            for e in got {
                unsafe { e.run_drop(&rt) };
            }
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn take_on_empty_list_yields_nothing() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let pool = NodePool::new();
            let list = LimboList::new();
            let n = list.take().drain_into(&pool, |_| panic!("empty"));
            assert_eq!(n, 0);
        });
    }

    #[test]
    fn nodes_are_recycled_not_reallocated() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let pool = NodePool::new();
            let list = LimboList::new();
            for round in 0..4 {
                for i in 0..8 {
                    list.push_node(pool.get(), erased(&rt, round * 8 + i));
                }
                let n = list
                    .take()
                    .drain_into(&pool, |e| unsafe { e.run_drop(&rt) });
                assert_eq!(n, 8);
            }
            assert_eq!(
                pool.nodes_created(),
                8,
                "subsequent rounds reuse the first round's nodes"
            );
        });
    }

    #[test]
    fn concurrent_pushes_preserve_multiset() {
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let pool = NodePool::new();
            let list = LimboList::new();
            let tasks = 4;
            let per_task = 200;
            rt.coforall_tasks(tasks, |t| {
                for i in 0..per_task {
                    list.push_node(pool.get(), erased(&rt, (t * per_task + i) as u64));
                }
            });
            let mut seen = Vec::new();
            list.take().drain_into(&pool, |e| {
                seen.push(unsafe { *(e.addr() as *const u64) });
                unsafe { e.run_drop(&rt) };
            });
            seen.sort_unstable();
            let expect: Vec<u64> = (0..(tasks * per_task) as u64).collect();
            assert_eq!(seen, expect);
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn concurrent_push_and_take_lose_nothing() {
        // Takers race with pushers; every object must come out exactly once.
        let rt = Runtime::new(RuntimeConfig::zero_latency(1));
        rt.run(|| {
            let pool = NodePool::new();
            let list = LimboList::new();
            let total = std::sync::atomic::AtomicU64::new(0);
            let drained = std::sync::atomic::AtomicU64::new(0);
            rt.coforall_tasks(5, |t| {
                if t == 0 {
                    // the taker: repeatedly detach whatever is there
                    for _ in 0..50 {
                        let n = list
                            .take()
                            .drain_into(&pool, |e| unsafe { e.run_drop(&rt) });
                        drained.fetch_add(n as u64, Ordering::Relaxed);
                        std::thread::yield_now();
                    }
                } else {
                    for i in 0..100 {
                        list.push_node(pool.get(), erased(&rt, i));
                        total.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            // Final sweep for leftovers.
            let n = list
                .take()
                .drain_into(&pool, |e| unsafe { e.run_drop(&rt) });
            drained.fetch_add(n as u64, Ordering::Relaxed);
            assert_eq!(
                drained.load(Ordering::Relaxed),
                total.load(Ordering::Relaxed)
            );
            assert_eq!(rt.live_objects(), 0);
        });
    }

    #[test]
    fn push_charges_exactly_one_atomic() {
        let rt = Runtime::cluster(1); // network atomics on
        rt.run(|| {
            let pool = NodePool::new();
            let list = LimboList::new();
            let node = pool.get();
            let e = erased(&rt, 1);
            rt.reset_metrics();
            list.push_node(node, e);
            let s = rt.total_comm();
            assert_eq!(
                s.rdma_atomics, 1,
                "deferring is one atomic exchange (plus the pool op, \
                 already taken before the measurement)"
            );
            list.take()
                .drain_into(&pool, |e| unsafe { e.run_drop(&rt) });
        });
    }
}
