//! Epoch arithmetic.
//!
//! Epochs take the values `{1, 2, 3}` (Listing 4: `(e % 3) + 1`), with `0`
//! reserved for "not pinned". Three limbo lists correspond to the three
//! possible epoch values; the list reclaimed after advancing to epoch `n`
//! is the one two advances old — which, in a 3-cycle, is also the value
//! that will become current *next*.

/// Number of distinct epoch values / limbo lists.
pub const EPOCHS: u64 = 3;

/// The epoch after `e` (Listing 4's `(current_global_epoch % 3) + 1`).
#[inline]
pub fn next_epoch(e: u64) -> u64 {
    debug_assert!((1..=EPOCHS).contains(&e), "epoch out of range: {e}");
    (e % EPOCHS) + 1
}

/// After advancing *to* `new_epoch`, the epoch whose limbo list is safe to
/// reclaim (two advances old = `new_epoch - 2` ≡ `next_epoch(new_epoch)`
/// in the 3-cycle).
#[inline]
pub fn reclaim_epoch(new_epoch: u64) -> u64 {
    next_epoch(new_epoch)
}

/// Limbo-list array index for an epoch value.
#[inline]
pub fn limbo_index(e: u64) -> usize {
    debug_assert!((1..=EPOCHS).contains(&e), "epoch out of range: {e}");
    (e - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_cycle_1_2_3() {
        assert_eq!(next_epoch(1), 2);
        assert_eq!(next_epoch(2), 3);
        assert_eq!(next_epoch(3), 1);
    }

    #[test]
    fn reclaim_is_two_advances_behind() {
        // advancing 1→2: reclaim 3 (the epoch before 1 in ...3,1,2)
        assert_eq!(reclaim_epoch(2), 3);
        assert_eq!(reclaim_epoch(3), 1);
        assert_eq!(reclaim_epoch(1), 2);
        // equivalently: reclaim_epoch(next(e)) is never e or next(e)
        for e in 1..=3 {
            let n = next_epoch(e);
            let r = reclaim_epoch(n);
            assert_ne!(r, e);
            assert_ne!(r, n);
        }
    }

    #[test]
    fn indices_are_zero_based() {
        assert_eq!(limbo_index(1), 0);
        assert_eq!(limbo_index(2), 1);
        assert_eq!(limbo_index(3), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    #[cfg(debug_assertions)]
    fn zero_epoch_has_no_limbo_list() {
        let _ = limbo_index(0);
    }
}
