//! Property-based and protocol-level tests for the epoch managers.

use pgas_epoch::{next_epoch, reclaim_epoch, EpochManager, LocalEpochManager, EPOCHS};
use pgas_sim::{alloc_local, alloc_on, LocaleId, Runtime, RuntimeConfig};
use proptest::prelude::*;

fn zrt(n: usize) -> Runtime {
    Runtime::new(RuntimeConfig::zero_latency(n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any interleaving of defers and reclaim attempts by a single
    /// task, (a) nothing leaks after clear, and (b) no object is freed
    /// before two advances after its defer epoch.
    #[test]
    fn defer_reclaim_interleavings_are_leak_free(
        ops in proptest::collection::vec(0u8..3, 1..120)
    ) {
        let rt = zrt(1);
        rt.run(|| {
            let em = LocalEpochManager::new();
            let tok = em.register();
            let mut deferred = 0u64;
            for op in &ops {
                match op {
                    0 => {
                        tok.pin();
                        tok.defer_delete(alloc_local(
                            &pgas_sim::current_runtime(),
                            deferred,
                        ));
                        tok.unpin();
                        deferred += 1;
                    }
                    1 => {
                        em.try_reclaim();
                    }
                    _ => {
                        tok.pin();
                        tok.unpin();
                    }
                }
            }
            drop(tok);
            em.clear();
            prop_assert_eq!(em.stats().objects_deferred, deferred);
            prop_assert_eq!(em.stats().objects_reclaimed, deferred);
            Ok(())
        })?;
        prop_assert_eq!(rt.live_objects(), 0);
    }

    /// A token pinned at epoch E prevents any object deferred at E from
    /// being reclaimed, for any number of reclaim attempts.
    #[test]
    fn pinned_epoch_is_a_hard_fence(attempts in 1usize..12) {
        let rt = zrt(1);
        rt.run(|| {
            let em = LocalEpochManager::new();
            let holder = em.register();
            holder.pin();
            let obj = alloc_local(&pgas_sim::current_runtime(), 1u64);
            holder.defer_delete(obj);
            // holder stays pinned; at most ONE advance can happen (the
            // one matching its pin epoch), never enough to reclaim.
            for _ in 0..attempts {
                em.try_reclaim();
            }
            prop_assert_eq!(rt.live_objects(), 1, "object still protected");
            holder.unpin();
            for _ in 0..3 {
                em.try_reclaim();
            }
            prop_assert_eq!(rt.live_objects(), 0);
            Ok(())
        })?;
    }

    /// Distributed variant: after any sequence of advances the global and
    /// every locale-cached epoch agree.
    #[test]
    fn caches_track_global_epoch(advances in 1usize..10, locales in 1usize..5) {
        let rt = zrt(locales);
        rt.run(|| {
            let em = EpochManager::new();
            for _ in 0..advances {
                prop_assert!(em.try_reclaim());
                let g = em.global_epoch();
                rt.coforall_locales(|_| {
                    assert_eq!(em.local_epoch(), g);
                });
            }
            Ok(())
        })?;
    }

    /// Objects deferred in distinct epochs land in distinct limbo lists
    /// and are reclaimed in epoch order (older first).
    #[test]
    fn reclamation_respects_epoch_order(first_batch in 1usize..10, second_batch in 1usize..10) {
        let rt = zrt(1);
        rt.run(|| {
            let em = LocalEpochManager::new();
            let tok = em.register();
            let rt_h = pgas_sim::current_runtime();
            tok.pin();
            for i in 0..first_batch {
                tok.defer_delete(alloc_local(&rt_h, i as u64));
            }
            tok.unpin();
            em.try_reclaim(); // epoch 1 → 2
            tok.pin();
            for i in 0..second_batch {
                tok.defer_delete(alloc_local(&rt_h, i as u64));
            }
            tok.unpin();
            // Advance to 3: reclaims epoch-1 batch only.
            em.try_reclaim();
            prop_assert_eq!(rt.live_objects() as usize, second_batch);
            // Advance to 1: reclaims epoch-2 batch.
            em.try_reclaim();
            prop_assert_eq!(rt.live_objects(), 0);
            Ok(())
        })?;
    }
}

#[test]
fn epoch_arithmetic_is_a_3_cycle() {
    let mut e = 1;
    let mut seen = Vec::new();
    for _ in 0..6 {
        seen.push(e);
        e = next_epoch(e);
    }
    assert_eq!(seen, vec![1, 2, 3, 1, 2, 3]);
    for e in 1..=EPOCHS {
        assert_ne!(
            reclaim_epoch(next_epoch(e)),
            e,
            "never reclaim the old current"
        );
        assert_ne!(
            reclaim_epoch(next_epoch(e)),
            next_epoch(e),
            "never reclaim the new current"
        );
    }
}

#[test]
fn distributed_managers_scatter_exactly_once_per_owner() {
    // With objects on every locale deferred from every locale, clear()
    // must free each object exactly once (heap accounting proves it).
    let rt = zrt(4);
    rt.run(|| {
        let em = EpochManager::new();
        rt.coforall_locales(|l| {
            let tok = em.register();
            tok.pin();
            for i in 0..25u64 {
                let owner = ((l as u64 + i) % 4) as LocaleId;
                tok.defer_delete(alloc_on(&pgas_sim::current_runtime(), owner, i));
            }
            tok.unpin();
        });
        assert_eq!(rt.live_objects(), 100);
        em.clear();
        assert_eq!(rt.live_objects(), 0);
        assert_eq!(em.stats().objects_reclaimed, 100);
        for l in 0..4 {
            let heap = &rt.locale(l).heap;
            assert_eq!(
                heap.allocations(),
                heap.frees(),
                "locale {l}: every alloc freed exactly once"
            );
        }
    });
}

#[test]
fn interleaved_managers_do_not_cross_reclaim() {
    // Two managers, objects deferred to each; clearing one must not touch
    // the other's objects.
    let rt = zrt(2);
    rt.run(|| {
        let em_a = EpochManager::new();
        let em_b = EpochManager::new();
        let rt_h = pgas_sim::current_runtime();
        {
            let ta = em_a.register();
            let tb = em_b.register();
            ta.pin();
            tb.pin();
            for i in 0..10 {
                ta.defer_delete(alloc_local(&rt_h, i as u64));
                tb.defer_delete(alloc_local(&rt_h, i as u64));
            }
            ta.unpin();
            tb.unpin();
        }
        assert_eq!(rt.live_objects(), 20);
        em_a.clear();
        assert_eq!(rt.live_objects(), 10, "only A's objects reclaimed");
        em_b.clear();
        assert_eq!(rt.live_objects(), 0);
    });
}
