//! Conformance suite for the [`Reclaimer`] trait: every backend (the
//! distributed `EpochManager`, the locale-local `LocalEpochManager`, and
//! the distributed `HazardReclaimer`) must satisfy the same contract:
//!
//! 1. **No early free** — an object protected by another guard (pinned
//!    under EBR, hazard-validated under HP) survives reclamation
//!    attempts until the protection ends.
//! 2. **No double free** — repeated `try_reclaim`/`clear` calls after
//!    everything is reclaimed are harmless no-ops.
//! 3. **Deferred drops all run** — every `defer_delete`d object's
//!    destructor runs exactly once by the time `clear` returns.
//! 4. **Stats conservation** — after a quiescent `clear`,
//!    `objects_deferred == objects_reclaimed` and nothing is left live.
//!
//! The suite is written once against the trait and instantiated per
//! backend, so a future backend inherits the contract for free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pgas_atomics::AtomicObject;
use pgas_epoch::{EpochManager, HazardReclaimer, LocalEpochManager, ReclaimGuard, Reclaimer};
use pgas_sim::{alloc_local, ctx, Runtime, RuntimeConfig};

fn zrt(n: usize) -> Runtime {
    Runtime::new(RuntimeConfig::zero_latency(n))
}

/// A payload whose destructor counts itself.
struct Probe {
    canary: u64,
    drops: Arc<AtomicU64>,
}

impl Drop for Probe {
    fn drop(&mut self) {
        assert_eq!(self.canary, 0xDEAD_BEEF, "dropped object was corrupted");
        self.drops.fetch_add(1, Ordering::Relaxed);
    }
}

/// Contract 3 + 4: all deferred drops run exactly once; counters conserve.
fn deferred_drops_all_run<R: Reclaimer>() {
    let rt = zrt(2);
    rt.run(|| {
        let em = R::new_in_runtime();
        let drops = Arc::new(AtomicU64::new(0));
        let g = em.register();
        g.pin();
        for _ in 0..100 {
            let p = alloc_local(
                &ctx::current_runtime(),
                Probe {
                    canary: 0xDEAD_BEEF,
                    drops: drops.clone(),
                },
            );
            g.defer_delete(p);
        }
        g.unpin();
        drop(g);
        em.clear();
        assert_eq!(drops.load(Ordering::Relaxed), 100, "every drop ran");
        let s = em.stats();
        assert_eq!(s.objects_deferred, 100);
        assert_eq!(
            s.objects_deferred,
            s.objects_reclaimed,
            "conservation after quiescent clear ({})",
            em.backend_name()
        );
    });
    assert_eq!(rt.live_objects(), 0);
}

/// Contract 1: a protected object is never freed under the reader.
fn no_early_free<R: Reclaimer>() {
    let rt = zrt(1);
    rt.run(|| {
        let em = R::new_in_runtime();
        let cell: AtomicObject<u64> =
            AtomicObject::new(alloc_local(&ctx::current_runtime(), 0x5EED_CAFE_u64));

        // Reader: pins and (under HP) publishes + validates a hazard on
        // the object through the root cell.
        let reader = em.register();
        reader.pin();
        let protected = reader.protect_root(0, &cell);
        assert!(!protected.is_null());

        // Writer: unlinks the object and retires it, then tries hard to
        // reclaim while the reader still holds its protection.
        let writer = em.register();
        writer.pin();
        let victim = cell.read();
        assert!(cell.compare_and_swap(victim, pgas_sim::GlobalPtr::null()));
        writer.defer_delete(victim);
        writer.unpin();
        for _ in 0..8 {
            em.try_reclaim();
        }

        // The reader's view must still be intact.
        // SAFETY: protected by the reader's pin/hazard.
        assert_eq!(unsafe { *protected.deref() }, 0x5EED_CAFE, "no early free");

        // End the protection; now reclamation must eventually succeed.
        reader.release(0);
        reader.unpin();
        drop(reader);
        drop(writer);
        em.clear();
        let s = em.stats();
        assert_eq!(s.objects_reclaimed, 1, "{}", em.backend_name());
    });
    assert_eq!(rt.live_objects(), 0);
}

/// Contract 2: reclaiming an already-empty backend never double-frees.
fn no_double_free<R: Reclaimer>() {
    let rt = zrt(1);
    rt.run(|| {
        let em = R::new_in_runtime();
        let g = em.register();
        g.pin();
        for i in 0..10u64 {
            g.defer_delete(alloc_local(&ctx::current_runtime(), i));
        }
        g.unpin();
        drop(g);
        em.clear();
        // A double free would trip the simulator's allocation tracking;
        // repeated passes must be no-ops.
        em.clear();
        em.try_reclaim();
        em.clear();
        let s = em.stats();
        assert_eq!(s.objects_reclaimed, 10, "{}", em.backend_name());
        assert_eq!(s.objects_deferred, 10);
    });
    assert_eq!(rt.live_objects(), 0);
}

/// The advertised stall-tolerance property: a guard that never unpins
/// (and protects nothing) blocks no reclamation under HP, while EBR
/// backends are allowed to stall (that asymmetry is what A8 measures).
fn stalled_reader_semantics<R: Reclaimer>() {
    let rt = zrt(1);
    rt.run(|| {
        let em = R::new_in_runtime();
        let stalled = em.register();
        stalled.pin(); // never unpinned while we retire below

        let worker = em.register();
        worker.pin();
        for i in 0..50u64 {
            worker.defer_delete(alloc_local(&ctx::current_runtime(), i));
        }
        worker.unpin();
        for _ in 0..8 {
            em.try_reclaim();
        }
        let s = em.stats();
        if em.tolerates_stalled_readers() {
            assert_eq!(
                s.objects_reclaimed,
                50,
                "{}: stalled reader must not block unrelated garbage",
                em.backend_name()
            );
        } else {
            assert!(
                s.objects_reclaimed < 50,
                "{}: EBR-style backends stall behind a pinned reader",
                em.backend_name()
            );
        }
        stalled.unpin();
        drop(stalled);
        drop(worker);
        em.clear();
        assert_eq!(em.stats().objects_reclaimed, 50);
    });
    assert_eq!(rt.live_objects(), 0);
}

macro_rules! conformance {
    ($modname:ident, $backend:ty) => {
        mod $modname {
            use super::*;

            #[test]
            fn deferred_drops_all_run() {
                super::deferred_drops_all_run::<$backend>();
            }

            #[test]
            fn no_early_free() {
                super::no_early_free::<$backend>();
            }

            #[test]
            fn no_double_free() {
                super::no_double_free::<$backend>();
            }

            #[test]
            fn stalled_reader_semantics() {
                super::stalled_reader_semantics::<$backend>();
            }
        }
    };
}

conformance!(ebr, EpochManager);
conformance!(local_ebr, LocalEpochManager);
conformance!(hp, HazardReclaimer);
