//! Generates the worked critical-path example of EXPERIMENTS.md §A9: a
//! fig3-dist-shaped distributed enqueue workload at 8 locales, traced to
//! JSON-lines and ready for the analyzer.
//!
//! ```text
//! cargo run -p pgas-bench --release --example trace_queue8
//! cargo run -p pgas-bench --release --bin trace_analyze -- \
//!     target/queue8_trace.jsonl --strict --top 3 --chrome target/queue8_perfetto.json
//! ```
//!
//! Network atomics are disabled so every remote queue operation funnels
//! through active messages — the regime where the wire / queueing /
//! handler decomposition is interesting. One task per locale keeps the
//! run cheap and the per-locale span-id sequences deterministic.

use std::sync::Arc;

use pgas_nb::prelude::*;
use pgas_nb::sim::telemetry::JsonLinesSink;

const LOCALES: usize = 8;
const OPS_PER_LOCALE: u64 = 32;
const TRACE_PATH: &str = "target/queue8_trace.jsonl";

fn main() {
    let sink = Arc::new(JsonLinesSink::create(TRACE_PATH).expect("create trace file"));
    let rt = Runtime::new(RuntimeConfig::cluster(LOCALES).without_network_atomics());
    rt.set_telemetry_sink(sink.clone());
    rt.run(|| {
        let q = MsQueue::<u64>::new();
        rt.coforall_locales(|l| {
            let tok = q.register();
            for i in 0..OPS_PER_LOCALE {
                q.enqueue(&tok, (l as u64) << 32 | i);
            }
        });
        let tok = q.register();
        let mut drained = 0u64;
        while q.dequeue(&tok).is_some() {
            drained += 1;
        }
        drop(tok);
        assert_eq!(drained, LOCALES as u64 * OPS_PER_LOCALE, "queue lost items");
        q.try_reclaim();
        q.clear_reclaim();
    });
    sink.try_flush().expect("flush trace");
    println!(
        "traced {} enqueues + {} dequeues across {LOCALES} locales -> {TRACE_PATH}",
        LOCALES as u64 * OPS_PER_LOCALE,
        LOCALES as u64 * OPS_PER_LOCALE,
    );
    println!(
        "analyze: cargo run -p pgas-bench --release --bin trace_analyze -- \
         {TRACE_PATH} --strict --top 3"
    );
}
