//! Chaos harness: runs the non-blocking structures under seeded fault
//! plans and checks the progress/safety invariants the paper's algorithms
//! promise (no lost or reordered operations, no use-after-free, monotone
//! ABA counters, progress despite a stalled pinned task).
//!
//! ```text
//! cargo run -p pgas-bench --release --bin chaos -- --seed 42
//! cargo run -p pgas-bench --release --bin chaos -- --seed 7 --workloads queue,map --quick
//! ```
//!
//! Every cell of the plan × workload matrix prints one row with the
//! injection counters and a verdict; the binary exits nonzero if any cell
//! fails. Same-seed reruns inject at identical decision points, so a
//! failing cell reproduces with its printed seed (see DESIGN.md, "Fault
//! model & invariants"). A failing cell additionally dumps its buffered
//! span trace to `target/chaos_trace_<plan>_<workload>_seed<N>.jsonl`
//! (most recent [`TRACE_RING_CAPACITY`] spans), ready for
//! `trace_analyze`.
//!
//! `--reclaimer ebr|hp` swaps the memory-reclamation backend under every
//! workload (default: epoch-based). The stalled-task plan checks opposite
//! invariants per backend: EBR must be *holding* garbage behind the pin,
//! HP must have kept *reclaiming* despite it.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pgas_nb::epoch::ReclaimSnapshot;
use pgas_nb::prelude::*;
use pgas_nb::sim::faults::invariants::InvariantChecker;
use pgas_nb::sim::{faults, telemetry, FaultPlan, OpClass, RetryPolicy, TelemetrySnapshot};

const LOCALES: usize = 4;
const TASKS_PER_LOCALE: usize = 2;
const WORKERS: u64 = (LOCALES * TASKS_PER_LOCALE) as u64;
/// Consumer id used for the single-task drain at the end of a queue cell.
const DRAIN_CONSUMER: u64 = 0xFFFF;
/// Spans buffered per cell for the failure dump (oldest evicted first).
const TRACE_RING_CAPACITY: usize = 65_536;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    Queue,
    Stack,
    Map,
}

impl Workload {
    const ALL: [Workload; 3] = [Workload::Queue, Workload::Stack, Workload::Map];

    fn label(self) -> &'static str {
        match self {
            Workload::Queue => "queue",
            Workload::Stack => "stack",
            Workload::Map => "map",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    Ebr,
    Hp,
}

impl Backend {
    fn label(self) -> &'static str {
        match self {
            Backend::Ebr => "ebr",
            Backend::Hp => "hp",
        }
    }
}

struct Scale {
    /// Structure operations per worker task.
    ops: u64,
    /// Iterations of the deterministic fingerprint cell.
    repro_ops: u64,
}

const FULL: Scale = Scale {
    ops: 400,
    repro_ops: 400,
};
const QUICK: Scale = Scale {
    ops: 120,
    repro_ops: 200,
};

/// The adversarial plans. Each gets a distinct seed offset so "--seed N"
/// reseeds the whole matrix coherently.
fn build_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "delay",
            FaultPlan::seeded(seed.wrapping_add(1)).with_delays(300, 5_000),
        ),
        (
            "drop+retry",
            FaultPlan::seeded(seed.wrapping_add(2))
                .with_drops(250)
                .with_retry(RetryPolicy {
                    timeout_ns: 10_000,
                    max_attempts: 4,
                    backoff_base_ns: 500,
                    backoff_cap_ns: 8_000,
                }),
        ),
        (
            "dup",
            FaultPlan::seeded(seed.wrapping_add(3)).with_dups(300),
        ),
        (
            "straggler",
            FaultPlan::seeded(seed.wrapping_add(4))
                .with_straggler(1, 8)
                .with_delays(100, 2_000),
        ),
        (
            "stall",
            FaultPlan::seeded(seed.wrapping_add(5))
                .with_stalled_task(1)
                .with_delays(200, 3_000),
        ),
    ]
}

fn cfg(plan: &FaultPlan) -> RuntimeConfig {
    // Network atomics off: every remote operation takes the AM path, which
    // is where drops/dups/delays bite hardest. The versioned fast-read
    // path stays on so every `read_aba` in the matrix exercises the
    // optimistic two-load window under injected drops/delays/dups too
    // (its attempts are Idempotent-class, so the retry machinery applies).
    RuntimeConfig::cluster(LOCALES)
        .without_network_atomics()
        .with_vread_fastpath(true)
        .with_faults(plan.clone())
}

struct CellOutcome {
    ops: u64,
    telemetry: TelemetrySnapshot,
    reclaim: ReclaimSnapshot,
    failures: Vec<String>,
    /// The cell's buffered span trace, oldest first — dumped to disk when
    /// the verdict is FAIL so the causal history is not lost.
    trace: Vec<telemetry::Span>,
}

type FailLog = Mutex<Vec<String>>;

fn fail(log: &FailLog, msg: String) {
    log.lock().unwrap().push(msg);
}

/// Run the worker topology: `TASKS_PER_LOCALE` tasks on every locale, plus
/// (when the plan asks for it) one extra task on the stalled locale that
/// registers a guard, pins it, and holds the pin until every worker has
/// finished — the paper's "one task stops cooperating" scenario. Returns
/// `(live, reclaimed)` sampled while the pin was still held: the number
/// of live (deferred, unreclaimed) objects, and how many objects the
/// backend managed to reclaim despite the stall.
fn drive<R: Reclaimer>(
    rt: &Runtime,
    plan: &FaultPlan,
    em: &R,
    work: impl Fn(u64) + Send + Sync,
) -> (u64, u64) {
    let done = AtomicU64::new(0);
    let live_while_stalled = AtomicU64::new(0);
    let reclaimed_while_stalled = AtomicU64::new(0);
    rt.coforall_locales(|lid| {
        let stall_here = plan.stalled_task == Some(lid);
        let tasks = TASKS_PER_LOCALE + usize::from(stall_here);
        rt.coforall_tasks(tasks, |t| {
            if stall_here && t == TASKS_PER_LOCALE {
                let tok = em.register();
                tok.pin();
                while done.load(Ordering::Acquire) < WORKERS {
                    std::thread::yield_now();
                }
                // Everyone else is finished while this pin was held the
                // whole time. Under EBR the pin blocks epoch advancement
                // and their garbage must still be visible; under HP the
                // idle guard protects nothing and reclamation continues.
                live_while_stalled.store(rt.live_objects().max(0) as u64, Ordering::Relaxed);
                reclaimed_while_stalled.store(em.stats().objects_reclaimed, Ordering::Relaxed);
                tok.unpin();
            } else {
                work(lid as u64 * TASKS_PER_LOCALE as u64 + t as u64);
                done.fetch_add(1, Ordering::Release);
            }
        });
    });
    (
        live_while_stalled.load(Ordering::Relaxed),
        reclaimed_while_stalled.load(Ordering::Relaxed),
    )
}

/// Periodic hammer on a shared ABA-protected object: reads feed the
/// checker's per-task monotonicity streams, exchanges force stamp bumps.
fn hammer_aba(aba: &AtomicAbaObject<u64>, checker: &InvariantChecker, task: u64, i: u64) {
    if i.is_multiple_of(7) {
        checker.record_aba(task, aba.read_aba().get_aba_count());
        let next = if i.is_multiple_of(14) {
            GlobalPtr::null()
        } else {
            GlobalPtr::new(0, 0x40)
        };
        aba.exchange_aba(next);
    }
}

fn queue_cell<R: Reclaimer>(
    rt: &Runtime,
    plan: &FaultPlan,
    checker: &Arc<InvariantChecker>,
    sc: &Scale,
    ops: &AtomicU64,
    log: &FailLog,
) -> (u64, u64, ReclaimSnapshot) {
    let q = MsQueue::<u64, R>::with_reclaimer();
    q.reclaimer().set_observer(checker.clone());
    let aba = AtomicAbaObject::<u64>::new_on(0, GlobalPtr::null());
    let dequeued = AtomicU64::new(0);
    let stalled = drive(rt, plan, q.reclaimer(), |task| {
        let tok = q.register();
        for i in 0..sc.ops {
            q.enqueue(&tok, task << 32 | i);
            if let Some(v) = q.dequeue(&tok) {
                // Per-(producer, consumer) dequeue order must follow
                // enqueue order — FIFO survives retry and duplication.
                checker.record_fifo((v >> 32) << 16 | task, v & 0xffff_ffff);
                dequeued.fetch_add(1, Ordering::Relaxed);
            }
            hammer_aba(&aba, checker, task, i);
            if i.is_multiple_of(64) {
                q.try_reclaim();
            }
            ops.fetch_add(1, Ordering::Relaxed);
        }
    });
    let tok = q.register();
    let mut drained = 0u64;
    while let Some(v) = q.dequeue(&tok) {
        checker.record_fifo((v >> 32) << 16 | DRAIN_CONSUMER, v & 0xffff_ffff);
        drained += 1;
    }
    drop(tok);
    let total = dequeued.load(Ordering::Relaxed) + drained;
    if total != WORKERS * sc.ops {
        fail(
            log,
            format!(
                "queue lost or invented items: enqueued {} but saw {total}",
                WORKERS * sc.ops
            ),
        );
    }
    q.try_reclaim();
    q.try_reclaim();
    q.clear_reclaim();
    (stalled.0, stalled.1, q.reclaimer().stats())
}

fn stack_cell<R: Reclaimer>(
    rt: &Runtime,
    plan: &FaultPlan,
    checker: &Arc<InvariantChecker>,
    sc: &Scale,
    ops: &AtomicU64,
    log: &FailLog,
) -> (u64, u64, ReclaimSnapshot) {
    let s = LockFreeStack::<u64, R>::with_reclaimer();
    s.reclaimer().set_observer(checker.clone());
    let aba = AtomicAbaObject::<u64>::new_on(0, GlobalPtr::null());
    let popped = AtomicU64::new(0);
    let stalled = drive(rt, plan, s.reclaimer(), |task| {
        let tok = s.register();
        for i in 0..sc.ops {
            s.push(&tok, task << 32 | i);
            if s.pop(&tok).is_some() {
                popped.fetch_add(1, Ordering::Relaxed);
            }
            hammer_aba(&aba, checker, task, i);
            if i.is_multiple_of(64) {
                s.try_reclaim();
            }
            ops.fetch_add(1, Ordering::Relaxed);
        }
    });
    let tok = s.register();
    let mut drained = 0u64;
    while s.pop(&tok).is_some() {
        drained += 1;
    }
    drop(tok);
    let total = popped.load(Ordering::Relaxed) + drained;
    if total != WORKERS * sc.ops {
        fail(
            log,
            format!(
                "stack lost or invented items: pushed {} but saw {total}",
                WORKERS * sc.ops
            ),
        );
    }
    s.try_reclaim();
    s.try_reclaim();
    s.clear_reclaim();
    (stalled.0, stalled.1, s.reclaimer().stats())
}

fn map_cell<R: Reclaimer>(
    rt: &Runtime,
    plan: &FaultPlan,
    checker: &Arc<InvariantChecker>,
    sc: &Scale,
    ops: &AtomicU64,
    log: &FailLog,
) -> (u64, u64, ReclaimSnapshot) {
    let m = DistHashMap::<u64, u64, R>::with_reclaimer(32);
    m.reclaimer().set_observer(checker.clone());
    let aba = AtomicAbaObject::<u64>::new_on(0, GlobalPtr::null());
    let stalled = drive(rt, plan, m.reclaimer(), |task| {
        let tok = m.register();
        for i in 0..sc.ops {
            let k = task << 32 | i;
            if !m.insert(&tok, k, i) {
                fail(log, format!("map insert of fresh key {k:#x} reported dup"));
            }
            if m.get(&tok, &k) != Some(i) {
                fail(log, format!("map lost its own write for key {k:#x}"));
            }
            if i % 2 == 1 && !m.remove(&tok, &k) {
                fail(log, format!("map remove of present key {k:#x} failed"));
            }
            hammer_aba(&aba, checker, task, i);
            if i.is_multiple_of(64) {
                m.try_reclaim();
            }
            ops.fetch_add(1, Ordering::Relaxed);
        }
        // Each task deletes the keys it kept; the map must end empty.
        for i in (0..sc.ops).step_by(2) {
            let k = task << 32 | i;
            if !m.remove(&tok, &k) {
                fail(
                    log,
                    format!("map lost surviving key {k:#x} before teardown"),
                );
            }
        }
    });
    if !m.is_empty() {
        fail(log, format!("map should be empty, has {} entries", m.len()));
    }
    m.try_reclaim();
    m.try_reclaim();
    m.clear_reclaim();
    (stalled.0, stalled.1, m.reclaimer().stats())
}

fn run_cell<R: Reclaimer>(plan: &FaultPlan, wl: Workload, sc: &Scale) -> CellOutcome {
    let rt = Runtime::new(cfg(plan));
    // Buffer the cell's spans so a failing verdict can ship its causal
    // history to disk. Installing a sink turns tracing on for this
    // runtime only; the repro-fingerprint cells stay sink-free.
    let ring = Arc::new(telemetry::RingSink::new(TRACE_RING_CAPACITY));
    rt.set_telemetry_sink(ring.clone());
    let checker = InvariantChecker::new();
    let ops = AtomicU64::new(0);
    let log: FailLog = Mutex::new(Vec::new());
    let (live_stalled, reclaimed_stalled, reclaim) = rt.run(|| match wl {
        Workload::Queue => queue_cell::<R>(&rt, plan, &checker, sc, &ops, &log),
        Workload::Stack => stack_cell::<R>(&rt, plan, &checker, sc, &ops, &log),
        Workload::Map => map_cell::<R>(&rt, plan, &checker, sc, &ops, &log),
    });
    let mut failures = log.into_inner().unwrap();
    let telemetry = rt.total_telemetry();
    let comm = telemetry.comm;
    let ops = ops.load(Ordering::Relaxed);

    // Progress: every worker must have completed its full loop even with a
    // stalled pinned task parked on one locale.
    if ops != WORKERS * sc.ops {
        failures.push(format!(
            "only {ops}/{} worker ops completed",
            WORKERS * sc.ops
        ));
    }
    // The stalled-task scenario proves opposite properties per backend:
    // an EBR pin must have held garbage live the whole time, while an HP
    // guard that protects nothing must not have blocked reclamation.
    if plan.stalled_task.is_some() {
        if live_stalled == 0 {
            failures.push("stalled pin held no garbage live (scenario did not bite)".into());
        }
        if R::NEEDS_PROTECT && reclaimed_stalled == 0 {
            failures.push("hazard backend reclaimed nothing behind the stalled guard".into());
        }
    }
    // Whole-cell reclamation conservation: after the teardown clear,
    // everything the structure retired must have been freed.
    if reclaim.objects_deferred != reclaim.objects_reclaimed {
        failures.push(format!(
            "reclaim conservation broken: retired {} but reclaimed {}",
            reclaim.objects_deferred, reclaim.objects_reclaimed
        ));
    }
    if rt.live_objects() != 0 {
        failures.push(format!(
            "{} objects leaked after teardown",
            rt.live_objects()
        ));
    }
    // Each configured fault class must actually have fired, and no class
    // the plan did not configure may fire.
    for (name, per_mille, count) in [
        ("drops", plan.drop_per_mille, comm.injected_drops),
        ("delays", plan.delay_per_mille, comm.injected_delays),
        ("dups", plan.dup_per_mille, comm.injected_dups),
    ] {
        if per_mille > 0 && count == 0 {
            failures.push(format!("plan configures {name} but none were injected"));
        }
        if per_mille == 0 && count != 0 {
            failures.push(format!("{count} uninvited {name} injected"));
        }
    }
    // The telemetry registry must agree with the counters: every retry
    // the counter half saw must have left exactly one backoff sample in
    // the latency half (they are incremented together at the charge
    // points).
    let retry_samples = telemetry.class(telemetry::OpClass::Retry).count();
    if retry_samples != comm.retries {
        failures.push(format!(
            "retry telemetry drifted from the retries counter: \
             {retry_samples} samples vs {} retries",
            comm.retries
        ));
    }
    if let Err(violations) = checker.check() {
        failures.extend(violations);
    }
    CellOutcome {
        ops,
        telemetry,
        reclaim,
        failures,
        trace: ring.take(),
    }
}

/// Write `spans` as JSON-lines to `path` — the same format the harness's
/// `--trace` flag produces, so `trace_analyze` consumes it directly.
fn dump_trace(path: &str, spans: &[telemetry::Span]) -> std::io::Result<()> {
    let mut out = String::with_capacity(spans.len() * 160);
    for s in spans {
        out.push_str(&s.to_json());
        out.push('\n');
    }
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)
}

/// A deterministic, contention-free cell: one task issuing a fixed
/// alternating sequence of idempotent and non-idempotent remote calls.
/// Its injection counters are a pure function of the plan's seed, so two
/// runs must agree bit-for-bit — the reproducibility contract.
fn injection_fingerprint(plan: &FaultPlan, sc: &Scale) -> (u64, u64, u64, u64) {
    let rt = Runtime::new(cfg(plan));
    rt.run(|| {
        for i in 0..sc.repro_ops {
            if i.is_multiple_of(2) {
                faults::with_class(OpClass::Idempotent, || rt.on(1, || {}));
            } else {
                rt.on(1, || {});
            }
        }
    });
    let c = rt.total_comm();
    (
        c.injected_drops,
        c.injected_delays,
        c.injected_dups,
        c.retries,
    )
}

/// Prove the invariant checker can actually catch a broken reclaimer: free
/// the *current* epoch's limbo list (a planted use-after-free bug) and
/// require the checker to flag it.
fn checker_self_test() -> Result<(), String> {
    let rt = Runtime::new(RuntimeConfig::cluster(2).without_network_atomics());
    rt.run(|| {
        let em = EpochManager::new();
        let checker = InvariantChecker::new();
        em.set_observer(checker.clone());
        let tok = em.register();
        tok.pin();
        tok.defer_delete(alloc_local(&current_runtime(), 1u64));
        tok.unpin();
        let freed = em.debug_reclaim_current_epoch_early();
        em.clear();
        drop(tok);
        if freed == 0 {
            return Err("early-free hook reclaimed nothing".to_string());
        }
        if checker.check().is_ok() {
            return Err("planted early free was NOT caught by the checker".to_string());
        }
        Ok(())
    })
}

/// The hazard-pointer twin of [`checker_self_test`]: retire an object that
/// another guard holds a validated hazard on, run the planted buggy scan
/// that ignores hazard slots, and require the checker to flag the
/// violation.
fn checker_self_test_hp() -> Result<(), String> {
    let rt = Runtime::new(RuntimeConfig::cluster(2).without_network_atomics());
    rt.run(|| {
        let dom = HazardReclaimer::new();
        let checker = InvariantChecker::new();
        dom.set_observer(checker.clone());
        let reader = dom.register();
        let writer = dom.register();
        let cell = AtomicObject::new(alloc_local(&current_runtime(), 11u64));
        let held = reader.protect_root(0, &cell);
        if held.is_null() {
            return Err("hazard publication failed".to_string());
        }
        let fresh = alloc_local(&current_runtime(), 12u64);
        writer.defer_delete(cell.exchange(fresh));
        // A correct scan keeps the protected object alive.
        dom.try_reclaim();
        if checker.check().is_err() {
            return Err("correct scan was flagged as a violation".to_string());
        }
        // The planted bug frees it anyway; the checker must object.
        dom.debug_scan_ignoring_hazards();
        let caught = checker
            .check()
            .is_err_and(|errs| errs.iter().any(|e| e.contains("hazard violation")));
        // Teardown: the protected object was (incorrectly) freed by the
        // planted bug; only the current cell object remains.
        writer.defer_delete(cell.read());
        drop(reader);
        drop(writer);
        dom.clear();
        if !caught {
            return Err("planted hazard violation was NOT caught by the checker".to_string());
        }
        Ok(())
    })
}

/// The versioned-read twin of [`checker_self_test`]: a writer churns an
/// ABA cell so it always holds a self-consistent `{pointer == count *
/// MULT}` pair while readers take fast reads. With the planted
/// `debug_vread_skip_validate` bug the unvalidated (and deliberately
/// widened) two-load window must surface at least one mixed pair; a clean
/// control round must surface none — proving the torn-read oracle has
/// teeth and validation is load-bearing.
fn checker_self_test_vread() -> Result<(), String> {
    const MULT: u64 = 0x9E37_79B9;
    let torn_pairs = |planted: bool| -> u64 {
        let prev = pgas_nb::sim::engine::debug_vread_skip_validate(planted);
        let rt = Runtime::new(
            RuntimeConfig::cluster(2)
                .with_vread_fastpath(true)
                .with_vread_max_tries(8),
        );
        let torn = rt.run(|| {
            let cell = AtomicAbaObject::<u64>::new_on(1, GlobalPtr::null());
            let torn = AtomicU64::new(0);
            rt.coforall_tasks(3, |t| {
                if t == 0 {
                    for k in 1..=256u64 {
                        cell.write_aba(GlobalPtr::from_bits(k.wrapping_mul(MULT)));
                    }
                } else {
                    for _ in 0..1024 {
                        let snap = cell.read_aba();
                        if snap.get_object().into_bits() != snap.get_aba_count().wrapping_mul(MULT)
                        {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
            torn.load(Ordering::Relaxed)
        });
        pgas_nb::sim::engine::debug_vread_skip_validate(prev);
        torn
    };
    if torn_pairs(false) != 0 {
        return Err("validated fast reads surfaced a torn pair".to_string());
    }
    // The tear is a real-thread race; retry a few rounds so the planted
    // bug is caught deterministically.
    for _ in 0..50 {
        if torn_pairs(true) > 0 {
            return Ok(());
        }
    }
    Err("planted validation skip was NOT caught by the torn-read oracle".to_string())
}

fn print_row(plan: &str, workload: &str, detail: &str, ok: bool) {
    println!(
        "{plan:<12} {workload:<9} {detail:<58} {}",
        if ok { "ok" } else { "FAIL" }
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sc = if quick { &QUICK } else { &FULL };
    let mut seed = 42u64;
    let mut workloads: Vec<Workload> = Workload::ALL.to_vec();
    let mut backend = Backend::Ebr;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--workloads" => {
                let list = it.next().expect("--workloads takes a comma list");
                workloads = list
                    .split(',')
                    .map(|w| match w {
                        "queue" => Workload::Queue,
                        "stack" => Workload::Stack,
                        "map" => Workload::Map,
                        other => panic!("unknown workload {other:?} (queue|stack|map)"),
                    })
                    .collect();
            }
            "--reclaimer" => {
                backend = match it.next().expect("--reclaimer takes ebr|hp").as_str() {
                    "ebr" => Backend::Ebr,
                    "hp" => Backend::Hp,
                    other => panic!("unknown reclaimer {other:?} (ebr|hp)"),
                };
            }
            "--quick" => {}
            "--engine" => {
                match it.next().expect("--engine takes sim|proc").as_str() {
                    "sim" => {}
                    // Fail fast and loud rather than hang: fault injection
                    // lives in the simulator's virtual NIC (drop/delay/dup
                    // hooks on the modeled network), which the process
                    // backend's real TCP transport has no equivalent of.
                    "proc" => {
                        eprintln!(
                            "chaos: --engine proc is not supported — fault injection \
                             (drops/delays/dups) hooks the simulator's virtual NIC, \
                             which the process backend's real TCP transport does not \
                             have; run chaos with --engine sim"
                        );
                        std::process::exit(2);
                    }
                    other => panic!("unknown engine {other:?} (expected sim|proc)"),
                }
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    println!(
        "chaos harness: seed={seed} locales={LOCALES} workers={WORKERS} \
         ops/worker={} reclaimer={} ({})",
        sc.ops,
        backend.label(),
        if quick { "quick" } else { "full" }
    );
    println!(
        "{:<12} {:<9} {:<58} verdict",
        "plan", "workload", "injections"
    );

    let mut failed = 0u32;
    for (pname, plan) in build_plans(seed) {
        for &wl in &workloads {
            let out = match backend {
                Backend::Ebr => run_cell::<EpochManager>(&plan, wl, sc),
                Backend::Hp => run_cell::<HazardReclaimer>(&plan, wl, sc),
            };
            let comm = &out.telemetry.comm;
            let detail = format!(
                "ops={} drops={} delays={} dups={} retries={} gave_up={}",
                out.ops,
                comm.injected_drops,
                comm.injected_delays,
                comm.injected_dups,
                comm.retries,
                comm.gave_up,
            );
            let ok = out.failures.is_empty();
            print_row(pname, wl.label(), &detail, ok);
            println!(
                "    └─ reclaim[{}]: retired={} reclaimed={} scans={} protects={}",
                backend.label(),
                out.reclaim.objects_deferred,
                out.reclaim.objects_reclaimed,
                out.reclaim.advances,
                out.reclaim.hazard_protects,
            );
            if !ok {
                // Full registry snapshot for the failing cell — rendered,
                // not hand-picked, so nothing is missing when debugging.
                println!("    comm: {}", comm.to_json());
                println!("    latency: {}", out.telemetry.latency_json());
                // Seed-stamped span dump: the failing cell's causal
                // history, replayable through trace_analyze.
                let path = format!("target/chaos_trace_{pname}_{}_seed{seed}.jsonl", wl.label());
                match dump_trace(&path, &out.trace) {
                    Ok(()) => println!("    trace: {} spans -> {path}", out.trace.len()),
                    Err(e) => println!("    trace: dump to {path} failed: {e}"),
                }
            }
            for f in &out.failures {
                println!("    !! {f}");
                failed += 1;
            }
        }
        let a = injection_fingerprint(&plan, sc);
        let b = injection_fingerprint(&plan, sc);
        let ok = a == b;
        print_row(pname, "repro", &format!("run1={a:?} run2={b:?}"), ok);
        if !ok {
            println!("    !! same-seed reruns diverged");
            failed += 1;
        }
    }

    match checker_self_test() {
        Ok(()) => print_row("self-test", "ebr", "planted early free caught", true),
        Err(e) => {
            print_row("self-test", "ebr", &e, false);
            failed += 1;
        }
    }
    match checker_self_test_hp() {
        Ok(()) => print_row("self-test", "hp", "planted hazard violation caught", true),
        Err(e) => {
            print_row("self-test", "hp", &e, false);
            failed += 1;
        }
    }
    match checker_self_test_vread() {
        Ok(()) => print_row("self-test", "vread", "planted validation skip caught", true),
        Err(e) => {
            print_row("self-test", "vread", &e, false);
            failed += 1;
        }
    }

    if failed > 0 {
        println!("\nchaos: {failed} failure(s)");
        ExitCode::FAILURE
    } else {
        println!("\nchaos: all cells passed");
        ExitCode::SUCCESS
    }
}
