//! jq-free schema validator for the harness outputs, run by CI's
//! `telemetry-overhead` job:
//!
//! ```text
//! cargo run -p pgas-bench --release --bin validate_results -- BENCH_results.json
//! cargo run -p pgas-bench --release --bin validate_results -- BENCH_results.json --trace target/trace.jsonl
//! ```
//!
//! Checks, exiting nonzero with a message on the first class of violation:
//!
//! * the results file is a non-empty JSON array of row objects;
//! * every row carries the legacy fields (`name`, `locales`, `vtime_ns`,
//!   `ns_per_op`, `mops`, `am_count`, five chaos counters) with the right
//!   types, plus the telemetry fields: `comm` (full counter object or
//!   null, consistent with `am_count`) and `latency` (object mapping op
//!   class → `{count, p50, p99, p999, max, mean}` with
//!   `p50 ≤ p99 ≤ p999 ≤ max`);
//! * `reclaim` is null everywhere except the A8 reclamation-ablation
//!   rows, which must carry the per-backend counters (backend name,
//!   retired/reclaimed/scans/hazard-protects, stalled-task numbers) with
//!   `reclaimed ≤ retired`, no hazard publications under EBR, and
//!   progress behind the stall under HP;
//! * `shard` is null everywhere except the A11 `sharded` rows, which must
//!   carry the full routing-counter object (local/remote point ops, bulk
//!   item splits, rebalance stats, active shard count + generation); a
//!   row claiming remote-shard ops with zero AMs on the wire is rejected;
//! * the three versioned-read counters (`vread_fast`/`vread_retries`/
//!   `vread_fallbacks`) are zero on every row except the A10 `vread=on`
//!   rows, where validated fast reads must exist and fallbacks cannot
//!   exceed retries;
//! * the A1 scatter rows and A10 vread rows CI pins are present;
//! * with `--trace`, every line of the span trace parses, carries the
//!   causal-identity fields (`trace`, `span`, `parent`), and satisfies
//!   `issue ≤ arrive ≤ start ≤ end`;
//! * with `--engine proc`, every row must carry `engine: "proc"` (the
//!   process-backend rows from `procbench`) and the pinned sim series
//!   checks are skipped — a proc run regenerates none of the figures.

use std::process::ExitCode;

use pgas_bench::json::{parse, Value};

/// Counter keys every `comm` object must carry (the `counters!` list).
const COMM_KEYS: [&str; 25] = [
    "rdma_atomics",
    "cpu_atomics",
    "cpu_dcas",
    "am_sent",
    "am_handled",
    "am_batches",
    "am_batch_items",
    "combines",
    "combined_ops",
    "puts",
    "gets",
    "bytes_put",
    "bytes_got",
    "remote_allocs",
    "remote_frees",
    "bulk_frees",
    "bulk_freed_objects",
    "retries",
    "gave_up",
    "injected_drops",
    "injected_delays",
    "injected_dups",
    "vread_fast",
    "vread_retries",
    "vread_fallbacks",
];

fn num(row: &Value, key: &str) -> Result<f64, String> {
    row.get(key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .as_num()
        .ok_or_else(|| format!("key {key:?} is not a number"))
}

fn num_or_null(row: &Value, key: &str) -> Result<Option<f64>, String> {
    let v = row.get(key).ok_or_else(|| format!("missing key {key:?}"))?;
    if v.is_null() {
        Ok(None)
    } else {
        v.as_num()
            .map(Some)
            .ok_or_else(|| format!("key {key:?} is neither number nor null"))
    }
}

fn check_latency(lat: &Value) -> Result<(), String> {
    let map = lat.as_obj().ok_or("latency is not an object")?;
    for (class, h) in map {
        let ctx = |e: String| format!("latency[{class:?}]: {e}");
        let count = num(h, "count").map_err(ctx)?;
        let p50 = num(h, "p50").map_err(ctx)?;
        let p99 = num(h, "p99").map_err(ctx)?;
        let p999 = num(h, "p999").map_err(ctx)?;
        let max = num(h, "max").map_err(ctx)?;
        let _mean = num(h, "mean").map_err(ctx)?;
        if count < 1.0 {
            return Err(format!("latency[{class:?}]: empty class was emitted"));
        }
        if !(p50 <= p99 && p99 <= p999 && p999 <= max) {
            return Err(format!(
                "latency[{class:?}]: percentiles not ordered \
                 (p50={p50} p99={p99} p999={p999} max={max})"
            ));
        }
    }
    Ok(())
}

/// The A11 sharded rows' per-structure shard-routing counters.
///
/// Only A11 `sharded` rows carry the object (legacy rows and every other
/// series must say `shard: null`); when present it must hold the full
/// counter set, a sane shard-count/generation pair, and — the honesty
/// check — any row claiming remote-shard traffic must also have AMs on
/// the wire: a privatized map whose remote ops are free is a routing bug,
/// not a speedup.
fn check_shard(name: &str, shard: &Value, am_count: Option<f64>) -> Result<(), String> {
    let is_a11_sharded = name.starts_with("A11 sharded");
    if shard.is_null() {
        return if is_a11_sharded {
            Err("A11 sharded row with null shard object".into())
        } else {
            Ok(())
        };
    }
    if !is_a11_sharded {
        return Err("non-sharded row carries a shard object".into());
    }
    shard.as_obj().ok_or("shard is not an object")?;
    for key in [
        "local_ops",
        "remote_ops",
        "bulk_local_items",
        "bulk_remote_items",
        "rebalances",
        "moved_keys",
        "active_shards",
        "generation",
    ] {
        num(shard, key).map_err(|e| format!("shard: {e}"))?;
    }
    let remote = num(shard, "remote_ops").unwrap();
    let local = num(shard, "local_ops").unwrap();
    let active = num(shard, "active_shards").unwrap();
    if active < 1.0 {
        return Err(format!("shard: active_shards ({active}) below 1"));
    }
    if local + remote == 0.0 {
        return Err("shard: row measured no point ops at all".into());
    }
    if remote > 0.0 && am_count.unwrap_or(0.0) == 0.0 {
        return Err(format!(
            "shard: {remote} remote-shard ops but zero AMs on the wire \
             — shard routing is lying about locality"
        ));
    }
    Ok(())
}

/// The A8 rows' per-backend reclamation counters.
fn check_reclaim(name: &str, reclaim: &Value) -> Result<(), String> {
    let is_a8 = name.starts_with("A8 ");
    if reclaim.is_null() {
        return if is_a8 {
            Err("A8 row with null reclaim object".into())
        } else {
            Ok(())
        };
    }
    if !is_a8 {
        return Err("non-A8 row carries a reclaim object".into());
    }
    reclaim.as_obj().ok_or("reclaim is not an object")?;
    let backend = reclaim
        .get("backend")
        .and_then(Value::as_str)
        .ok_or("reclaim: missing/invalid backend")?;
    if !matches!(backend, "ebr" | "local-ebr" | "hp") {
        return Err(format!("reclaim: unknown backend {backend:?}"));
    }
    for key in [
        "retired",
        "reclaimed",
        "scans",
        "hazard_protects",
        "stalled_outstanding",
        "stalled_reclaimed",
    ] {
        num(reclaim, key).map_err(|e| format!("reclaim: {e}"))?;
    }
    let stalled = match reclaim.get("stalled") {
        Some(Value::Bool(b)) => *b,
        _ => return Err("reclaim: missing/invalid stalled flag".into()),
    };
    let retired = num(reclaim, "retired").unwrap();
    let reclaimed = num(reclaim, "reclaimed").unwrap();
    let protects = num(reclaim, "hazard_protects").unwrap();
    if reclaimed > retired {
        return Err(format!(
            "reclaim: reclaimed ({reclaimed}) exceeds retired ({retired})"
        ));
    }
    if backend == "hp" && protects == 0.0 {
        return Err("reclaim: hp backend published no hazards".into());
    }
    if backend != "hp" && protects != 0.0 {
        return Err(format!(
            "reclaim: {backend} backend claims {protects} hazard publications"
        ));
    }
    let stalled_reclaimed = num(reclaim, "stalled_reclaimed").unwrap();
    if stalled && backend == "hp" && stalled_reclaimed == 0.0 {
        return Err("reclaim: hp made no progress behind the stalled task".into());
    }
    if stalled && backend == "ebr" && stalled_reclaimed != 0.0 {
        return Err(format!(
            "reclaim: ebr reclaimed {stalled_reclaimed} objects behind a stalled pin"
        ));
    }
    Ok(())
}

fn check_row(row: &Value) -> Result<(), String> {
    row.as_obj().ok_or("row is not an object")?;
    let name = row
        .get("name")
        .and_then(Value::as_str)
        .ok_or("missing/invalid name")?;
    let ctx = |e: String| format!("row {name:?}: {e}");
    num(row, "locales").map_err(ctx)?;
    num(row, "vtime_ns").map_err(ctx)?;
    num_or_null(row, "ns_per_op").map_err(ctx)?;
    num_or_null(row, "mops").map_err(ctx)?;
    let am_count = num_or_null(row, "am_count").map_err(ctx)?;
    for key in [
        "retries",
        "gave_up",
        "injected_drops",
        "injected_delays",
        "injected_dups",
    ] {
        num(row, key).map_err(ctx)?;
    }

    let comm = row
        .get("comm")
        .ok_or("missing key \"comm\"")
        .map_err(|e| ctx(e.into()))?;
    match (comm.is_null(), am_count) {
        (true, Some(_)) => return Err(ctx("am_count set but comm is null".into())),
        (false, None) => return Err(ctx("comm set but am_count is null".into())),
        (false, Some(am)) => {
            for key in COMM_KEYS {
                num(comm, key).map_err(|e| ctx(format!("comm: {e}")))?;
            }
            let am_sent = num(comm, "am_sent").unwrap();
            if am_sent != am {
                return Err(ctx(format!(
                    "am_count ({am}) disagrees with comm.am_sent ({am_sent})"
                )));
            }
            // The versioned fast-read path is only enabled on the A10
            // vread=on rows; anywhere else a nonzero vread counter means
            // the seqlock leaked into a baseline configuration.
            let fast = num(comm, "vread_fast").unwrap();
            let retries = num(comm, "vread_retries").unwrap();
            let fallbacks = num(comm, "vread_fallbacks").unwrap();
            if name.contains("vread=on") {
                if fallbacks > retries {
                    return Err(ctx(format!(
                        "comm: vread_fallbacks ({fallbacks}) exceeds vread_retries \
                         ({retries}) — every fallback needs a torn window first"
                    )));
                }
                if fast == 0.0 {
                    return Err(ctx("comm: vread=on row validated no fast reads".into()));
                }
            } else if (fast, retries, fallbacks) != (0.0, 0.0, 0.0) {
                return Err(ctx(format!(
                    "comm: vread counters nonzero outside an A10 vread=on row \
                     (fast={fast} retries={retries} fallbacks={fallbacks})"
                )));
            }
        }
        (true, None) => {}
    }

    let lat = row
        .get("latency")
        .ok_or("missing key \"latency\"")
        .map_err(|e| ctx(e.into()))?;
    check_latency(lat).map_err(ctx)?;

    let reclaim = row
        .get("reclaim")
        .ok_or("missing key \"reclaim\"")
        .map_err(|e| ctx(e.into()))?;
    check_reclaim(name, reclaim).map_err(ctx)?;

    let shard = row
        .get("shard")
        .ok_or("missing key \"shard\"")
        .map_err(|e| ctx(e.into()))?;
    check_shard(name, shard, am_count).map_err(ctx)?;

    // A row measured with a runtime in hand must have latency samples:
    // every remote (or tracked local) operation records into some class.
    if !comm.is_null() && lat.as_obj().unwrap().is_empty() {
        return Err(ctx("comm present but latency is empty".into()));
    }
    Ok(())
}

fn check_results(text: &str, engine: &str) -> Result<usize, String> {
    let doc = parse(text)?;
    let rows = doc.as_arr().ok_or("top level is not an array")?;
    if rows.is_empty() {
        return Err("results array is empty".into());
    }
    for row in rows {
        check_row(row)?;
        // The engine tag is optional on sim rows (older files predate it)
        // but must match the engine under validation when present; a proc
        // run must tag every row.
        let name = row.get("name").and_then(Value::as_str).unwrap_or("?");
        match row.get("engine") {
            None if engine == "sim" => {}
            None => {
                return Err(format!(
                    "row {name:?}: missing engine tag (expected {engine:?})"
                ))
            }
            Some(v) => {
                let tag = v
                    .as_str()
                    .ok_or_else(|| format!("row {name:?}: engine tag is not a string"))?;
                if tag != engine {
                    return Err(format!(
                        "row {name:?}: engine {tag:?} in a file validated as {engine:?}"
                    ));
                }
            }
        }
    }
    if engine == "proc" {
        // The pinned sim series below come from the figure harness; a proc
        // run produces its own (much smaller) set of rows.
        return Ok(rows.len());
    }
    // The rows CI's perf guard pins must exist under their stable names.
    for series in [
        "A1 scatter=on",
        "A1 scatter=off",
        "A8 stack ebr stalled_task",
        "A8 stack hp stalled_task",
        "A10 90% read vread=off",
        "A10 90% read vread=on",
        "A10 99% read vread=off",
        "A10 99% read vread=on",
        "A11 legacy zipf=0.99 mix=90/10",
        "A11 sharded zipf=0.99 mix=90/10",
    ] {
        if !rows
            .iter()
            .any(|r| r.get("name").and_then(Value::as_str) == Some(series))
        {
            return Err(format!("pinned series {series:?} is missing"));
        }
    }
    Ok(rows.len())
}

fn check_trace(text: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let span = parse(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
        let ctx = |e: String| format!("trace line {}: {e}", i + 1);
        span.get("class")
            .and_then(Value::as_str)
            .ok_or_else(|| ctx("missing/invalid class".into()))?;
        num(&span, "src").map_err(ctx)?;
        num(&span, "dest").map_err(ctx)?;
        let issue = num(&span, "issue").map_err(ctx)?;
        let arrive = num(&span, "arrive").map_err(ctx)?;
        let start = num(&span, "start").map_err(ctx)?;
        let end = num(&span, "end").map_err(ctx)?;
        num(&span, "tag").map_err(ctx)?;
        num(&span, "trace").map_err(ctx)?;
        num(&span, "span").map_err(ctx)?;
        num(&span, "parent").map_err(ctx)?;
        if !(issue <= arrive && arrive <= start && start <= end) {
            return Err(ctx(format!(
                "span stamps not ordered: issue={issue} arrive={arrive} start={start} end={end}"
            )));
        }
        n += 1;
    }
    if n == 0 {
        return Err("trace file contains no spans".into());
    }
    Ok(n)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut results_path = None;
    let mut trace_path = None;
    let mut engine = "sim".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace_path = Some(it.next().expect("--trace takes a path").clone()),
            "--engine" => {
                engine = it.next().expect("--engine takes sim|proc").clone();
                assert!(
                    matches!(engine.as_str(), "sim" | "proc"),
                    "unknown engine {engine:?} (expected sim|proc)"
                );
            }
            other => results_path = Some(other.to_string()),
        }
    }
    let results_path = results_path.unwrap_or_else(|| "BENCH_results.json".to_string());

    let text = match std::fs::read_to_string(&results_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate: cannot read {results_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_results(&text, &engine) {
        Ok(n) => println!("validate: {results_path}: {n} rows ok"),
        Err(e) => {
            eprintln!("validate: {results_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(tp) = trace_path {
        let text = match std::fs::read_to_string(&tp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("validate: cannot read {tp}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_trace(&text) {
            Ok(n) => println!("validate: {tp}: {n} spans ok"),
            Err(e) => {
                eprintln!("validate: {tp}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
