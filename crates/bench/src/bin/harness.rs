//! The figure harness: regenerates every table/figure of the paper's
//! evaluation section (§III, Figures 3–7) plus the DESIGN.md ablations.
//!
//! ```text
//! cargo run -p pgas-bench --release --bin harness -- all
//! cargo run -p pgas-bench --release --bin harness -- fig3
//! cargo run -p pgas-bench --release --bin harness -- fig4 fig5 fig6 fig7
//! cargo run -p pgas-bench --release --bin harness -- ablations
//! cargo run -p pgas-bench --release --bin harness -- --quick all
//! ```
//!
//! Each figure prints one row per measured point. `vtime` is the virtual
//! makespan from the simulator's Aries-class cost model (the number whose
//! *shape* reproduces the paper); `wall` is host wall-clock time and only
//! meaningful as an implementation-overhead sanity check.
//!
//! Every measured row is also collected and written to
//! `BENCH_results.json` as `{name, locales, vtime_ns, ns_per_op, mops,
//! am_count, retries, gave_up, injected_drops, injected_delays,
//! injected_dups}` so CI (and plotting scripts) can consume the run
//! without scraping the text output. `locales` is the row's sweep
//! coordinate (the task count for shared-memory panels, the hop count for
//! A6); `am_count` is null for series that do not report an AM total. The
//! last five fields are the fault-injection counters — always zero here
//! (the harness never installs a fault plan), which CI asserts so a chaos
//! configuration can never leak into the performance baselines.

use std::sync::Mutex;

use pgas_nb::sim::CommSnapshot;

use pgas_bench::{
    ablate_combining, ablate_election, ablate_local_manager, ablate_privatization,
    ablate_reclamation_scheme, ablate_scatter, ablate_wide, comm_breakdown, fig3_dist, fig3_shared,
    fig7_read_only, fig_deletion, runtime, CombineWorkload, Sample, Variant, LOCALE_SWEEP,
    TASK_SWEEP,
};

/// Fault-injection counters carried on every row. All-zero on a clean
/// (fault-free) run — CI's perf guard asserts exactly that, so a fault
/// plan accidentally left enabled can never masquerade as a regression.
#[derive(Default, Clone, Copy)]
struct ChaosCounters {
    retries: u64,
    gave_up: u64,
    injected_drops: u64,
    injected_delays: u64,
    injected_dups: u64,
}

impl ChaosCounters {
    fn from_comm(c: &CommSnapshot) -> ChaosCounters {
        ChaosCounters {
            retries: c.retries,
            gave_up: c.gave_up,
            injected_drops: c.injected_drops,
            injected_delays: c.injected_delays,
            injected_dups: c.injected_dups,
        }
    }
}

/// One row of `BENCH_results.json`.
struct Record {
    name: String,
    locales: usize,
    vtime_ns: u64,
    ns_per_op: f64,
    mops: f64,
    am_count: Option<u64>,
    chaos: ChaosCounters,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

struct Scale {
    fig3_ops: u64,
    fig4_objects: usize,
    fig5_objects: usize,
    fig6_objects: usize,
    fig7_iters: u64,
    ablate_objects: usize,
}

const FULL: Scale = Scale {
    fig3_ops: 1 << 16,
    fig4_objects: 1 << 15,
    fig5_objects: 1 << 13,
    fig6_objects: 1 << 14,
    fig7_iters: 1 << 13,
    ablate_objects: 1 << 13,
};

const QUICK: Scale = Scale {
    fig3_ops: 1 << 12,
    fig4_objects: 1 << 11,
    fig5_objects: 1 << 9,
    fig6_objects: 1 << 11,
    fig7_iters: 1 << 9,
    ablate_objects: 1 << 9,
};

fn row(label: &str, x_name: &str, x: usize, extra: &str, s: Sample) {
    row_full(label, x_name, x, extra, s, None, ChaosCounters::default());
}

/// A row whose runtime exposed a [`CommSnapshot`]: records the AM total
/// and the fault-injection counters alongside the timing.
fn row_comm(label: &str, x_name: &str, x: usize, extra: &str, s: Sample, comm: &CommSnapshot) {
    row_full(
        label,
        x_name,
        x,
        extra,
        s,
        Some(comm.am_sent),
        ChaosCounters::from_comm(comm),
    );
}

fn row_full(
    label: &str,
    x_name: &str,
    x: usize,
    extra: &str,
    s: Sample,
    am: Option<u64>,
    chaos: ChaosCounters,
) {
    println!(
        "{label:<34} {x_name}={x:<3} {extra:<18} vtime={:>12.3} ms  \
         ns/op={:>9.1}  mops={:>8.2}  wall={:>8.1} ms",
        s.vtime_ns as f64 / 1e6,
        s.ns_per_op(),
        s.mops(),
        s.wall_ns as f64 / 1e6,
    );
    // The series name is the label plus any *configuration* qualifier;
    // measured extras (`AMs=123`, `reclaimed=512`, ...) are data, not
    // identity, and stay out so a series keeps one stable name.
    let mut name = label.trim().to_string();
    let extra = extra.trim();
    let is_measured = extra
        .split_once('=')
        .is_some_and(|(_, v)| !v.is_empty() && v.chars().all(|c| c.is_ascii_digit()));
    if !extra.is_empty() && !is_measured {
        name.push(' ');
        name.push_str(extra);
    }
    RECORDS.lock().unwrap().push(Record {
        name,
        locales: x,
        vtime_ns: s.vtime_ns,
        ns_per_op: s.ns_per_op(),
        mops: s.mops(),
        am_count: am,
        chaos,
    });
}

/// Minimal JSON string escape (the harness only emits ASCII labels, but a
/// backslash or quote must not corrupt the file).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number, or `null` for non-finite values (infinite mops on a
/// zero-vtime row must not produce invalid JSON).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn write_results_json(path: &str) {
    let recs = RECORDS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in recs.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": {}, \"locales\": {}, \"vtime_ns\": {}, \
             \"ns_per_op\": {}, \"mops\": {}, \"am_count\": {}, \
             \"retries\": {}, \"gave_up\": {}, \"injected_drops\": {}, \
             \"injected_delays\": {}, \"injected_dups\": {}}}{}\n",
            jstr(&r.name),
            r.locales,
            r.vtime_ns,
            jnum(r.ns_per_op),
            jnum(r.mops),
            r.am_count.map_or("null".to_string(), |a| a.to_string()),
            r.chaos.retries,
            r.chaos.gave_up,
            r.chaos.injected_drops,
            r.chaos.injected_delays,
            r.chaos.injected_dups,
            if i + 1 < recs.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    match std::fs::write(path, out) {
        Ok(()) => println!("results: {path} ({} rows)", recs.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn fig3(sc: &Scale) {
    println!(
        "\n=== Figure 3: AtomicObject vs atomic int (25/25/25/25 read/write/CAS/exchange) ==="
    );
    println!("--- shared memory: strong scaling over tasks, 1 locale ---");
    for net in [true, false] {
        let net_lbl = if net {
            "net-atomics=on"
        } else {
            "net-atomics=off"
        };
        for variant in Variant::ALL {
            for &tasks in &TASK_SWEEP {
                let rt = runtime(1, net);
                let s = fig3_shared(&rt, tasks, sc.fig3_ops, variant);
                row_comm(
                    variant.label(),
                    "tasks",
                    tasks,
                    net_lbl,
                    s,
                    &rt.total_comm(),
                );
            }
        }
    }
    println!("--- distributed: strong scaling over locales, 4 tasks/locale ---");
    for net in [true, false] {
        let net_lbl = if net {
            "net-atomics=on"
        } else {
            "net-atomics=off"
        };
        for variant in Variant::ALL {
            for &locales in &LOCALE_SWEEP {
                let rt = runtime(locales, net);
                let s = fig3_dist(&rt, 4, sc.fig3_ops, variant);
                row_comm(
                    variant.label(),
                    "locales",
                    locales,
                    net_lbl,
                    s,
                    &rt.total_comm(),
                );
                if locales == *LOCALE_SWEEP.last().unwrap() {
                    println!(
                        "    └─ comm @{locales} locales: {}",
                        comm_breakdown(&rt.total_comm())
                    );
                }
            }
        }
    }
}

fn fig_deletion_sweep(name: &str, objects: usize, per_iter: Option<u64>, remote_pct: u32) {
    for net in [true, false] {
        let net_lbl = if net {
            "net-atomics=on"
        } else {
            "net-atomics=off"
        };
        for &locales in &LOCALE_SWEEP {
            let rt = runtime(locales, net);
            let (s, stats) = fig_deletion(&rt, objects, per_iter, remote_pct);
            row_comm(name, "locales", locales, net_lbl, s, &rt.total_comm());
            if locales == *LOCALE_SWEEP.last().unwrap() {
                println!("    └─ reclaim stats @{locales} locales: {stats}");
                println!(
                    "    └─ comm @{locales} locales: {}",
                    comm_breakdown(&rt.total_comm())
                );
            }
        }
    }
}

fn fig4(sc: &Scale) {
    println!("\n=== Figure 4: deletion, tryReclaim every 1024 iterations ===");
    fig_deletion_sweep(
        "deferDelete+tryReclaim/1024",
        sc.fig4_objects,
        Some(1024),
        50,
    );
}

fn fig5(sc: &Scale) {
    println!("\n=== Figure 5: deletion, tryReclaim every iteration ===");
    fig_deletion_sweep("deferDelete+tryReclaim/1", sc.fig5_objects, Some(1), 50);
}

fn fig6(sc: &Scale) {
    println!("\n=== Figure 6: deletion, reclamation only at end; remote ratio 0/50/100% ===");
    for remote_pct in [0u32, 50, 100] {
        for &locales in &LOCALE_SWEEP {
            let rt = runtime(locales, true);
            let (s, _) = fig_deletion(&rt, sc.fig6_objects, None, remote_pct);
            row_comm(
                &format!("defer+clear remote={remote_pct}%"),
                "locales",
                locales,
                "net-atomics=on",
                s,
                &rt.total_comm(),
            );
        }
    }
}

fn fig7(sc: &Scale) {
    println!("\n=== Figure 7: read-only workload (pin/unpin), no deletion ===");
    for net in [true, false] {
        let net_lbl = if net {
            "net-atomics=on"
        } else {
            "net-atomics=off"
        };
        for &locales in &LOCALE_SWEEP {
            let rt = runtime(locales, net);
            let s = fig7_read_only(&rt, 4, sc.fig7_iters);
            row_comm(
                "pin/unpin read-only",
                "locales",
                locales,
                net_lbl,
                s,
                &rt.total_comm(),
            );
            if locales == *LOCALE_SWEEP.last().unwrap() {
                println!(
                    "    └─ comm @{locales} locales: {}",
                    comm_breakdown(&rt.total_comm())
                );
            }
        }
    }
}

fn ablations(sc: &Scale) {
    println!("\n=== Ablation A1: scatter-list bulk free vs per-object remote frees ===");
    for &locales in &[2usize, 4, 8] {
        for scatter in [true, false] {
            let rt = runtime(locales, true);
            let (s, comm) = ablate_scatter(&rt, sc.ablate_objects, scatter);
            row_comm(
                if scatter {
                    "A1 scatter=on "
                } else {
                    "A1 scatter=off"
                },
                "locales",
                locales,
                &format!("AMs={}", comm.am_sent),
                s,
                &comm,
            );
            if locales == 8 {
                println!("    └─ comm @{locales} locales: {}", comm_breakdown(&comm));
            }
        }
    }

    println!("\n=== Ablation A2: privatized instance vs single shared instance ===");
    for &locales in &[2usize, 4, 8] {
        for privatized in [true, false] {
            let rt = runtime(locales, false);
            let s = ablate_privatization(&rt, sc.fig7_iters, privatized);
            row_comm(
                if privatized {
                    "privatized "
                } else {
                    "shared@L0  "
                },
                "locales",
                locales,
                "net-atomics=off",
                s,
                &rt.total_comm(),
            );
        }
    }

    println!("\n=== Ablation A3: reclamation election vs every-caller scans ===");
    for &locales in &[2usize, 4, 8] {
        for elected in [true, false] {
            let rt = runtime(locales, true);
            let s = ablate_election(&rt, sc.ablate_objects / 4, elected);
            row_comm(
                if elected {
                    "election=on "
                } else {
                    "election=off"
                },
                "locales",
                locales,
                "tryReclaim/iter",
                s,
                &rt.total_comm(),
            );
        }
    }

    println!("\n=== Ablation A5: LocalEpochManager vs EpochManager (single locale) ===");
    for local in [true, false] {
        let (s, advances) = ablate_local_manager(sc.ablate_objects, local);
        row(
            if local {
                "LocalEpochManager"
            } else {
                "EpochManager     "
            },
            "locales",
            1,
            &format!("advances={advances}"),
            s,
        );
    }

    println!("\n=== Ablation A6: epoch-based reclamation vs hazard pointers ===");
    for chain_len in [1usize, 8, 32] {
        for ebr in [true, false] {
            let (s, reclaimed) = ablate_reclamation_scheme(sc.fig3_ops / 16, chain_len, 64, ebr);
            row(
                if ebr {
                    "EBR (pin/unpin)"
                } else {
                    "hazard pointers"
                },
                "hops",
                chain_len,
                &format!("reclaimed={reclaimed}"),
                s,
            );
        }
    }

    println!("\n=== Ablation A4: compressed pointers (RDMA) vs wide fallback (DCAS/AM) ===");
    for &locales in &[2usize, 4, 8] {
        for wide in [false, true] {
            let s = ablate_wide(locales, sc.fig3_ops / 4, wide);
            row(
                if wide { "wide (>2^16)" } else { "compressed " },
                "locales",
                locales,
                "net-atomics=on",
                s,
            );
        }
    }

    println!("\n=== Ablation A7: remote-op combining ===");
    for workload in CombineWorkload::ALL {
        for &locales in &[2usize, 4, 8] {
            for combining in [false, true] {
                let (s, comm) = ablate_combining(locales, sc.fig3_ops / 4, workload, combining);
                row_comm(
                    &format!(
                        "A7 {} combining={}",
                        workload.label(),
                        if combining { "on" } else { "off" }
                    ),
                    "locales",
                    locales,
                    &format!("AMs={}", comm.am_sent),
                    s,
                    &comm,
                );
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let sc = if quick { &QUICK } else { &FULL };
    let wants = |name: &str| {
        args.iter().any(|a| a == name) || args.iter().any(|a| a == "all") || args.is_empty()
    };

    println!(
        "pgas-nonblocking figure harness (scale: {})",
        if quick { "quick" } else { "full" }
    );
    println!(
        "virtual-time model: Aries-class constants \
         (NIC atomic ~0.95us, AM ~2.5us round trip, CPU atomic 20ns)"
    );

    let t0 = std::time::Instant::now();
    if wants("fig3") {
        fig3(sc);
    }
    if wants("fig4") {
        fig4(sc);
    }
    if wants("fig5") {
        fig5(sc);
    }
    if wants("fig6") {
        fig6(sc);
    }
    if wants("fig7") {
        fig7(sc);
    }
    if wants("ablations") || args.iter().any(|a| a.starts_with("ablate")) {
        ablations(sc);
    }
    write_results_json("BENCH_results.json");
    println!("\nharness done in {:.1}s", t0.elapsed().as_secs_f64());
}
