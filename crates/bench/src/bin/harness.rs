//! The figure harness: regenerates every table/figure of the paper's
//! evaluation section (§III, Figures 3–7) plus the DESIGN.md ablations.
//!
//! ```text
//! cargo run -p pgas-bench --release --bin harness -- all
//! cargo run -p pgas-bench --release --bin harness -- fig3
//! cargo run -p pgas-bench --release --bin harness -- fig4 fig5 fig6 fig7
//! cargo run -p pgas-bench --release --bin harness -- ablations
//! cargo run -p pgas-bench --release --bin harness -- --quick all
//! cargo run -p pgas-bench --release --bin harness -- --quick --trace target/trace.jsonl ablations
//! ```
//!
//! Each figure prints one row per measured point. `vtime` is the virtual
//! makespan from the simulator's Aries-class cost model (the number whose
//! *shape* reproduces the paper); `wall` is host wall-clock time and only
//! meaningful as an implementation-overhead sanity check. Everything
//! printed is also teed to `target/harness_output.txt`.
//!
//! Every measured row is also collected and written to
//! `BENCH_results.json` as `{name, locales, vtime_ns, ns_per_op, mops,
//! am_count, retries, gave_up, injected_drops, injected_delays,
//! injected_dups, comm, latency}` so CI (and plotting scripts) can consume
//! the run without scraping the text output. `locales` is the row's sweep
//! coordinate (the task count for shared-memory panels, the hop count for
//! A6); `am_count` is null for series that do not report an AM total. The
//! five fault-injection counters are always zero here (the harness never
//! installs a fault plan), which CI asserts so a chaos configuration can
//! never leak into the performance baselines. `comm` is the full counter
//! snapshot ([`CommSnapshot::to_json`], null for series without one) and
//! `latency` the per-op-class p50/p99/max/mean summary rendered from the
//! telemetry registry ([`TelemetrySnapshot::latency_json`]).
//!
//! `--trace PATH` installs a [`JsonLinesSink`] on every runtime the
//! workloads build, dumping one JSON span per remote operation
//! (issue/arrive/start/end virtual times) — see DESIGN.md "Telemetry".

use std::sync::{Arc, Mutex};

use pgas_nb::sim::telemetry::JsonLinesSink;
use pgas_nb::sim::{CommSnapshot, TelemetrySnapshot};

use pgas_bench::json::{jnum, jstr};
use pgas_bench::{
    ablate_combining, ablate_election, ablate_local_manager, ablate_privatization,
    ablate_reclaimer, ablate_reclamation_scheme, ablate_scatter, ablate_vread, ablate_wide,
    comm_breakdown, fig3_dist, fig3_shared, fig7_read_only, fig_deletion, runtime, A8Structure,
    CombineWorkload, ReclaimAblation, Sample, Variant, LOCALE_SWEEP, TASK_SWEEP,
};
use pgas_nb::prelude::{EpochManager, HazardReclaimer};

/// Everything printed this run, teed to `target/harness_output.txt` so a
/// full-scale run's text output survives without polluting the repo root.
static OUTPUT: Mutex<String> = Mutex::new(String::new());

macro_rules! say {
    ($($arg:tt)*) => {{
        let line = format!($($arg)*);
        println!("{line}");
        let mut buf = OUTPUT.lock().unwrap();
        buf.push_str(&line);
        buf.push('\n');
    }};
}

/// One row of `BENCH_results.json`.
struct Record {
    /// Which backend measured the row; everything this binary produces
    /// inline is `"sim"` (the `--engine proc` path delegates to
    /// `procbench` orchestration and bypasses [`RECORDS`]).
    engine: &'static str,
    name: String,
    locales: usize,
    vtime_ns: u64,
    ns_per_op: f64,
    mops: f64,
    am_count: Option<u64>,
    /// Full counter snapshot for rows measured with a runtime in hand.
    comm: Option<CommSnapshot>,
    /// `TelemetrySnapshot::latency_json()` — `{}` when no registry was
    /// captured for this row.
    latency: String,
    /// Per-backend reclamation counters, pre-rendered as a JSON object —
    /// only A8 rows carry one (null elsewhere).
    reclaim: Option<String>,
    /// Per-structure shard-routing counters, pre-rendered as a JSON
    /// object — only A11 sharded rows carry one (null elsewhere).
    shard: Option<String>,
}

static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

struct Scale {
    fig3_ops: u64,
    fig4_objects: usize,
    fig5_objects: usize,
    fig6_objects: usize,
    fig7_iters: u64,
    ablate_objects: usize,
    /// A11 key-space size (the "million keys" knob).
    a11_keys: u64,
    /// A11 mixed-phase operations per task.
    a11_ops: u64,
}

const FULL: Scale = Scale {
    fig3_ops: 1 << 16,
    fig4_objects: 1 << 15,
    fig5_objects: 1 << 13,
    fig6_objects: 1 << 14,
    fig7_iters: 1 << 13,
    ablate_objects: 1 << 13,
    a11_keys: 1 << 20,
    a11_ops: 1 << 12,
};

const QUICK: Scale = Scale {
    fig3_ops: 1 << 12,
    fig4_objects: 1 << 11,
    fig5_objects: 1 << 9,
    fig6_objects: 1 << 11,
    fig7_iters: 1 << 9,
    ablate_objects: 1 << 9,
    a11_keys: 1 << 14,
    a11_ops: 1 << 9,
};

fn row(label: &str, x_name: &str, x: usize, extra: &str, s: Sample) {
    row_full(label, x_name, x, extra, s, None);
}

/// A row whose runtime exposed a [`TelemetrySnapshot`]: records the AM
/// total, the full counter snapshot, and the per-class latency summary
/// alongside the timing.
fn row_comm(label: &str, x_name: &str, x: usize, extra: &str, s: Sample, t: &TelemetrySnapshot) {
    row_full(label, x_name, x, extra, s, Some(t));
}

fn row_full(
    label: &str,
    x_name: &str,
    x: usize,
    extra: &str,
    s: Sample,
    telemetry: Option<&TelemetrySnapshot>,
) {
    say!(
        "{label:<34} {x_name}={x:<3} {extra:<18} vtime={:>12.3} ms  \
         ns/op={:>9.1}  mops={:>8.2}  wall={:>8.1} ms",
        s.vtime_ns as f64 / 1e6,
        s.ns_per_op(),
        s.mops(),
        s.wall_ns as f64 / 1e6,
    );
    // The series name is the label plus any *configuration* qualifier;
    // measured extras (`AMs=123`, `reclaimed=512`, ...) are data, not
    // identity, and stay out so a series keeps one stable name.
    let mut name = label.trim().to_string();
    let extra = extra.trim();
    let is_measured = extra
        .split_once('=')
        .is_some_and(|(_, v)| !v.is_empty() && v.chars().all(|c| c.is_ascii_digit()));
    if !extra.is_empty() && !is_measured {
        name.push(' ');
        name.push_str(extra);
    }
    RECORDS.lock().unwrap().push(Record {
        engine: "sim",
        name,
        locales: x,
        vtime_ns: s.vtime_ns,
        ns_per_op: s.ns_per_op(),
        mops: s.mops(),
        am_count: telemetry.map(|t| t.comm.am_sent),
        comm: telemetry.map(|t| t.comm),
        latency: telemetry.map_or_else(|| "{}".to_string(), |t| t.latency_json()),
        reclaim: None,
        shard: None,
    });
}

/// An A11 row: like [`row_comm`] but carrying the sharded map's routing
/// counters as a `shard` JSON object (`validate_results` checks the
/// schema on every "A11 sharded" row; legacy rows pass `None`).
fn row_shard(
    label: &str,
    locales: usize,
    extra: &str,
    s: Sample,
    t: &TelemetrySnapshot,
    shard: Option<&pgas_nb::structures::ShardSnapshot>,
) {
    say!(
        "{label:<34} locales={locales:<3} {extra:<18} vtime={:>12.3} ms  \
         ns/op={:>9.1}  mops={:>8.2}  wall={:>8.1} ms",
        s.vtime_ns as f64 / 1e6,
        s.ns_per_op(),
        s.mops(),
        s.wall_ns as f64 / 1e6,
    );
    if let Some(sh) = shard {
        say!(
            "    └─ shard: local={} remote={} active={}",
            sh.local_ops,
            sh.remote_ops,
            sh.active_shards
        );
    }
    RECORDS.lock().unwrap().push(Record {
        engine: "sim",
        name: label.trim().to_string(),
        locales,
        vtime_ns: s.vtime_ns,
        ns_per_op: s.ns_per_op(),
        mops: s.mops(),
        am_count: Some(t.comm.am_sent),
        comm: Some(t.comm),
        latency: t.latency_json(),
        reclaim: None,
        shard: shard.map(|sh| sh.to_json()),
    });
}

/// An A8 row: timing plus the backend's reclamation counters, attached to
/// the record as a `reclaim` JSON object (`validate_results` checks the
/// schema on every "A8 " row).
fn row_reclaim(structure: A8Structure, locales: usize, r: &ReclaimAblation) {
    let stall_lbl = if r.stalled { "stalled_task" } else { "" };
    let label = format!("A8 {} {}", structure.label(), r.backend);
    say!(
        "{label:<34} locales={locales:<3} {stall_lbl:<18} vtime={:>12.3} ms  \
         ns/op={:>9.1}  mops={:>8.2}  wall={:>8.1} ms",
        r.sample.vtime_ns as f64 / 1e6,
        r.sample.ns_per_op(),
        r.sample.mops(),
        r.sample.wall_ns as f64 / 1e6,
    );
    if r.stalled {
        say!(
            "    └─ stalled: outstanding={} reclaimed-during-stall={}",
            r.stalled_outstanding,
            r.stalled_reclaimed
        );
    }
    let s = &r.reclaim;
    let reclaim_json = format!(
        "{{\"backend\": {}, \"retired\": {}, \"reclaimed\": {}, \
         \"scans\": {}, \"hazard_protects\": {}, \"stalled\": {}, \
         \"stalled_outstanding\": {}, \"stalled_reclaimed\": {}}}",
        jstr(r.backend),
        s.objects_deferred,
        s.objects_reclaimed,
        s.advances,
        s.hazard_protects,
        r.stalled,
        r.stalled_outstanding,
        r.stalled_reclaimed,
    );
    let mut name = label.trim().to_string();
    if !stall_lbl.is_empty() {
        name.push(' ');
        name.push_str(stall_lbl);
    }
    RECORDS.lock().unwrap().push(Record {
        engine: "sim",
        name,
        locales,
        vtime_ns: r.sample.vtime_ns,
        ns_per_op: r.sample.ns_per_op(),
        mops: r.sample.mops(),
        am_count: None,
        comm: None,
        latency: "{}".to_string(),
        reclaim: Some(reclaim_json),
        shard: None,
    });
}

fn write_results_json(path: &str) {
    let recs = RECORDS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in recs.iter().enumerate() {
        let chaos = r.comm.unwrap_or_default();
        out.push_str(&format!(
            "  {{\"name\": {}, \"engine\": {}, \"locales\": {}, \"vtime_ns\": {}, \
             \"ns_per_op\": {}, \"mops\": {}, \"am_count\": {}, \
             \"retries\": {}, \"gave_up\": {}, \"injected_drops\": {}, \
             \"injected_delays\": {}, \"injected_dups\": {}, \
             \"comm\": {}, \"latency\": {}, \"reclaim\": {}, \"shard\": {}}}{}\n",
            jstr(&r.name),
            jstr(r.engine),
            r.locales,
            r.vtime_ns,
            jnum(r.ns_per_op),
            jnum(r.mops),
            r.am_count.map_or("null".to_string(), |a| a.to_string()),
            chaos.retries,
            chaos.gave_up,
            chaos.injected_drops,
            chaos.injected_delays,
            chaos.injected_dups,
            r.comm.map_or("null".to_string(), |c| c.to_json()),
            r.latency,
            r.reclaim.as_deref().unwrap_or("null"),
            r.shard.as_deref().unwrap_or("null"),
            if i + 1 < recs.len() { "," } else { "" },
        ));
    }
    out.push_str("]\n");
    match std::fs::write(path, out) {
        Ok(()) => say!("results: {path} ({} rows)", recs.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn fig3(sc: &Scale) {
    say!("\n=== Figure 3: AtomicObject vs atomic int (25/25/25/25 read/write/CAS/exchange) ===");
    say!("--- shared memory: strong scaling over tasks, 1 locale ---");
    for net in [true, false] {
        let net_lbl = if net {
            "net-atomics=on"
        } else {
            "net-atomics=off"
        };
        for variant in Variant::ALL {
            for &tasks in &TASK_SWEEP {
                let rt = runtime(1, net);
                let s = fig3_shared(&rt, tasks, sc.fig3_ops, variant);
                row_comm(
                    variant.label(),
                    "tasks",
                    tasks,
                    net_lbl,
                    s,
                    &rt.total_telemetry(),
                );
            }
        }
    }
    say!("--- distributed: strong scaling over locales, 4 tasks/locale ---");
    for net in [true, false] {
        let net_lbl = if net {
            "net-atomics=on"
        } else {
            "net-atomics=off"
        };
        for variant in Variant::ALL {
            for &locales in &LOCALE_SWEEP {
                let rt = runtime(locales, net);
                let s = fig3_dist(&rt, 4, sc.fig3_ops, variant);
                let t = rt.total_telemetry();
                row_comm(variant.label(), "locales", locales, net_lbl, s, &t);
                if locales == *LOCALE_SWEEP.last().unwrap() {
                    say!("    └─ comm @{locales} locales: {}", comm_breakdown(&t));
                }
            }
        }
    }
}

fn fig_deletion_sweep(name: &str, objects: usize, per_iter: Option<u64>, remote_pct: u32) {
    for net in [true, false] {
        let net_lbl = if net {
            "net-atomics=on"
        } else {
            "net-atomics=off"
        };
        for &locales in &LOCALE_SWEEP {
            let rt = runtime(locales, net);
            let (s, stats) = fig_deletion(&rt, objects, per_iter, remote_pct);
            let t = rt.total_telemetry();
            row_comm(name, "locales", locales, net_lbl, s, &t);
            if locales == *LOCALE_SWEEP.last().unwrap() {
                say!("    └─ reclaim stats @{locales} locales: {stats}");
                say!("    └─ comm @{locales} locales: {}", comm_breakdown(&t));
            }
        }
    }
}

fn fig4(sc: &Scale) {
    say!("\n=== Figure 4: deletion, tryReclaim every 1024 iterations ===");
    fig_deletion_sweep(
        "deferDelete+tryReclaim/1024",
        sc.fig4_objects,
        Some(1024),
        50,
    );
}

fn fig5(sc: &Scale) {
    say!("\n=== Figure 5: deletion, tryReclaim every iteration ===");
    fig_deletion_sweep("deferDelete+tryReclaim/1", sc.fig5_objects, Some(1), 50);
}

fn fig6(sc: &Scale) {
    say!("\n=== Figure 6: deletion, reclamation only at end; remote ratio 0/50/100% ===");
    for remote_pct in [0u32, 50, 100] {
        for &locales in &LOCALE_SWEEP {
            let rt = runtime(locales, true);
            let (s, _) = fig_deletion(&rt, sc.fig6_objects, None, remote_pct);
            row_comm(
                &format!("defer+clear remote={remote_pct}%"),
                "locales",
                locales,
                "net-atomics=on",
                s,
                &rt.total_telemetry(),
            );
        }
    }
}

fn fig7(sc: &Scale) {
    say!("\n=== Figure 7: read-only workload (pin/unpin), no deletion ===");
    for net in [true, false] {
        let net_lbl = if net {
            "net-atomics=on"
        } else {
            "net-atomics=off"
        };
        for &locales in &LOCALE_SWEEP {
            let rt = runtime(locales, net);
            let s = fig7_read_only(&rt, 4, sc.fig7_iters);
            let t = rt.total_telemetry();
            row_comm("pin/unpin read-only", "locales", locales, net_lbl, s, &t);
            if locales == *LOCALE_SWEEP.last().unwrap() {
                say!("    └─ comm @{locales} locales: {}", comm_breakdown(&t));
            }
        }
    }
}

fn ablations(sc: &Scale) {
    say!("\n=== Ablation A1: scatter-list bulk free vs per-object remote frees ===");
    for &locales in &[2usize, 4, 8] {
        for scatter in [true, false] {
            let rt = runtime(locales, true);
            let (s, t) = ablate_scatter(&rt, sc.ablate_objects, scatter);
            row_comm(
                if scatter {
                    "A1 scatter=on "
                } else {
                    "A1 scatter=off"
                },
                "locales",
                locales,
                &format!("AMs={}", t.comm.am_sent),
                s,
                &t,
            );
            if locales == 8 {
                say!("    └─ comm @{locales} locales: {}", comm_breakdown(&t));
            }
        }
    }

    say!("\n=== Ablation A2: privatized instance vs single shared instance ===");
    for &locales in &[2usize, 4, 8] {
        for privatized in [true, false] {
            let rt = runtime(locales, false);
            let s = ablate_privatization(&rt, sc.fig7_iters, privatized);
            row_comm(
                if privatized {
                    "privatized "
                } else {
                    "shared@L0  "
                },
                "locales",
                locales,
                "net-atomics=off",
                s,
                &rt.total_telemetry(),
            );
        }
    }

    say!("\n=== Ablation A3: reclamation election vs every-caller scans ===");
    for &locales in &[2usize, 4, 8] {
        for elected in [true, false] {
            let rt = runtime(locales, true);
            let s = ablate_election(&rt, sc.ablate_objects / 4, elected);
            row_comm(
                if elected {
                    "election=on "
                } else {
                    "election=off"
                },
                "locales",
                locales,
                "tryReclaim/iter",
                s,
                &rt.total_telemetry(),
            );
        }
    }

    say!("\n=== Ablation A5: LocalEpochManager vs EpochManager (single locale) ===");
    for local in [true, false] {
        let (s, advances) = ablate_local_manager(sc.ablate_objects, local);
        row(
            if local {
                "LocalEpochManager"
            } else {
                "EpochManager     "
            },
            "locales",
            1,
            &format!("advances={advances}"),
            s,
        );
    }

    say!("\n=== Ablation A6: epoch-based reclamation vs hazard pointers ===");
    for chain_len in [1usize, 8, 32] {
        for ebr in [true, false] {
            let (s, reclaimed) = ablate_reclamation_scheme(sc.fig3_ops / 16, chain_len, 64, ebr);
            row(
                if ebr {
                    "EBR (pin/unpin)"
                } else {
                    "hazard pointers"
                },
                "hops",
                chain_len,
                &format!("reclaimed={reclaimed}"),
                s,
            );
        }
    }

    say!("\n=== Ablation A8: pluggable reclamation — EBR vs hazard pointers per structure ===");
    a8(sc);

    say!("\n=== Ablation A4: compressed pointers (RDMA) vs wide fallback (DCAS/AM) ===");
    for &locales in &[2usize, 4, 8] {
        for wide in [false, true] {
            let s = ablate_wide(locales, sc.fig3_ops / 4, wide);
            row(
                if wide { "wide (>2^16)" } else { "compressed " },
                "locales",
                locales,
                "net-atomics=on",
                s,
            );
        }
    }

    say!("\n=== Ablation A10: versioned fast reads vs DCAS reads (read-mostly ABA mixes) ===");
    a10(sc);

    say!("\n=== Ablation A7: remote-op combining ===");
    for workload in CombineWorkload::ALL {
        for &locales in &[2usize, 4, 8] {
            for combining in [false, true] {
                let (s, t) = ablate_combining(locales, sc.fig3_ops / 4, workload, combining);
                row_comm(
                    &format!(
                        "A7 {} combining={}",
                        workload.label(),
                        if combining { "on" } else { "off" }
                    ),
                    "locales",
                    locales,
                    &format!("AMs={}", t.comm.am_sent),
                    s,
                    &t,
                );
            }
        }
    }

    say!("\n=== Ablation A11: global-view sharded map vs legacy flat map (Zipfian point ops) ===");
    a11(sc);
}

/// Ablation A11: the privatized per-locale-sharded map against the legacy
/// flat map under Zipfian point workloads (θ ∈ {0.9, 0.99}, 90/10 and
/// 50/50 read/write, 1–8 locales). Network atomics are off and combining
/// is on, so the legacy map's remote chain hops each cost an AM round
/// trip while the sharded map pays at most one combined AM per remote op
/// and nothing for locally-owned keys. The harness asserts the sharded
/// tier's strict win on both ns/op and AM count at ≥4 locales inline, and
/// that its remote routing is honest (remote ops ⇒ AMs flowed), so a
/// routing regression fails the run before CI parses the JSON.
fn a11(sc: &Scale) {
    for &theta in &[0.9f64, 0.99] {
        for &read_pct in &[90u32, 50] {
            for &locales in &[1usize, 2, 4, 8] {
                let mut legacy: Option<(f64, u64)> = None;
                for sharded in [false, true] {
                    let cell = pgas_bench::ablate_globalview(
                        locales,
                        sc.a11_keys,
                        theta,
                        read_pct,
                        sc.a11_ops,
                        sharded,
                    );
                    let tier = if sharded { "sharded" } else { "legacy" };
                    let label =
                        format!("A11 {tier} zipf={theta} mix={read_pct}/{}", 100 - read_pct);
                    row_shard(
                        &label,
                        locales,
                        &format!("AMs={}", cell.telemetry.comm.am_sent),
                        cell.sample,
                        &cell.telemetry,
                        cell.shard.as_ref(),
                    );
                    if sharded {
                        let sh = cell
                            .shard
                            .as_ref()
                            .expect("sharded rows carry a shard snapshot");
                        if locales >= 2 {
                            assert!(
                                sh.remote_ops > 0 && cell.telemetry.comm.am_sent > 0,
                                "A11 zipf={theta} {read_pct}% @{locales}: remote-shard ops \
                                 must pay AMs ({} remote ops, {} AMs)",
                                sh.remote_ops,
                                cell.telemetry.comm.am_sent
                            );
                        }
                        if locales >= 4 {
                            let (l_ns, l_ams) =
                                legacy.expect("legacy tier measured before sharded");
                            assert!(
                                cell.sample.ns_per_op() < l_ns,
                                "A11 zipf={theta} {read_pct}% @{locales}: sharded must beat \
                                 legacy on ns/op ({:.1} vs {:.1})",
                                cell.sample.ns_per_op(),
                                l_ns
                            );
                            assert!(
                                cell.telemetry.comm.am_sent < l_ams,
                                "A11 zipf={theta} {read_pct}% @{locales}: sharded must beat \
                                 legacy on AM count ({} vs {})",
                                cell.telemetry.comm.am_sent,
                                l_ams
                            );
                        }
                    } else {
                        legacy = Some((cell.sample.ns_per_op(), cell.telemetry.comm.am_sent));
                    }
                }
            }
        }
    }
}

/// Ablation A8: every structure churned under EBR vs distributed hazard
/// pointers across the locale sweep, plus a `stalled_task` variant at 4
/// locales where a forever-pinned guard shows EBR limbo growing while HP
/// keeps reclaiming.
fn a8(sc: &Scale) {
    let ops = (sc.ablate_objects as u64 / 4).max(256);
    for structure in A8Structure::ALL {
        for &locales in &[1usize, 2, 4, 8] {
            let ebr = ablate_reclaimer::<EpochManager>(locales, structure, ops, false);
            row_reclaim(structure, locales, &ebr);
            let hp = ablate_reclaimer::<HazardReclaimer>(locales, structure, ops, false);
            row_reclaim(structure, locales, &hp);
        }
        // Stalled-task variant: one guard pins before the churn and never
        // unpins until it ends.
        let ebr = ablate_reclaimer::<EpochManager>(4, structure, ops, true);
        row_reclaim(structure, 4, &ebr);
        let hp = ablate_reclaimer::<HazardReclaimer>(4, structure, ops, true);
        row_reclaim(structure, 4, &hp);
        assert_eq!(
            ebr.stalled_reclaimed,
            0,
            "A8 {}: EBR cannot reclaim behind a stalled pin",
            structure.label()
        );
        assert!(
            hp.stalled_reclaimed > 0,
            "A8 {}: HP must keep reclaiming despite the stall",
            structure.label()
        );
        assert!(
            hp.stalled_outstanding < ebr.stalled_outstanding.max(1),
            "A8 {}: HP garbage must stay below EBR's limbo ({} vs {})",
            structure.label(),
            hp.stalled_outstanding,
            ebr.stalled_outstanding
        );
    }
}

/// Ablation A10: read-mostly ABA mixes (90% and 99% read) across the
/// locale sweep with the versioned fast-read path off vs on. With the
/// fast path on, reads cost one validated one-sided GET instead of a DCAS
/// AM round trip, so the on rows must win wherever reads are actually
/// remote (≥2 locales); writes keep the DCAS either way. The harness
/// asserts the win inline at 4+ locales and that fallbacks stay bounded
/// by retries, so a regression fails the run before CI even parses
/// `BENCH_results.json`.
fn a10(sc: &Scale) {
    let ops = (sc.fig3_ops / 4).max(1024);
    for read_pct in [90u32, 99] {
        for &locales in &[1usize, 2, 4, 8] {
            let mut off_ns = f64::INFINITY;
            for fast in [false, true] {
                let (s, t) = ablate_vread(locales, ops, read_pct, fast);
                let label = format!(
                    "A10 {read_pct}% read vread={}",
                    if fast { "on" } else { "off" }
                );
                row_comm(
                    &label,
                    "locales",
                    locales,
                    &format!("AMs={}", t.comm.am_sent),
                    s,
                    &t,
                );
                if fast {
                    assert!(
                        t.comm.vread_fallbacks <= t.comm.vread_retries,
                        "A10 {read_pct}% @{locales}: every fallback needs a torn \
                         window first ({} fallbacks vs {} retries)",
                        t.comm.vread_fallbacks,
                        t.comm.vread_retries
                    );
                    assert!(
                        t.comm.vread_fast > t.comm.vread_fallbacks,
                        "A10 {read_pct}% @{locales}: fast path barely validates \
                         ({} fast vs {} fallbacks)",
                        t.comm.vread_fast,
                        t.comm.vread_fallbacks
                    );
                    if locales >= 4 {
                        assert!(
                            s.ns_per_op() < off_ns,
                            "A10 {read_pct}% @{locales}: fast path must beat DCAS \
                             reads ({:.1} vs {:.1} ns/op)",
                            s.ns_per_op(),
                            off_ns
                        );
                    }
                } else {
                    off_ns = s.ns_per_op();
                    assert_eq!(
                        (
                            t.comm.vread_fast,
                            t.comm.vread_retries,
                            t.comm.vread_fallbacks
                        ),
                        (0, 0, 0),
                        "A10 {read_pct}% @{locales}: vread counters must stay zero \
                         with the fast path off"
                    );
                }
            }
        }
    }
}

/// The `--engine proc` path: instead of simulating, orchestrate real
/// agent processes (via `pgas_bench::procrun`, same protocol as the
/// `procbench` binary) over a small locale sweep and write their merged
/// rows — tagged `engine: "proc"` — as the results file. The sim figures
/// are not regenerated; validate with `validate_results --engine proc`.
fn run_proc_engine(quick: bool) {
    use pgas_bench::procrun::{self, ProcSpec};
    let ops: u64 = if quick { 512 } else { 4096 };
    let mut rows = Vec::new();
    for locales in [2usize, 4] {
        let spec = ProcSpec {
            locales,
            ops,
            tasks: 2,
            timeout: std::time::Duration::from_secs(120),
        };
        match procrun::orchestrate_self(&spec) {
            Ok(row) => {
                say!(
                    "{:<34} locales={:<3} wall={:>8.1} ms  ns/op={:>9.1}  mops={:>8.2}  AMs={}",
                    row.name,
                    row.locales,
                    row.wall_ns as f64 / 1e6,
                    row.ns_per_op(),
                    row.mops(),
                    row.comm.get("am_sent").copied().unwrap_or(0),
                );
                rows.push(row.to_json());
            }
            Err(e) => {
                eprintln!("harness --engine proc: {locales}-locale cell failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let doc = format!("[\n  {}\n]\n", rows.join(",\n  "));
    match std::fs::write("BENCH_results.json", doc) {
        Ok(()) => say!("results: BENCH_results.json ({} rows)", rows.len()),
        Err(e) => {
            eprintln!("could not write BENCH_results.json: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // Re-exec'd as a procbench agent? Run it and exit before touching
    // argv (the orchestrator spawns `current_exe`, which is us when
    // `harness --engine proc` orchestrates).
    pgas_bench::procrun::maybe_run_agent();

    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut trace_path: Option<String> = None;
    let mut engine = "sim".to_string();
    let mut selectors: Vec<String> = Vec::new();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--trace" => {
                trace_path = Some(it.next().expect("--trace takes a path").clone());
            }
            "--engine" => {
                engine = it.next().expect("--engine takes sim|proc").clone();
                assert!(
                    matches!(engine.as_str(), "sim" | "proc"),
                    "unknown engine {engine:?} (expected sim|proc)"
                );
            }
            other => selectors.push(other.to_string()),
        }
    }
    if engine == "proc" {
        run_proc_engine(quick);
        return;
    }
    let sc = if quick { &QUICK } else { &FULL };
    let wants = |name: &str| {
        selectors.iter().any(|a| a == name)
            || selectors.iter().any(|a| a == "all")
            || selectors.is_empty()
    };

    say!(
        "pgas-nonblocking figure harness (scale: {})",
        if quick { "quick" } else { "full" }
    );
    say!(
        "virtual-time model: Aries-class constants \
         (NIC atomic ~0.95us, AM ~2.5us round trip, CPU atomic 20ns)"
    );
    if let Some(path) = &trace_path {
        let sink = JsonLinesSink::create(path)
            .unwrap_or_else(|e| panic!("could not create trace file {path}: {e}"));
        pgas_bench::set_trace_sink(Arc::new(sink));
        say!("span trace: {path} (one JSON object per remote operation)");
    }

    let t0 = std::time::Instant::now();
    if wants("fig3") {
        fig3(sc);
    }
    if wants("fig4") {
        fig4(sc);
    }
    if wants("fig5") {
        fig5(sc);
    }
    if wants("fig6") {
        fig6(sc);
    }
    if wants("fig7") {
        fig7(sc);
    }
    if wants("ablations") || selectors.iter().any(|a| a.starts_with("ablate")) {
        ablations(sc);
    } else {
        if selectors.iter().any(|a| a == "a8") {
            // Standalone A8 selector for the reclaim smoke job (the full
            // `ablations` run already includes it).
            say!("\n=== Ablation A8: pluggable reclamation — EBR vs hazard pointers per structure ===");
            a8(sc);
        }
        if selectors.iter().any(|a| a == "a10") {
            // Standalone A10 selector for the vread smoke job.
            say!("\n=== Ablation A10: versioned fast reads vs DCAS reads (read-mostly ABA mixes) ===");
            a10(sc);
        }
        if selectors.iter().any(|a| a == "a11") {
            // Standalone A11 selector for the global-view smoke job.
            say!("\n=== Ablation A11: global-view sharded map vs legacy flat map (Zipfian point ops) ===");
            a11(sc);
        }
    }
    write_results_json("BENCH_results.json");
    pgas_bench::flush_trace_sink();
    say!("\nharness done in {:.1}s", t0.elapsed().as_secs_f64());

    // Tee the full text output under target/ (never the repo root).
    let _ = std::fs::create_dir_all("target");
    let text = OUTPUT.lock().unwrap();
    if let Err(e) = std::fs::write("target/harness_output.txt", text.as_str()) {
        eprintln!("could not write target/harness_output.txt: {e}");
    } else {
        println!("text output: target/harness_output.txt");
    }
}
