//! Critical-path analyzer for `--trace` JSON-lines files.
//!
//! Reconstructs trace trees (structure-op root spans with nested AM /
//! retry / combining spans), decomposes every root's virtual-time
//! duration into wire / queueing / handler / retry / combine / local
//! components with exact accounting, and optionally renders a Chrome
//! trace-event JSON loadable in Perfetto (https://ui.perfetto.dev).
//!
//! ```text
//! trace_analyze <trace.jsonl> [--top N] [--chrome OUT.json] [--strict]
//! ```
//!
//! `--strict` exits non-zero unless ≥ 99% of spans land in rooted trees,
//! every root's components sum exactly to its duration, and the trace has
//! no duplicate span ids — the CI contract for the `trace-smoke` job.

use std::process::ExitCode;

use pgas_bench::trace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut chrome: Option<String> = None;
    let mut top = 5usize;
    let mut strict = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                i += 1;
                top = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--top needs an integer"));
            }
            "--chrome" => {
                i += 1;
                chrome = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--chrome needs a path")),
                );
            }
            "--strict" => strict = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace_analyze <trace.jsonl> [--top N] [--chrome OUT.json] [--strict]"
                );
                return ExitCode::SUCCESS;
            }
            a if path.is_none() && !a.starts_with('-') => path = Some(a.to_string()),
            a => die(&format!("unknown argument {a:?}")),
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| die("missing trace file path"));
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => die(&format!("cannot read {path}: {e}")),
    };
    let spans = match trace::parse_trace(&text) {
        Ok(s) => s,
        Err(e) => die(&format!("{path}: {e}")),
    };
    let a = trace::analyze(spans);
    print!("{}", trace::report(&a, top));

    if let Some(out) = chrome {
        let doc = trace::chrome_trace(&a);
        if let Err(e) = std::fs::write(&out, &doc) {
            die(&format!("cannot write {out}: {e}"));
        }
        println!(
            "\nchrome trace: {out} ({} bytes) — load at https://ui.perfetto.dev",
            doc.len()
        );
    }

    if strict {
        let mut failed = false;
        if a.rooted_pct() < 99.0 {
            eprintln!("STRICT: rooted {:.2}% < 99%", a.rooted_pct());
            failed = true;
        }
        if !a.accounting_exact() {
            eprintln!("STRICT: component decomposition does not sum to root durations");
            failed = true;
        }
        if a.duplicate_ids > 0 {
            eprintln!("STRICT: {} duplicate span ids", a.duplicate_ids);
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!(
            "\nstrict checks passed: rooted {:.2}%, exact accounting, unique span ids",
            a.rooted_pct()
        );
    }
    ExitCode::SUCCESS
}

fn die(msg: &str) -> ! {
    eprintln!("trace_analyze: {msg}");
    std::process::exit(2);
}
