//! `procbench`: run the mixed symmetric-heap workload on the **process
//! backend** — every locale a real OS process, every remote op a real
//! loopback-TCP round trip — and merge the per-agent results into
//! `BENCH_results.json`-shaped rows tagged `engine: "proc"`.
//!
//! ```text
//! cargo run -p pgas-bench --release --bin procbench -- --locales 4
//! cargo run -p pgas-bench --release --bin procbench -- \
//!     --locales 4 --ops 4096 --tasks 2 --timeout 60 --out BENCH_proc.json
//! ```
//!
//! The orchestrator re-executes this binary once per locale with
//! `PGAS_PROC_RANK` set (see `pgas_bench::procrun` for the handshake and
//! teardown protocol). Any agent crash or hang kills and reaps the whole
//! fleet and exits nonzero.

use std::time::Duration;

use pgas_bench::procrun::{self, ProcSpec};

fn main() {
    // Re-exec'd as an agent? Run it and exit before looking at argv.
    procrun::maybe_run_agent();

    let mut spec = ProcSpec::default();
    let mut out = "BENCH_proc.json".to_string();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} takes a value"))
                .clone()
        };
        match a.as_str() {
            "--locales" => spec.locales = val("--locales").parse().expect("bad --locales"),
            "--ops" => spec.ops = val("--ops").parse().expect("bad --ops"),
            "--tasks" => spec.tasks = val("--tasks").parse().expect("bad --tasks"),
            "--timeout" => {
                spec.timeout = Duration::from_secs(val("--timeout").parse().expect("bad --timeout"))
            }
            "--out" => out = val("--out"),
            other => {
                panic!("unknown argument {other:?} (try --locales/--ops/--tasks/--timeout/--out)")
            }
        }
    }

    println!(
        "procbench: {} locales x {} tasks x {} ops (timeout {:?})",
        spec.locales, spec.tasks, spec.ops, spec.timeout
    );
    let row = match procrun::orchestrate_self(&spec) {
        Ok(row) => row,
        Err(e) => {
            eprintln!("procbench failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:<34} locales={:<3} wall={:>8.1} ms  ns/op={:>9.1}  mops={:>8.2}  AMs={}",
        row.name,
        row.locales,
        row.wall_ns as f64 / 1e6,
        row.ns_per_op(),
        row.mops(),
        row.comm.get("am_sent").copied().unwrap_or(0),
    );
    let doc = format!("[\n  {}\n]\n", row.to_json());
    match std::fs::write(&out, doc) {
        Ok(()) => println!("results: {out} (1 row)"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}
